//! Framed TCP: the v2 transport muscle.
//!
//! One persistent TCP connection carries length-framed binary messages
//! (see [`crate::wire::proto::v2`] for the frame layout). This module
//! only moves frames: [`read_frame`]/[`write_frame`] for blocking
//! streams and [`FramedConn`], the client-side connection with the
//! version handshake, serial calls and pipelined send/recv. All
//! encoding decisions live in the codec.

use crate::driver::RunOutcome;
use crate::error::{PlatformError, PlatformResult};
use crate::push::Notification;
use crate::queue::TaskId;
use crate::user::ContributorKey;
use crate::wire::proto::v2::{self, DecodedReply, HEADER_LEN};
use crate::wire::proto::{Reply, Request};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Write one already-encoded frame (header included) to the stream.
pub fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    stream.write_all(frame)
}

/// Read exactly one frame off a blocking stream. Oversized or truncated
/// frames are `InvalidData`/`UnexpectedEof` — the connection is dead.
pub fn read_frame(stream: &mut TcpStream, max_frame: usize) -> io::Result<(u32, Vec<u8>)> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let tag = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len == 0 || len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {len} bytes outside (0, {max_frame}]"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok((tag, body))
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A client-side framed connection: connected, version-checked, ready
/// for serial calls or pipelined send/recv. Tag allocation is internal —
/// tags only need to be unique among in-flight frames on one connection.
pub struct FramedConn {
    stream: TcpStream,
    max_frame: usize,
    next_tag: u32,
    /// Push frames that arrived while waiting for a call's response
    /// (server push rides tag 0 on the same stream).
    notes: Vec<Notification>,
    /// Raw bytes buffered by [`FramedConn::recv_notification`]'s
    /// timeout-tolerant reads, possibly holding a partial frame.
    pushbuf: Vec<u8>,
}

/// Records per continuation frame in a bulk upload. Small enough that a
/// mid-sequence connection kill loses little, large enough that framing
/// overhead stays negligible next to the columnar payload.
pub const BATCH_CHUNK: usize = 512;

impl FramedConn {
    /// Connect and run the Hello handshake. Any version disagreement is
    /// a hard `InvalidData` error.
    pub fn connect(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
        max_frame: usize,
    ) -> io::Result<FramedConn> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| bad(format!("address {addr:?} did not resolve")))?;
        let stream = TcpStream::connect_timeout(&sock, connect_timeout)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        stream.set_nodelay(true)?;
        let mut conn = FramedConn {
            stream,
            max_frame,
            next_tag: 1,
            notes: Vec::new(),
            pushbuf: Vec::new(),
        };
        write_frame(&mut conn.stream, &v2::encode_hello_frame(0))?;
        let (_, body) = read_frame(&mut conn.stream, max_frame)?;
        match v2::decode_reply(&body).map_err(bad)? {
            DecodedReply::Hello { version } if version == v2::PROTO_VERSION => Ok(conn),
            DecodedReply::Hello { version } => Err(bad(format!(
                "server speaks protocol {version}, client speaks {}",
                v2::PROTO_VERSION
            ))),
            DecodedReply::Outcome(_) | DecodedReply::Notification(_) => {
                Err(bad("expected hello, got a reply".into()))
            }
        }
    }

    /// Send one request, returning its tag for later matching.
    pub fn send(&mut self, req: &Request) -> io::Result<u32> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        write_frame(&mut self.stream, &v2::encode_request_frame(tag, req))?;
        Ok(tag)
    }

    /// Receive the next response frame, whichever request it answers.
    /// Unsolicited push frames arriving in between are stashed (readable
    /// via [`FramedConn::recv_notification`]), never returned here.
    pub fn recv(&mut self) -> io::Result<(u32, PlatformResult<Reply>)> {
        loop {
            let (tag, body) = read_frame(&mut self.stream, self.max_frame)?;
            match v2::decode_reply(&body).map_err(bad)? {
                DecodedReply::Outcome(outcome) => return Ok((tag, outcome)),
                DecodedReply::Notification(n) => self.notes.push(n),
                DecodedReply::Hello { .. } => return Err(bad("unexpected mid-stream hello".into())),
            }
        }
    }

    /// One serial request/response exchange.
    pub fn call(&mut self, req: &Request) -> io::Result<PlatformResult<Reply>> {
        let sent = self.send(req)?;
        let (tag, outcome) = self.recv()?;
        if tag != sent {
            return Err(bad(format!(
                "response tag {tag} does not match request tag {sent}"
            )));
        }
        Ok(outcome)
    }

    /// Fault injection for the drop tests: write only the first half of
    /// the encoded frame, then slam the connection shut. The server must
    /// discard the partial frame without dispatching it.
    pub fn send_truncated(&mut self, req: &Request) -> io::Result<()> {
        let frame = v2::encode_request_frame(self.next_tag, req);
        let half = frame.len() / 2;
        self.stream.write_all(&frame[..half])?;
        self.stream.shutdown(std::net::Shutdown::Both)
    }

    /// Stream one bulk upload: all-but-the-last chunk as continuation
    /// frames, the remainder inline in the summary frame, all under one
    /// tag. The single ack (a `Reply::Batch`) answers for the whole
    /// sequence; read it with [`FramedConn::recv`].
    pub fn send_batch(
        &mut self,
        key: &ContributorKey,
        reports: &[(TaskId, RunOutcome)],
    ) -> io::Result<u32> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        let mut chunks: Vec<&[(TaskId, RunOutcome)]> = reports.chunks(BATCH_CHUNK).collect();
        let inline = chunks.pop().unwrap_or(&[]);
        for part in chunks {
            write_frame(&mut self.stream, &v2::encode_batch_part_frame(tag, part))?;
        }
        write_frame(
            &mut self.stream,
            &v2::encode_batch_end_frame(tag, key, reports.len() as u32, inline),
        )?;
        Ok(tag)
    }

    /// Fault injection: stream the first half of a bulk upload as a
    /// complete continuation frame, start a second one, cut it off
    /// mid-frame and slam the connection shut. The summary frame never
    /// goes out, so the server must drop everything buffered — no
    /// partial batch may become visible.
    pub fn send_batch_truncated(&mut self, reports: &[(TaskId, RunOutcome)]) -> io::Result<()> {
        let tag = self.next_tag;
        let mid = reports.len() / 2;
        write_frame(
            &mut self.stream,
            &v2::encode_batch_part_frame(tag, &reports[..mid]),
        )?;
        let second = v2::encode_batch_part_frame(tag, &reports[mid..]);
        self.stream.write_all(&second[..second.len() / 2])?;
        self.stream.shutdown(std::net::Shutdown::Both)
    }

    /// Subscribe this connection to server-push notifications for `key`.
    /// After the ack, the server may send tag-0 push frames at any time.
    pub fn subscribe(&mut self, key: &ContributorKey) -> io::Result<()> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        write_frame(&mut self.stream, &v2::encode_subscribe_frame(tag, key))?;
        let (rtag, outcome) = self.recv()?;
        if rtag != tag {
            return Err(bad(format!(
                "subscribe ack tag {rtag} does not match request tag {tag}"
            )));
        }
        outcome
            .map(|_| ())
            .map_err(|e| bad(format!("subscribe refused: {e}")))
    }

    /// Block up to `timeout` for the next push frame. `Ok(None)` means
    /// the wait timed out with nothing pushed. Meant for dedicated
    /// subscription connections: reads go through an internal buffer so
    /// a timeout mid-frame never loses framing.
    pub fn recv_notification(&mut self, timeout: Duration) -> io::Result<Option<Notification>> {
        if !self.notes.is_empty() {
            return Ok(Some(self.notes.remove(0)));
        }
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((_, body)) = v2::take_frame(&mut self.pushbuf, self.max_frame)
                .map_err(|e| bad(e.to_string()))?
            {
                return match v2::decode_reply(&body).map_err(bad)? {
                    DecodedReply::Notification(n) => Ok(Some(n)),
                    _ => Err(bad(
                        "expected a push frame on the subscription connection".into(),
                    )),
                };
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(bad("subscription connection closed".into())),
                Ok(n) => self.pushbuf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Map an exhausted-retries io failure into the typed transport error,
/// same wording as the v1 client uses.
pub fn transport_error(detail: &str, attempts: u32) -> PlatformError {
    PlatformError::Transport(format!("{detail} (after {attempts} attempts)"))
}
