//! The transport "muscles": everything that moves protocol bytes.
//!
//! [`http`] is the v1 muscle — a deliberately small HTTP/1.1 subset, one
//! request per connection. [`framed`] is the v2 muscle — length-framed
//! binary messages over one persistent TCP connection, with tagged
//! frames so multiple requests can be in flight (pipelining). Neither
//! module interprets payloads: encoding and decoding live entirely in
//! [`crate::wire::proto`].

pub mod framed;
pub mod http;
