//! The typed client: the platform's Rust surface over either transport.
//!
//! Every method mirrors a [`crate::SqalpelServer`] operation and returns
//! the same `PlatformResult` types, so code written against the server —
//! the driver loop, [`crate::workers::run_worker_pool`], the bench
//! harness — runs against a remote platform unchanged (the client
//! implements [`Platform`]).
//!
//! The client is transport-agnostic: build it with
//! [`WireClient::builder`] and pick the muscle with
//! [`WireClientBuilder::transport`] —
//!
//! * [`Proto::V1Http`]: JSON over HTTP/1.1, one fresh connection per
//!   call (`Connection: close`). Maximally debuggable, `curl`-able.
//! * [`Proto::V2Framed`]: the length-framed binary protocol over one
//!   persistent TCP connection, with [`WireClient::pipeline`] for many
//!   in-flight requests. Same typed surface, same errors.
//!
//! Robustness model (identical across transports):
//!
//! * every attempt is bounded by connect and socket I/O timeouts — no
//!   stalled request can hang a worker;
//! * connect failures, I/O errors and server-side transport errors are
//!   retried with deterministic exponential backoff ([`RetryPolicy`]) —
//!   safe because the server keeps claim/report idempotent per
//!   contributor key;
//! * typed platform errors are **never** retried: the exact
//!   [`PlatformError`] variant is reconstructed and returned;
//! * exhausted retries surface as [`PlatformError::Transport`].
//!
//! For tests, [`WireClientBuilder::inject_drop_every`] makes every Nth
//! request lose its response: on v1 the client writes the full HTTP
//! request then closes without reading; on v2 it writes *half a frame*
//! and slams the connection, which the server must discard without
//! dispatching. Either way the retry + idempotency pair must absorb the
//! failure without double-counting.

use crate::catalog::{DbmsEntry, HostEntry, Visibility};
use crate::driver::RunOutcome;
use crate::error::{PlatformError, PlatformResult};
use crate::metrics::MetricsSnapshot;
use crate::pool::{QueryId, Strategy};
use crate::project::{ExperimentId, ProjectId, Role};
use crate::push::{Notification, PushWaiter};
use crate::queue::{QueueSummary, Task, TaskId};
use crate::results::ResultRecord;
use crate::server::Platform;
use crate::user::{ContributorKey, UserId};
use crate::wire::proto::{v1, ExecOutcome, Reply, Request};
use crate::wire::transport::framed::FramedConn;
use crate::wire::transport::http::{read_response, write_request};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Bounded retry with deterministic exponential backoff: attempt `i`
/// sleeps `min(base << i, max)` before retrying. No jitter — runs are
/// reproducible, and the contention this protects against (a restarting
/// server, a dropped response) does not thundering-herd at this scale.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 = no retries.
    pub attempts: u32,
    pub base_backoff: Duration,
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .checked_mul(1u32 << attempt.min(16))
            .unwrap_or(self.max_backoff);
        exp.min(self.max_backoff)
    }
}

/// Which wire protocol a [`WireClient`] speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Proto {
    /// JSON over HTTP/1.1, one connection per request (the original).
    #[default]
    V1Http,
    /// Length-framed binary over one persistent connection, pipelinable.
    V2Framed,
}

/// Builder for [`WireClient`] — the one way to configure a client.
///
/// ```no_run
/// use sqalpel_core::wire::{Proto, RetryPolicy, WireClient};
/// let client = WireClient::builder("127.0.0.1:8080".parse().unwrap())
///     .transport(Proto::V2Framed)
///     .retry(RetryPolicy::default())
///     .build();
/// ```
pub struct WireClientBuilder {
    addr: SocketAddr,
    proto: Proto,
    retry: RetryPolicy,
    connect_timeout: Duration,
    io_timeout: Duration,
    max_body: usize,
    drop_every: u64,
}

impl WireClientBuilder {
    /// Select the wire protocol (default [`Proto::V1Http`]).
    pub fn transport(mut self, proto: Proto) -> WireClientBuilder {
        self.proto = proto;
        self
    }

    pub fn retry(mut self, retry: RetryPolicy) -> WireClientBuilder {
        self.retry = retry;
        self
    }

    pub fn connect_timeout(mut self, t: Duration) -> WireClientBuilder {
        self.connect_timeout = t;
        self
    }

    pub fn io_timeout(mut self, t: Duration) -> WireClientBuilder {
        self.io_timeout = t;
        self
    }

    /// Lose the response of every `n`th request (see module docs).
    pub fn inject_drop_every(mut self, n: u64) -> WireClientBuilder {
        self.drop_every = n;
        self
    }

    pub fn build(self) -> WireClient {
        WireClient {
            addr: self.addr,
            proto: self.proto,
            retry: self.retry,
            connect_timeout: self.connect_timeout,
            io_timeout: self.io_timeout,
            max_body: self.max_body,
            drop_every: self.drop_every,
            requests: AtomicU64::new(0),
            conn: Mutex::new(None),
        }
    }
}

/// A typed client for one sqalpel server, over either protocol.
pub struct WireClient {
    addr: SocketAddr,
    proto: Proto,
    retry: RetryPolicy,
    connect_timeout: Duration,
    io_timeout: Duration,
    max_body: usize,
    /// Fault injection: drop the connection after writing every Nth
    /// request, losing the response. 0 = disabled.
    drop_every: u64,
    requests: AtomicU64,
    /// The persistent v2 connection, lazily established, dropped on any
    /// I/O error so the next attempt reconnects. Unused on v1.
    conn: Mutex<Option<FramedConn>>,
}

/// One attempt's outcome: retry-worthy transport failure, or a final
/// typed result (success *or* a platform error — never retried).
enum Attempt {
    Retry(String),
    Final(PlatformResult<Reply>),
}

impl WireClient {
    /// Start configuring a client (see [`WireClientBuilder`]).
    pub fn builder(addr: SocketAddr) -> WireClientBuilder {
        WireClientBuilder {
            addr,
            proto: Proto::V1Http,
            retry: RetryPolicy::default(),
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            max_body: 1 << 24,
            drop_every: 0,
        }
    }

    /// The protocol this client speaks.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Total requests sent, retries and injected drops included.
    pub fn requests_sent(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    // ---------------------------------------------------------- transport

    /// One typed call with retry — the generic surface every convenience
    /// method below goes through, also usable directly (the differential
    /// suite drives it with every [`Request`] variant).
    pub fn call(&self, op: &Request) -> PlatformResult<Reply> {
        let mut last_failure = String::new();
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.retry.backoff(attempt - 1));
            }
            let outcome = match self.proto {
                Proto::V1Http => self.attempt_v1(op),
                Proto::V2Framed => self.attempt_v2(op),
            };
            match outcome {
                Attempt::Final(result) => return result,
                Attempt::Retry(msg) => last_failure = msg,
            }
        }
        Err(PlatformError::Transport(format!(
            "{last_failure} (after {} attempts)",
            self.retry.attempts.max(1)
        )))
    }

    /// v1: fresh connection, one HTTP exchange. 5xx and I/O failures are
    /// retryable; anything else decodes to a final typed outcome.
    fn attempt_v1(&self, op: &Request) -> Attempt {
        let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let http = v1::encode_request(op);
        let path = if http.query.is_empty() {
            http.path.clone()
        } else {
            let qs: Vec<String> = http
                .query
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("{}?{}", http.path, qs.join("&"))
        };
        let exchange = (|| -> std::io::Result<(u16, Vec<u8>)> {
            let mut stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
            stream.set_read_timeout(Some(self.io_timeout))?;
            stream.set_write_timeout(Some(self.io_timeout))?;
            write_request(&mut stream, &http.method, &path, &http.body)?;
            if self.drop_every != 0 && n.is_multiple_of(self.drop_every) {
                // The full request is on the wire (the server will
                // process it); closing now loses the response, simulating
                // a network failure between processing and delivery.
                drop(stream);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected connection drop",
                ));
            }
            read_response(&mut stream, self.max_body)
        })();
        match exchange {
            // 5xx: the server (or a proxy) failed; safe to retry because
            // the API is idempotent per contributor key.
            Ok((status, resp)) if status >= 500 => Attempt::Retry(format!(
                "{} {path}: server error {status}: {}",
                http.method,
                String::from_utf8_lossy(&resp)
            )),
            Ok((status, resp)) => Attempt::Final(v1::decode_reply(op, status, &resp)),
            Err(e) => Attempt::Retry(format!("{} {path}: {e}", http.method)),
        }
    }

    /// v2: reuse (or establish) the persistent framed connection. Any
    /// I/O failure tears the connection down so the next attempt starts
    /// from a clean handshake.
    fn attempt_v2(&self, op: &Request) -> Attempt {
        let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let mut guard = self.conn.lock().expect("conn lock");
        if guard.is_none() {
            match FramedConn::connect(
                &self.addr.to_string(),
                self.connect_timeout,
                self.io_timeout,
                self.max_body,
            ) {
                Ok(conn) => *guard = Some(conn),
                Err(e) => return Attempt::Retry(format!("{}: connect: {e}", op.op_name())),
            }
        }
        // Take the connection out of the slot: only a clean exchange
        // puts it back, so any failure path reconnects next attempt.
        let mut conn = guard.take().expect("connection just established");
        if self.drop_every != 0 && n.is_multiple_of(self.drop_every) {
            // Half a frame on the wire, then gone — the server must
            // discard it without dispatching (unlike v1's drop, the
            // request is NOT processed; the retry is the only delivery).
            let _ = conn.send_truncated(op);
            return Attempt::Retry(format!("{}: injected connection drop", op.op_name()));
        }
        match conn.call(op) {
            // A server-side transport error is the v2 analogue of 5xx.
            Ok(Err(PlatformError::Transport(msg))) => {
                *guard = Some(conn);
                Attempt::Retry(format!("{}: server transport error: {msg}", op.op_name()))
            }
            Ok(outcome) => {
                *guard = Some(conn);
                Attempt::Final(outcome)
            }
            Err(e) => Attempt::Retry(format!("{}: {e}", op.op_name())),
        }
    }

    /// Send many requests down the one v2 connection before reading any
    /// response, then match responses to requests by frame tag. Single
    /// attempt, no retry — a broken pipeline is one typed transport
    /// error, and the caller decides what was idempotent.
    ///
    /// Returns one outcome per request, in request order.
    pub fn pipeline(&self, ops: &[Request]) -> PlatformResult<Vec<PlatformResult<Reply>>> {
        if self.proto != Proto::V2Framed {
            return Err(PlatformError::Invalid(
                "pipelining requires the v2 framed transport".into(),
            ));
        }
        let mut guard = self.conn.lock().expect("conn lock");
        if guard.is_none() {
            *guard = Some(
                FramedConn::connect(
                    &self.addr.to_string(),
                    self.connect_timeout,
                    self.io_timeout,
                    self.max_body,
                )
                .map_err(|e| PlatformError::Transport(format!("pipeline connect: {e}")))?,
            );
        }
        // Take the connection out of the slot: on any failure it stays
        // out (dropped), so the next call starts from a clean handshake.
        let mut conn = guard.take().expect("connection just established");
        let mut tags = Vec::with_capacity(ops.len());
        for op in ops {
            self.requests.fetch_add(1, Ordering::Relaxed);
            let tag = conn
                .send(op)
                .map_err(|e| PlatformError::Transport(format!("pipeline send: {e}")))?;
            tags.push(tag);
        }
        let mut by_tag = std::collections::HashMap::with_capacity(tags.len());
        for _ in 0..tags.len() {
            let (tag, outcome) = conn
                .recv()
                .map_err(|e| PlatformError::Transport(format!("pipeline recv: {e}")))?;
            by_tag.insert(tag, outcome);
        }
        *guard = Some(conn);
        tags.iter()
            .map(|tag| {
                by_tag.remove(tag).ok_or_else(|| {
                    PlatformError::Transport(format!("pipeline: no response for tag {tag}"))
                })
            })
            .collect::<PlatformResult<Vec<_>>>()
    }

    fn expect<T>(
        reply: Reply,
        what: &str,
        extract: impl FnOnce(Reply) -> Option<T>,
    ) -> PlatformResult<T> {
        let debug = format!("{reply:?}");
        extract(reply).ok_or_else(|| {
            PlatformError::Transport(format!("expected {what} reply, got {debug}"))
        })
    }

    // ------------------------------------------------- the typed surface

    pub fn register_user(&self, nickname: &str, email: &str) -> PlatformResult<UserId> {
        let reply = self.call(&Request::RegisterUser {
            nickname: nickname.into(),
            email: email.into(),
        })?;
        Self::expect(reply, "user", |r| match r {
            Reply::User(u) => Some(u),
            _ => None,
        })
    }

    pub fn issue_key(&self, user: UserId) -> PlatformResult<ContributorKey> {
        let reply = self.call(&Request::IssueKey { user })?;
        Self::expect(reply, "key", |r| match r {
            Reply::Key(k) => Some(k),
            _ => None,
        })
    }

    pub fn add_dbms(&self, entry: DbmsEntry) -> PlatformResult<()> {
        self.call(&Request::AddDbms { entry }).map(|_| ())
    }

    pub fn add_host(&self, entry: HostEntry) -> PlatformResult<()> {
        self.call(&Request::AddHost { entry }).map(|_| ())
    }

    pub fn dbms_labels(&self) -> PlatformResult<Vec<String>> {
        let reply = self.call(&Request::DbmsLabels)?;
        Self::expect(reply, "labels", |r| match r {
            Reply::Labels(l) => Some(l),
            _ => None,
        })
    }

    pub fn create_project(
        &self,
        owner: UserId,
        title: &str,
        synopsis: &str,
        visibility: Visibility,
    ) -> PlatformResult<ProjectId> {
        let reply = self.call(&Request::CreateProject {
            owner,
            title: title.into(),
            synopsis: synopsis.into(),
            visibility,
        })?;
        Self::expect(reply, "project", |r| match r {
            Reply::Project(p) => Some(p),
            _ => None,
        })
    }

    pub fn invite(&self, project: ProjectId, owner: UserId, user: UserId) -> PlatformResult<()> {
        self.call(&Request::Invite { project, owner, user }).map(|_| ())
    }

    pub fn set_targets(
        &self,
        project: ProjectId,
        actor: UserId,
        dbms_labels: Vec<String>,
        hosts: Vec<String>,
    ) -> PlatformResult<()> {
        self.call(&Request::SetTargets {
            project,
            actor,
            dbms_labels,
            hosts,
        })
        .map(|_| ())
    }

    pub fn comment(&self, project: ProjectId, author: UserId, text: &str) -> PlatformResult<()> {
        self.call(&Request::Comment {
            project,
            author,
            text: text.into(),
        })
        .map(|_| ())
    }

    pub fn take_down(&self, project: ProjectId) -> PlatformResult<()> {
        self.call(&Request::TakeDown { project }).map(|_| ())
    }

    pub fn role_of(&self, project: ProjectId, user: UserId) -> PlatformResult<Role> {
        let reply = self.call(&Request::RoleOf { project, user })?;
        Self::expect(reply, "role", |r| match r {
            Reply::Role(role) => Some(role),
            _ => None,
        })
    }

    /// Add an experiment; the grammar travels as source text and is
    /// parsed server-side (a syntax error comes back as
    /// [`PlatformError::Grammar`]).
    #[allow(clippy::too_many_arguments)]
    pub fn add_experiment(
        &self,
        project: ProjectId,
        actor: UserId,
        title: &str,
        baseline_sql: &str,
        grammar_source: Option<&str>,
        template_cap: usize,
        pool_cap: usize,
    ) -> PlatformResult<ExperimentId> {
        let reply = self.call(&Request::AddExperiment {
            project,
            actor,
            title: title.into(),
            baseline_sql: baseline_sql.into(),
            grammar: grammar_source.map(str::to_string),
            template_cap: template_cap as u64,
            pool_cap: pool_cap as u64,
        })?;
        Self::expect(reply, "experiment", |r| match r {
            Reply::Experiment(e) => Some(e),
            _ => None,
        })
    }

    pub fn seed_pool(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        n_random: usize,
        seed: u64,
    ) -> PlatformResult<usize> {
        let reply = self.call(&Request::SeedPool {
            project,
            experiment,
            actor,
            n_random: n_random as u64,
            seed,
        })?;
        Self::expect(reply, "seeded count", |r| match r {
            Reply::Seeded(n) => Some(n as usize),
            _ => None,
        })
    }

    pub fn morph_pool(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        strategy: Option<Strategy>,
        steps: usize,
        seed: u64,
    ) -> PlatformResult<Vec<QueryId>> {
        let reply = self.call(&Request::MorphPool {
            project,
            experiment,
            actor,
            strategy: strategy.map(|s| s.name().to_string()),
            steps: steps as u64,
            seed,
        })?;
        Self::expect(reply, "added queries", |r| match r {
            Reply::Added(ids) => Some(ids),
            _ => None,
        })
    }

    pub fn enqueue_experiment(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
    ) -> PlatformResult<usize> {
        let reply = self.call(&Request::EnqueueExperiment {
            project,
            experiment,
            actor,
        })?;
        Self::expect(reply, "enqueued count", |r| match r {
            Reply::Enqueued(n) => Some(n as usize),
            _ => None,
        })
    }

    pub fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>> {
        let reply = self.call(&Request::RequestTask {
            key: key.clone(),
            dbms_label: dbms_label.into(),
            host: host.into(),
            claim: None,
        })?;
        Self::expect(reply, "task handout", |r| match r {
            Reply::Handout(t) => Some(t),
            _ => None,
        })
    }

    /// [`WireClient::request_task`] with a claim nonce: a transport
    /// retry re-receives only the hand-out made under the same nonce, so
    /// a worker can hold several claims at once and bulk-report them
    /// with [`WireClient::report_batch`].
    pub fn claim_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
        claim: u64,
    ) -> PlatformResult<Option<Task>> {
        let reply = self.call(&Request::RequestTask {
            key: key.clone(),
            dbms_label: dbms_label.into(),
            host: host.into(),
            claim: Some(claim),
        })?;
        Self::expect(reply, "task handout", |r| match r {
            Reply::Handout(t) => Some(t),
            _ => None,
        })
    }

    /// Upload a whole experiment's results in one acked exchange. On v2
    /// the reports stream as columnar continuation frames (see
    /// [`FramedConn::send_batch`]); on v1 they travel as one JSON body.
    /// Returns the record index of each report, in input order.
    pub fn report_batch(
        &self,
        key: &ContributorKey,
        reports: &[(TaskId, RunOutcome)],
    ) -> PlatformResult<Vec<u64>> {
        let reply = match self.proto {
            Proto::V1Http => self.call(&Request::ReportBatch {
                key: key.clone(),
                reports: reports.to_vec(),
            })?,
            Proto::V2Framed => self.call_batch(key, reports)?,
        };
        Self::expect(reply, "batch indices", |r| match r {
            Reply::Batch(idx) => Some(idx),
            _ => None,
        })
    }

    /// The bulk analogue of [`WireClient::call`]: same retry envelope,
    /// but each v2 attempt streams the batch as continuation frames.
    fn call_batch(
        &self,
        key: &ContributorKey,
        reports: &[(TaskId, RunOutcome)],
    ) -> PlatformResult<Reply> {
        let mut last_failure = String::new();
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.retry.backoff(attempt - 1));
            }
            match self.attempt_batch_v2(key, reports) {
                Attempt::Final(result) => return result,
                Attempt::Retry(msg) => last_failure = msg,
            }
        }
        Err(PlatformError::Transport(format!(
            "{last_failure} (after {} attempts)",
            self.retry.attempts.max(1)
        )))
    }

    fn attempt_batch_v2(
        &self,
        key: &ContributorKey,
        reports: &[(TaskId, RunOutcome)],
    ) -> Attempt {
        let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let mut guard = self.conn.lock().expect("conn lock");
        if guard.is_none() {
            match FramedConn::connect(
                &self.addr.to_string(),
                self.connect_timeout,
                self.io_timeout,
                self.max_body,
            ) {
                Ok(conn) => *guard = Some(conn),
                Err(e) => return Attempt::Retry(format!("report_batch: connect: {e}")),
            }
        }
        let mut conn = guard.take().expect("connection just established");
        if self.drop_every != 0 && n.is_multiple_of(self.drop_every) {
            // The connection dies mid-continuation-frame: the summary
            // never goes out, so the server must drop the buffered parts
            // undispatched and the retry is the only delivery.
            let _ = conn.send_batch_truncated(reports);
            return Attempt::Retry("report_batch: injected connection drop".into());
        }
        let exchange = (|| -> std::io::Result<PlatformResult<Reply>> {
            let sent = conn.send_batch(key, reports)?;
            let (tag, outcome) = conn.recv()?;
            if tag != sent {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("batch ack tag {tag} does not match request tag {sent}"),
                ));
            }
            Ok(outcome)
        })();
        match exchange {
            Ok(Err(PlatformError::Transport(msg))) => {
                *guard = Some(conn);
                Attempt::Retry(format!("report_batch: server transport error: {msg}"))
            }
            Ok(outcome) => {
                *guard = Some(conn);
                Attempt::Final(outcome)
            }
            Err(e) => Attempt::Retry(format!("report_batch: {e}")),
        }
    }

    /// Open a dedicated subscribed connection for server push, so a
    /// worker can park on the socket instead of empty-polling. v2 only —
    /// `None` on v1 (and on any connect/subscribe failure), where the
    /// caller falls back to polling.
    pub fn subscribe_push(&self, key: &ContributorKey) -> Option<Box<dyn PushWaiter>> {
        if self.proto != Proto::V2Framed {
            return None;
        }
        let mut conn = FramedConn::connect(
            &self.addr.to_string(),
            self.connect_timeout,
            self.io_timeout,
            self.max_body,
        )
        .ok()?;
        conn.subscribe(key).ok()?;
        Some(Box::new(RemoteWaiter { conn }))
    }

    pub fn report_result(
        &self,
        key: &ContributorKey,
        task: TaskId,
        outcome: &RunOutcome,
    ) -> PlatformResult<usize> {
        let reply = self.call(&Request::ReportResult {
            key: key.clone(),
            task,
            outcome: outcome.clone(),
        })?;
        Self::expect(reply, "record index", |r| match r {
            Reply::Index(n) => Some(n as usize),
            _ => None,
        })
    }

    pub fn queue_summary(&self) -> PlatformResult<QueueSummary> {
        let reply = self.call(&Request::QueueSummary)?;
        Self::expect(reply, "queue summary", |r| match r {
            Reply::Queue(q) => Some(q),
            _ => None,
        })
    }

    /// The server's metrics snapshot (`GET /v1/metrics`).
    pub fn metrics(&self) -> PlatformResult<MetricsSnapshot> {
        let reply = self.call(&Request::Metrics)?;
        Self::expect(reply, "metrics snapshot", |r| match r {
            Reply::Metrics(m) => Some(m),
            _ => None,
        })
    }

    pub fn reap_stuck(&self, timeout: Duration) -> PlatformResult<Vec<TaskId>> {
        let reply = self.call(&Request::ReapStuck {
            timeout_ms: timeout.as_millis() as u64,
        })?;
        Self::expect(reply, "reaped tasks", |r| match r {
            Reply::Reaped(ids) => Some(ids),
            _ => None,
        })
    }

    pub fn requeue(&self, task: TaskId) -> PlatformResult<()> {
        self.call(&Request::Requeue { task }).map(|_| ())
    }

    pub fn results_for_key(
        &self,
        project: ProjectId,
        key: &ContributorKey,
    ) -> PlatformResult<Vec<ResultRecord>> {
        let reply = self.call(&Request::ResultsForKey {
            project,
            key: key.clone(),
        })?;
        Self::expect(reply, "results", |r| match r {
            Reply::Results(rs) => Some(rs),
            _ => None,
        })
    }

    pub fn hide_result(
        &self,
        project: ProjectId,
        actor: UserId,
        index: usize,
        hidden: bool,
    ) -> PlatformResult<()> {
        self.call(&Request::HideResult {
            project,
            actor,
            index: index as u64,
            hidden,
        })
        .map(|_| ())
    }

    /// CSV export (a raw-text response on v1, a string frame on v2).
    pub fn export_csv(&self, project: ProjectId, viewer: UserId) -> PlatformResult<String> {
        let reply = self.call(&Request::ExportCsv { project, viewer })?;
        Self::expect(reply, "csv", |r| match r {
            Reply::Csv(text) => Some(text),
            _ => None,
        })
    }

    /// Execute SQL on the server's attached engine. Passing back the
    /// fingerprint from a previous outcome lets the server's plan cache
    /// skip parse/bind/rewrite on a hit.
    pub fn execute(&self, sql: &str, fingerprint: Option<u64>) -> PlatformResult<ExecOutcome> {
        let reply = self.call(&Request::Execute {
            sql: sql.into(),
            fingerprint,
        })?;
        Self::expect(reply, "execution outcome", |r| match r {
            Reply::Execution(out) => Some(out),
            _ => None,
        })
    }
}

/// The contribution surface over the wire: lets
/// [`crate::workers::run_worker_pool`] drain a remote server.
impl Platform for WireClient {
    fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>> {
        WireClient::request_task(self, key, dbms_label, host)
    }

    fn report_result(
        &self,
        key: &ContributorKey,
        task_id: TaskId,
        outcome: RunOutcome,
    ) -> PlatformResult<usize> {
        WireClient::report_result(self, key, task_id, &outcome)
    }

    fn queue_summary(&self) -> PlatformResult<QueueSummary> {
        WireClient::queue_summary(self)
    }

    fn subscribe_push(&self, key: &ContributorKey) -> Option<Box<dyn PushWaiter>> {
        WireClient::subscribe_push(self, key)
    }
}

/// A [`PushWaiter`] over a dedicated subscribed v2 connection: the
/// worker blocks on the socket and wakes when the server pushes.
pub struct RemoteWaiter {
    conn: FramedConn,
}

impl PushWaiter for RemoteWaiter {
    fn wait(&mut self, timeout: Duration) -> PlatformResult<Option<Notification>> {
        self.conn
            .recv_notification(timeout)
            .map_err(|e| PlatformError::Transport(format!("push wait: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(50));
        assert_eq!(p.backoff(30), Duration::from_millis(50));
    }

    fn unreachable_addr() -> SocketAddr {
        // Bind-then-drop yields an address nobody listens on.
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    }

    #[test]
    fn connect_refused_exhausts_into_transport_error() {
        let client = WireClient::builder(unreachable_addr())
            .retry(RetryPolicy {
                attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            })
            .build();
        match client.queue_summary() {
            Err(PlatformError::Transport(msg)) => assert!(msg.contains("2 attempts"), "{msg}"),
            other => panic!("expected transport error, got {other:?}"),
        }
        assert_eq!(client.requests_sent(), 2);
    }

    #[test]
    fn v2_connect_refused_also_exhausts() {
        let client = WireClient::builder(unreachable_addr())
            .transport(Proto::V2Framed)
            .retry(RetryPolicy {
                attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            })
            .build();
        match client.queue_summary() {
            Err(PlatformError::Transport(msg)) => assert!(msg.contains("3 attempts"), "{msg}"),
            other => panic!("expected transport error, got {other:?}"),
        }
        // Pipelining on a dead server is a single typed failure.
        match client.pipeline(&[Request::QueueSummary]) {
            Err(PlatformError::Transport(msg)) => assert!(msg.contains("connect"), "{msg}"),
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn pipelining_requires_v2() {
        let client = WireClient::builder(unreachable_addr()).build();
        match client.pipeline(&[Request::QueueSummary]) {
            Err(PlatformError::Invalid(msg)) => assert!(msg.contains("v2"), "{msg}"),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

}
