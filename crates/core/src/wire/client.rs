//! The typed client: the in-process server's Rust surface, over HTTP.
//!
//! Every method mirrors a [`crate::SqalpelServer`] operation and returns
//! the same `PlatformResult` types, so code written against the server —
//! the driver loop, [`crate::workers::run_worker_pool`], the bench
//! harness — runs against a remote platform unchanged (the client
//! implements [`Platform`]).
//!
//! Robustness model:
//!
//! * every call opens a fresh connection with a connect timeout and
//!   socket I/O timeouts — no stalled request can hang a worker;
//! * connect failures, I/O errors and 5xx responses are retried with
//!   deterministic exponential backoff ([`RetryPolicy`]) — safe because
//!   the server keeps claim/report idempotent per contributor key;
//! * 4xx responses are **never** retried: the body is a serialized
//!   [`PlatformError`] which is reconstructed and returned typed;
//! * exhausted retries surface as [`PlatformError::Transport`].
//!
//! For tests, [`WireClient::inject_drop_every`] makes the client write a
//! full request and then close the socket without reading the response
//! every Nth call — the server processes the request but the response is
//! lost, which is exactly the failure the retry + idempotency pair must
//! absorb without double-counting.

use crate::catalog::{DbmsEntry, HostEntry, Visibility};
use crate::driver::RunOutcome;
use crate::error::{PlatformError, PlatformResult};
use crate::metrics::MetricsSnapshot;
use crate::pool::{QueryId, Strategy};
use crate::project::{ExperimentId, ProjectId, Role};
use crate::queue::{QueueSummary, Task, TaskId};
use crate::results::ResultRecord;
use crate::server::Platform;
use crate::user::{ContributorKey, UserId};
use crate::wire::http::{read_response, write_request};
use serde::{Deserialize, Serialize, Value};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bounded retry with deterministic exponential backoff: attempt `i`
/// sleeps `min(base << i, max)` before retrying. No jitter — runs are
/// reproducible, and the contention this protects against (a restarting
/// server, a dropped response) does not thundering-herd at this scale.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 = no retries.
    pub attempts: u32,
    pub base_backoff: Duration,
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .checked_mul(1u32 << attempt.min(16))
            .unwrap_or(self.max_backoff);
        exp.min(self.max_backoff)
    }
}

/// A typed HTTP client for one sqalpel server.
pub struct WireClient {
    addr: SocketAddr,
    retry: RetryPolicy,
    connect_timeout: Duration,
    io_timeout: Duration,
    max_body: usize,
    /// Fault injection: drop the connection after writing every Nth
    /// request, losing the response. 0 = disabled.
    drop_every: u64,
    requests: AtomicU64,
}

impl WireClient {
    pub fn new(addr: SocketAddr) -> WireClient {
        WireClient {
            addr,
            retry: RetryPolicy::default(),
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            max_body: 1 << 24,
            drop_every: 0,
            requests: AtomicU64::new(0),
        }
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> WireClient {
        self.retry = retry;
        self
    }

    /// Lose the response of every `n`th request (see module docs).
    pub fn inject_drop_every(mut self, n: u64) -> WireClient {
        self.drop_every = n;
        self
    }

    /// Total HTTP requests sent, retries and injected drops included.
    pub fn requests_sent(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    // ---------------------------------------------------------- transport

    fn attempt(&self, method: &str, path: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let mut stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        write_request(&mut stream, method, path, body)?;
        if self.drop_every != 0 && n.is_multiple_of(self.drop_every) {
            // The full request is on the wire (the server will process
            // it); closing now loses the response, simulating a network
            // failure between processing and delivery.
            drop(stream);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected connection drop",
            ));
        }
        read_response(&mut stream, self.max_body)
    }

    /// One API call: retried transport, typed errors.
    fn call(&self, method: &str, path: &str, body: Option<&Value>) -> PlatformResult<Value> {
        let encoded = match body {
            Some(v) => serde_json::to_string(v)
                .map_err(|e| PlatformError::Transport(format!("encode: {e}")))?
                .into_bytes(),
            None => Vec::new(),
        };
        let mut last_failure = String::new();
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.retry.backoff(attempt - 1));
            }
            match self.attempt(method, path, &encoded) {
                // 5xx: the server (or a proxy) failed; safe to retry
                // because the API is idempotent per contributor key.
                Ok((status, resp)) if status >= 500 => {
                    last_failure = format!(
                        "{method} {path}: server error {status}: {}",
                        String::from_utf8_lossy(&resp)
                    );
                }
                // 4xx: a typed platform error — never retried.
                Ok((status, resp)) if status >= 400 => {
                    let text = String::from_utf8_lossy(&resp);
                    let err = serde_json::from_str::<Value>(&text)
                        .ok()
                        .and_then(|v| PlatformError::from_value(&v).ok());
                    return Err(err.unwrap_or_else(|| {
                        PlatformError::Transport(format!(
                            "{method} {path}: status {status} with undecodable body: {text}"
                        ))
                    }));
                }
                Ok((_, resp)) => {
                    let text = String::from_utf8_lossy(&resp);
                    return serde_json::from_str(&text).map_err(|e| {
                        PlatformError::Transport(format!("{method} {path}: bad JSON: {e}"))
                    });
                }
                Err(e) => {
                    last_failure = format!("{method} {path}: {e}");
                }
            }
        }
        Err(PlatformError::Transport(format!(
            "{last_failure} (after {} attempts)",
            self.retry.attempts.max(1)
        )))
    }

    fn post(&self, path: &str, body: Value) -> PlatformResult<Value> {
        self.call("POST", path, Some(&body))
    }

    fn get(&self, path: &str) -> PlatformResult<Value> {
        self.call("GET", path, None)
    }

    // ------------------------------------------------- the typed surface

    pub fn register_user(&self, nickname: &str, email: &str) -> PlatformResult<UserId> {
        let v = self.post(
            "/v1/user/register",
            obj(vec![("nickname", nickname.into()), ("email", email.into())]),
        )?;
        Ok(UserId(field_u64(&v, "user")?))
    }

    pub fn issue_key(&self, user: UserId) -> PlatformResult<ContributorKey> {
        let v = self.post("/v1/user/key", obj(vec![("user", user.0.into())]))?;
        Ok(ContributorKey(field_str(&v, "key")?))
    }

    pub fn add_dbms(&self, entry: DbmsEntry) -> PlatformResult<()> {
        self.post("/v1/dbms", entry.to_value()).map(|_| ())
    }

    pub fn add_host(&self, entry: HostEntry) -> PlatformResult<()> {
        self.post("/v1/host", entry.to_value()).map(|_| ())
    }

    pub fn dbms_labels(&self) -> PlatformResult<Vec<String>> {
        let v = self.get("/v1/dbms")?;
        v["labels"]
            .as_array()
            .ok_or_else(|| PlatformError::Transport("missing labels".into()))?
            .iter()
            .map(|l| {
                l.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| PlatformError::Transport("non-string label".into()))
            })
            .collect()
    }

    pub fn create_project(
        &self,
        owner: UserId,
        title: &str,
        synopsis: &str,
        visibility: Visibility,
    ) -> PlatformResult<ProjectId> {
        let v = self.post(
            "/v1/project/create",
            obj(vec![
                ("owner", owner.0.into()),
                ("title", title.into()),
                ("synopsis", synopsis.into()),
                ("visibility", visibility.to_value()),
            ]),
        )?;
        Ok(ProjectId(field_u64(&v, "project")?))
    }

    pub fn invite(&self, project: ProjectId, owner: UserId, user: UserId) -> PlatformResult<()> {
        self.post(
            &format!("/v1/project/{}/invite", project.0),
            obj(vec![("owner", owner.0.into()), ("user", user.0.into())]),
        )
        .map(|_| ())
    }

    pub fn set_targets(
        &self,
        project: ProjectId,
        actor: UserId,
        dbms_labels: Vec<String>,
        hosts: Vec<String>,
    ) -> PlatformResult<()> {
        self.post(
            &format!("/v1/project/{}/targets", project.0),
            obj(vec![
                ("actor", actor.0.into()),
                ("dbms_labels", strings(dbms_labels)),
                ("hosts", strings(hosts)),
            ]),
        )
        .map(|_| ())
    }

    pub fn comment(&self, project: ProjectId, author: UserId, text: &str) -> PlatformResult<()> {
        self.post(
            &format!("/v1/project/{}/comment", project.0),
            obj(vec![("author", author.0.into()), ("text", text.into())]),
        )
        .map(|_| ())
    }

    pub fn take_down(&self, project: ProjectId) -> PlatformResult<()> {
        self.post(&format!("/v1/project/{}/take_down", project.0), obj(vec![]))
            .map(|_| ())
    }

    pub fn role_of(&self, project: ProjectId, user: UserId) -> PlatformResult<Role> {
        let v = self.get(&format!("/v1/project/{}/role?user={}", project.0, user.0))?;
        Role::from_value(&v["role"]).map_err(PlatformError::Transport)
    }

    /// Add an experiment; the grammar travels as source text and is
    /// parsed server-side (a syntax error comes back as
    /// [`PlatformError::Grammar`]).
    #[allow(clippy::too_many_arguments)]
    pub fn add_experiment(
        &self,
        project: ProjectId,
        actor: UserId,
        title: &str,
        baseline_sql: &str,
        grammar_source: Option<&str>,
        template_cap: usize,
        pool_cap: usize,
    ) -> PlatformResult<ExperimentId> {
        let v = self.post(
            &format!("/v1/project/{}/experiment", project.0),
            obj(vec![
                ("actor", actor.0.into()),
                ("title", title.into()),
                ("baseline_sql", baseline_sql.into()),
                (
                    "grammar",
                    match grammar_source {
                        Some(src) => src.into(),
                        None => Value::Null,
                    },
                ),
                ("template_cap", template_cap.into()),
                ("pool_cap", pool_cap.into()),
            ]),
        )?;
        Ok(ExperimentId(field_u64(&v, "experiment")?))
    }

    pub fn seed_pool(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        n_random: usize,
        seed: u64,
    ) -> PlatformResult<usize> {
        let v = self.post(
            &format!("/v1/project/{}/experiment/{}/seed", project.0, experiment.0),
            obj(vec![
                ("actor", actor.0.into()),
                ("n_random", n_random.into()),
                ("seed", seed.into()),
            ]),
        )?;
        Ok(field_u64(&v, "seeded")? as usize)
    }

    pub fn morph_pool(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        strategy: Option<Strategy>,
        steps: usize,
        seed: u64,
    ) -> PlatformResult<Vec<QueryId>> {
        let v = self.post(
            &format!("/v1/project/{}/experiment/{}/morph", project.0, experiment.0),
            obj(vec![
                ("actor", actor.0.into()),
                (
                    "strategy",
                    match strategy {
                        Some(s) => s.name().into(),
                        None => Value::Null,
                    },
                ),
                ("steps", steps.into()),
                ("seed", seed.into()),
            ]),
        )?;
        v["added"]
            .as_array()
            .ok_or_else(|| PlatformError::Transport("missing added".into()))?
            .iter()
            .map(|q| {
                q.as_i64()
                    .map(|n| QueryId(n as u64))
                    .ok_or_else(|| PlatformError::Transport("non-numeric query id".into()))
            })
            .collect()
    }

    pub fn enqueue_experiment(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
    ) -> PlatformResult<usize> {
        let v = self.post(
            &format!(
                "/v1/project/{}/experiment/{}/enqueue",
                project.0, experiment.0
            ),
            obj(vec![("actor", actor.0.into())]),
        )?;
        Ok(field_u64(&v, "enqueued")? as usize)
    }

    pub fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>> {
        let v = self.post(
            "/v1/task/request",
            obj(vec![
                ("key", key.0.clone().into()),
                ("dbms_label", dbms_label.into()),
                ("host", host.into()),
            ]),
        )?;
        match &v["task"] {
            Value::Null => Ok(None),
            t => Task::from_value(t).map(Some).map_err(PlatformError::Transport),
        }
    }

    pub fn report_result(
        &self,
        key: &ContributorKey,
        task: TaskId,
        outcome: &RunOutcome,
    ) -> PlatformResult<usize> {
        let v = self.post(
            "/v1/result/report",
            obj(vec![
                ("key", key.0.clone().into()),
                ("task", task.0.into()),
                ("outcome", outcome.to_value()),
            ]),
        )?;
        Ok(field_u64(&v, "index")? as usize)
    }

    pub fn queue_summary(&self) -> PlatformResult<QueueSummary> {
        let v = self.get("/v1/queue/summary")?;
        QueueSummary::from_value(&v).map_err(PlatformError::Transport)
    }

    /// The server's metrics snapshot (`GET /v1/metrics`).
    pub fn metrics(&self) -> PlatformResult<MetricsSnapshot> {
        let v = self.get("/v1/metrics")?;
        MetricsSnapshot::from_value(&v).map_err(PlatformError::Transport)
    }

    pub fn reap_stuck(&self, timeout: Duration) -> PlatformResult<Vec<TaskId>> {
        let v = self.post(
            "/v1/queue/reap",
            obj(vec![("timeout_ms", (timeout.as_millis() as u64).into())]),
        )?;
        v["reaped"]
            .as_array()
            .ok_or_else(|| PlatformError::Transport("missing reaped".into()))?
            .iter()
            .map(|t| {
                t.as_i64()
                    .map(|n| TaskId(n as u64))
                    .ok_or_else(|| PlatformError::Transport("non-numeric task id".into()))
            })
            .collect()
    }

    pub fn requeue(&self, task: TaskId) -> PlatformResult<()> {
        self.post(&format!("/v1/task/{}/requeue", task.0), obj(vec![]))
            .map(|_| ())
    }

    pub fn results_for_key(
        &self,
        project: ProjectId,
        key: &ContributorKey,
    ) -> PlatformResult<Vec<ResultRecord>> {
        let v = self.get(&format!("/v1/project/{}/results?key={}", project.0, key.0))?;
        v["results"]
            .as_array()
            .ok_or_else(|| PlatformError::Transport("missing results".into()))?
            .iter()
            .map(|r| ResultRecord::from_value(r).map_err(PlatformError::Transport))
            .collect()
    }

    pub fn hide_result(
        &self,
        project: ProjectId,
        actor: UserId,
        index: usize,
        hidden: bool,
    ) -> PlatformResult<()> {
        self.post(
            "/v1/result/hide",
            obj(vec![
                ("project", project.0.into()),
                ("actor", actor.0.into()),
                ("index", index.into()),
                ("hidden", hidden.into()),
            ]),
        )
        .map(|_| ())
    }

    /// CSV export is the one non-JSON response; fetched raw.
    pub fn export_csv(&self, project: ProjectId, viewer: UserId) -> PlatformResult<String> {
        let path = format!("/v1/project/{}/csv?viewer={}", project.0, viewer.0);
        let mut last_failure = String::new();
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.retry.backoff(attempt - 1));
            }
            match self.attempt("GET", &path, b"") {
                Ok((status, _)) if status >= 500 => {
                    last_failure = format!("csv: server error {status}");
                }
                Ok((status, resp)) if status >= 400 => {
                    let text = String::from_utf8_lossy(&resp);
                    let err = serde_json::from_str::<Value>(&text)
                        .ok()
                        .and_then(|v| PlatformError::from_value(&v).ok());
                    return Err(err.unwrap_or_else(|| {
                        PlatformError::Transport(format!("csv: status {status}"))
                    }));
                }
                Ok((_, resp)) => return Ok(String::from_utf8_lossy(&resp).into_owned()),
                Err(e) => last_failure = format!("csv: {e}"),
            }
        }
        Err(PlatformError::Transport(last_failure))
    }
}

/// The contribution surface over the wire: lets
/// [`crate::workers::run_worker_pool`] drain a remote server.
impl Platform for WireClient {
    fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>> {
        WireClient::request_task(self, key, dbms_label, host)
    }

    fn report_result(
        &self,
        key: &ContributorKey,
        task_id: TaskId,
        outcome: RunOutcome,
    ) -> PlatformResult<usize> {
        WireClient::report_result(self, key, task_id, &outcome)
    }

    fn queue_summary(&self) -> PlatformResult<QueueSummary> {
        WireClient::queue_summary(self)
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = serde_json::Map::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

fn strings(items: Vec<String>) -> Value {
    Value::Array(items.into_iter().map(Value::from).collect())
}

fn field_u64(v: &Value, key: &str) -> PlatformResult<u64> {
    v[key]
        .as_i64()
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| PlatformError::Transport(format!("response missing {key:?}")))
}

fn field_str(v: &Value, key: &str) -> PlatformResult<String> {
    v[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| PlatformError::Transport(format!("response missing {key:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(50));
        assert_eq!(p.backoff(30), Duration::from_millis(50));
    }

    #[test]
    fn connect_refused_exhausts_into_transport_error() {
        // Bind-then-drop yields an address nobody listens on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = WireClient::new(addr).with_retry(RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        });
        match client.queue_summary() {
            Err(PlatformError::Transport(msg)) => assert!(msg.contains("2 attempts"), "{msg}"),
            other => panic!("expected transport error, got {other:?}"),
        }
        assert_eq!(client.requests_sent(), 2);
    }
}
