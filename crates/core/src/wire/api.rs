//! Endpoint routing: the versioned `/v1` JSON API over [`SqalpelServer`].
//!
//! Every operation of the in-process server is exposed as one endpoint.
//! Request and response bodies are JSON built from the same hand-written
//! serde impls the rest of the crate uses, so the wire format *is* the
//! documented DTO format. Errors are serialized [`PlatformError`]s
//! (`{"code", "message", "detail"}`) with the variant mapped to an HTTP
//! status by [`status_of`] — the client reconstructs the exact typed
//! error from the body.
//!
//! | Method & path                                      | Body → Response |
//! |----------------------------------------------------|-----------------|
//! | `POST /v1/user/register`                           | `{nickname, email}` → `{user}` |
//! | `POST /v1/user/key`                                | `{user}` → `{key}` |
//! | `GET  /v1/dbms`                                    | → `{labels}` |
//! | `POST /v1/dbms`                                    | `DbmsEntry` → `{}` |
//! | `POST /v1/host`                                    | `HostEntry` → `{}` |
//! | `POST /v1/project/create`                          | `{owner, title, synopsis, visibility}` → `{project}` |
//! | `POST /v1/project/{p}/invite`                      | `{owner, user}` → `{}` |
//! | `POST /v1/project/{p}/targets`                     | `{actor, dbms_labels, hosts}` → `{}` |
//! | `POST /v1/project/{p}/comment`                     | `{author, text}` → `{}` |
//! | `POST /v1/project/{p}/take_down`                   | `{}` → `{}` |
//! | `GET  /v1/project/{p}/role?user=`                  | → `{role}` |
//! | `POST /v1/project/{p}/experiment`                  | `{actor, title, baseline_sql, grammar?, template_cap, pool_cap}` → `{experiment}` |
//! | `POST /v1/project/{p}/experiment/{e}/seed`         | `{actor, n_random, seed}` → `{seeded}` |
//! | `POST /v1/project/{p}/experiment/{e}/morph`        | `{actor, strategy?, steps, seed}` → `{added}` |
//! | `POST /v1/project/{p}/experiment/{e}/enqueue`      | `{actor}` → `{enqueued}` |
//! | `GET  /v1/project/{p}/results?key=`                | → `{results}` |
//! | `GET  /v1/project/{p}/csv?viewer=`                 | → CSV text |
//! | `POST /v1/result/hide`                             | `{project, actor, index, hidden}` → `{}` |
//! | `POST /v1/task/request`                            | `{key, dbms_label, host}` → `{task}` (`task` may be null) |
//! | `POST /v1/result/report`                           | `{key, task, outcome}` → `{index}` |
//! | `GET  /v1/queue/summary`                           | → `QueueSummary` |
//! | `POST /v1/queue/reap`                              | `{timeout_ms}` → `{reaped}` |
//! | `POST /v1/task/{t}/requeue`                        | `{}` → `{}` |
//! | `GET  /v1/metrics`                                 | → `MetricsSnapshot` |
//!
//! Every request is counted into the server's
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) under
//! `wire.requests`, a per-route counter (`wire.route.<METHOD /path>`,
//! with numeric segments normalized to `:id`), a status-class counter
//! (`wire.status.2xx` …) and a per-route latency histogram
//! (`wire.latency.<METHOD /path>`), all served back by `GET /v1/metrics`.

use crate::catalog::{DbmsEntry, HostEntry, Visibility};
use crate::driver::RunOutcome;
use crate::error::{PlatformError, PlatformResult};
use crate::pool::Strategy;
use crate::project::{ExperimentId, ProjectId};
use crate::queue::TaskId;
use crate::server::SqalpelServer;
use crate::user::{ContributorKey, UserId};
use crate::wire::http::{Request, Response};
use serde::{Deserialize, Serialize, Value};
use std::time::Duration;

/// The HTTP status carrying each error variant. Part of the v1 protocol.
pub fn status_of(err: &PlatformError) -> u16 {
    match err {
        PlatformError::Invalid(_) => 400,
        PlatformError::UnknownUser(_)
        | PlatformError::UnknownProject(_)
        | PlatformError::UnknownExperiment(_)
        | PlatformError::UnknownTask(_)
        | PlatformError::UnknownQuery(_) => 404,
        PlatformError::AccessDenied(_) => 403,
        PlatformError::Grammar(_) => 422,
        PlatformError::PoolFull(_) => 409,
        PlatformError::Publication(_) => 451,
        PlatformError::Transport(_) => 500,
    }
}

fn error_response(status: u16, err: &PlatformError) -> Response {
    Response::json(
        status,
        serde_json::to_string(err).expect("error serializes"),
    )
}

fn ok(value: Value) -> Response {
    Response::json(
        200,
        serde_json::to_string(&value).expect("value serializes"),
    )
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = serde_json::Map::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

// ------------------------------------------------------ field extraction

fn need_str(body: &Value, key: &str) -> PlatformResult<String> {
    body[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| PlatformError::Invalid(format!("missing string field {key:?}")))
}

fn need_u64(body: &Value, key: &str) -> PlatformResult<u64> {
    body[key]
        .as_i64()
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| PlatformError::Invalid(format!("missing numeric field {key:?}")))
}

fn need_strings(body: &Value, key: &str) -> PlatformResult<Vec<String>> {
    body[key]
        .as_array()
        .ok_or_else(|| PlatformError::Invalid(format!("missing array field {key:?}")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| PlatformError::Invalid(format!("{key:?} must hold strings")))
        })
        .collect()
}

fn need<T: Deserialize>(value: &Value, what: &str) -> PlatformResult<T> {
    T::from_value(value).map_err(|e| PlatformError::Invalid(format!("bad {what}: {e}")))
}

fn seg_id(seg: &str, what: &str) -> PlatformResult<u64> {
    seg.parse()
        .map_err(|_| PlatformError::Invalid(format!("{what} id {seg:?} is not a number")))
}

fn query_u64(req: &Request, key: &str) -> PlatformResult<u64> {
    req.query_param(key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| PlatformError::Invalid(format!("missing query parameter {key:?}")))
}

// --------------------------------------------------------------- routing

/// Dispatch one parsed request against the server. Never panics on
/// malformed input — every failure becomes a typed error response.
/// Every call is instrumented into the server's metrics registry.
pub fn handle(server: &SqalpelServer, req: &Request) -> Response {
    let label = route_label(req);
    let start = std::time::Instant::now();
    let resp = match route(server, req) {
        Ok(resp) => resp,
        Err(e) => error_response(status_of(&e), &e),
    };
    let metrics = server.metrics();
    metrics.incr("wire.requests");
    metrics.incr(&format!("wire.route.{label}"));
    metrics.incr(&format!("wire.status.{}xx", resp.status / 100));
    metrics.observe_nanos(
        &format!("wire.latency.{label}"),
        start.elapsed().as_nanos() as u64,
    );
    resp
}

/// A bounded-cardinality metric label for a request: the method plus the
/// path with numeric segments normalized to `:id`, so `/v1/project/7` and
/// `/v1/project/9` share one counter.
fn route_label(req: &Request) -> String {
    let parts: Vec<&str> = req
        .segments()
        .iter()
        .map(|seg| {
            if !seg.is_empty() && seg.chars().all(|c| c.is_ascii_digit()) {
                ":id"
            } else {
                *seg
            }
        })
        .collect();
    format!("{} /{}", req.method, parts.join("/"))
}

fn route(server: &SqalpelServer, req: &Request) -> PlatformResult<Response> {
    let body: Value = if req.body.is_empty() {
        Value::Null
    } else {
        let text = std::str::from_utf8(&req.body)
            .map_err(|_| PlatformError::Invalid("body is not UTF-8".into()))?;
        serde_json::from_str(text)
            .map_err(|e| PlatformError::Invalid(format!("body is not JSON: {e}")))?
    };
    let segments = req.segments();

    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "user", "register"]) => {
            let user =
                server.register_user(&need_str(&body, "nickname")?, &need_str(&body, "email")?)?;
            Ok(ok(obj(vec![("user", user.0.into())])))
        }
        ("POST", ["v1", "user", "key"]) => {
            let key = server.issue_key(UserId(need_u64(&body, "user")?))?;
            Ok(ok(obj(vec![("key", key.0.into())])))
        }
        ("GET", ["v1", "dbms"]) => {
            let labels: Vec<Value> = server.dbms_labels().into_iter().map(Value::from).collect();
            Ok(ok(obj(vec![("labels", Value::Array(labels))])))
        }
        ("POST", ["v1", "dbms"]) => {
            server.add_dbms(need::<DbmsEntry>(&body, "dbms entry")?)?;
            Ok(ok(obj(vec![])))
        }
        ("POST", ["v1", "host"]) => {
            server.add_host(need::<HostEntry>(&body, "host entry")?)?;
            Ok(ok(obj(vec![])))
        }
        ("POST", ["v1", "project", "create"]) => {
            let project = server.create_project(
                UserId(need_u64(&body, "owner")?),
                &need_str(&body, "title")?,
                &need_str(&body, "synopsis")?,
                need::<Visibility>(&body["visibility"], "visibility")?,
            )?;
            Ok(ok(obj(vec![("project", project.0.into())])))
        }
        ("POST", ["v1", "project", p, "invite"]) => {
            server.invite(
                ProjectId(seg_id(p, "project")?),
                UserId(need_u64(&body, "owner")?),
                UserId(need_u64(&body, "user")?),
            )?;
            Ok(ok(obj(vec![])))
        }
        ("POST", ["v1", "project", p, "targets"]) => {
            server.set_targets(
                ProjectId(seg_id(p, "project")?),
                UserId(need_u64(&body, "actor")?),
                need_strings(&body, "dbms_labels")?,
                need_strings(&body, "hosts")?,
            )?;
            Ok(ok(obj(vec![])))
        }
        ("POST", ["v1", "project", p, "comment"]) => {
            server.comment(
                ProjectId(seg_id(p, "project")?),
                UserId(need_u64(&body, "author")?),
                &need_str(&body, "text")?,
            )?;
            Ok(ok(obj(vec![])))
        }
        ("POST", ["v1", "project", p, "take_down"]) => {
            server.take_down(ProjectId(seg_id(p, "project")?))?;
            Ok(ok(obj(vec![])))
        }
        ("GET", ["v1", "project", p, "role"]) => {
            let role = server.role_of(
                ProjectId(seg_id(p, "project")?),
                UserId(query_u64(req, "user")?),
            )?;
            Ok(ok(obj(vec![("role", role.to_value())])))
        }
        ("POST", ["v1", "project", p, "experiment"]) => {
            let grammar = match &body["grammar"] {
                Value::Null => None,
                v => {
                    let src = v.as_str().ok_or_else(|| {
                        PlatformError::Invalid("grammar must be a string".into())
                    })?;
                    Some(sqalpel_grammar::Grammar::parse(src)?)
                }
            };
            let experiment = server.add_experiment(
                ProjectId(seg_id(p, "project")?),
                UserId(need_u64(&body, "actor")?),
                &need_str(&body, "title")?,
                &need_str(&body, "baseline_sql")?,
                grammar,
                need_u64(&body, "template_cap")? as usize,
                need_u64(&body, "pool_cap")? as usize,
            )?;
            Ok(ok(obj(vec![("experiment", experiment.0.into())])))
        }
        ("POST", ["v1", "project", p, "experiment", e, "seed"]) => {
            let seeded = server.seed_pool(
                ProjectId(seg_id(p, "project")?),
                ExperimentId(seg_id(e, "experiment")?),
                UserId(need_u64(&body, "actor")?),
                need_u64(&body, "n_random")? as usize,
                need_u64(&body, "seed")?,
            )?;
            Ok(ok(obj(vec![("seeded", seeded.into())])))
        }
        ("POST", ["v1", "project", p, "experiment", e, "morph"]) => {
            let strategy = match &body["strategy"] {
                Value::Null => None,
                v => Some(
                    Strategy::from_name(
                        v.as_str()
                            .ok_or_else(|| PlatformError::Invalid("strategy must be a string".into()))?,
                    )
                    .map_err(PlatformError::Invalid)?,
                ),
            };
            let added = server.morph_pool(
                ProjectId(seg_id(p, "project")?),
                ExperimentId(seg_id(e, "experiment")?),
                UserId(need_u64(&body, "actor")?),
                strategy,
                need_u64(&body, "steps")? as usize,
                need_u64(&body, "seed")?,
            )?;
            let ids: Vec<Value> = added.into_iter().map(|q| q.0.into()).collect();
            Ok(ok(obj(vec![("added", Value::Array(ids))])))
        }
        ("POST", ["v1", "project", p, "experiment", e, "enqueue"]) => {
            let enqueued = server.enqueue_experiment(
                ProjectId(seg_id(p, "project")?),
                ExperimentId(seg_id(e, "experiment")?),
                UserId(need_u64(&body, "actor")?),
            )?;
            Ok(ok(obj(vec![("enqueued", enqueued.into())])))
        }
        ("GET", ["v1", "project", p, "results"]) => {
            let key = ContributorKey(
                req.query_param("key")
                    .ok_or_else(|| PlatformError::Invalid("missing query parameter \"key\"".into()))?
                    .to_string(),
            );
            let records = server.results_for_key(ProjectId(seg_id(p, "project")?), &key)?;
            let rows: Vec<Value> = records.iter().map(|r| r.to_value()).collect();
            Ok(ok(obj(vec![("results", Value::Array(rows))])))
        }
        ("GET", ["v1", "project", p, "csv"]) => {
            let csv = server.export_csv(
                ProjectId(seg_id(p, "project")?),
                UserId(query_u64(req, "viewer")?),
            )?;
            Ok(Response::text(200, csv))
        }
        ("POST", ["v1", "result", "hide"]) => {
            server.hide_result(
                ProjectId(need_u64(&body, "project")?),
                UserId(need_u64(&body, "actor")?),
                need_u64(&body, "index")? as usize,
                body["hidden"]
                    .as_bool()
                    .ok_or_else(|| PlatformError::Invalid("missing bool field \"hidden\"".into()))?,
            )?;
            Ok(ok(obj(vec![])))
        }
        ("POST", ["v1", "task", "request"]) => {
            let task = server.request_task(
                &ContributorKey(need_str(&body, "key")?),
                &need_str(&body, "dbms_label")?,
                &need_str(&body, "host")?,
            )?;
            let task = match task {
                Some(t) => t.to_value(),
                None => Value::Null,
            };
            Ok(ok(obj(vec![("task", task)])))
        }
        ("POST", ["v1", "result", "report"]) => {
            let index = server.report_result(
                &ContributorKey(need_str(&body, "key")?),
                TaskId(need_u64(&body, "task")?),
                need::<RunOutcome>(&body["outcome"], "run outcome")?,
            )?;
            Ok(ok(obj(vec![("index", index.into())])))
        }
        ("GET", ["v1", "queue", "summary"]) => Ok(ok(server.queue_summary().to_value())),
        ("GET", ["v1", "metrics"]) => Ok(ok(server.metrics().snapshot().to_value())),
        ("POST", ["v1", "queue", "reap"]) => {
            let timeout = Duration::from_millis(need_u64(&body, "timeout_ms")?);
            let reaped: Vec<Value> = server
                .reap_stuck(timeout)
                .into_iter()
                .map(|t| t.0.into())
                .collect();
            Ok(ok(obj(vec![("reaped", Value::Array(reaped))])))
        }
        ("POST", ["v1", "task", t, "requeue"]) => {
            server.requeue(TaskId(seg_id(t, "task")?))?;
            Ok(ok(obj(vec![])))
        }
        _ => Ok(error_response(
            404,
            &PlatformError::Invalid(format!("no endpoint {} {}", req.method, req.path)),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueSummary;

    fn get(path: &str, query: Vec<(&str, &str)>) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &Value) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            body: serde_json::to_string(body).unwrap().into_bytes(),
        }
    }

    fn body_of(resp: &Response) -> Value {
        serde_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    #[test]
    fn management_surface_routes_end_to_end() {
        let server = SqalpelServer::new();
        let resp = handle(
            &server,
            &post(
                "/v1/user/register",
                &obj(vec![("nickname", "mlk".into()), ("email", "mlk@cwi.nl".into())]),
            ),
        );
        assert_eq!(resp.status, 200);
        let owner = body_of(&resp)["user"].as_i64().unwrap();

        let resp = handle(
            &server,
            &post(
                "/v1/project/create",
                &obj(vec![
                    ("owner", owner.into()),
                    ("title", "demo".into()),
                    ("synopsis", "api test".into()),
                    ("visibility", "public".into()),
                ]),
            ),
        );
        assert_eq!(resp.status, 200);
        let project = body_of(&resp)["project"].as_i64().unwrap();

        let resp = handle(
            &server,
            &get(
                &format!("/v1/project/{project}/role"),
                vec![("user", &owner.to_string())],
            ),
        );
        assert_eq!(body_of(&resp)["role"].as_str(), Some("owner"));

        let resp = handle(&server, &get("/v1/queue/summary", vec![]));
        let summary: QueueSummary = QueueSummary::from_value(&body_of(&resp)).unwrap();
        assert_eq!(summary.total(), 0);
    }

    #[test]
    fn metrics_endpoint_reports_instrumented_routes() {
        let server = SqalpelServer::new();
        handle(&server, &get("/v1/queue/summary", vec![]));
        // Numeric segments collapse to one :id label per route.
        handle(&server, &get("/v1/project/7/role", vec![("user", "1")]));
        handle(&server, &get("/v1/project/9/role", vec![("user", "1")]));
        let resp = handle(&server, &get("/v1/metrics", vec![]));
        assert_eq!(resp.status, 200);
        let snap = crate::metrics::MetricsSnapshot::from_value(&body_of(&resp)).unwrap();
        assert_eq!(snap.counter("wire.route.GET /v1/queue/summary"), Some(1));
        assert_eq!(snap.counter("wire.route.GET /v1/project/:id/role"), Some(2));
        assert_eq!(snap.counter("wire.requests"), Some(3));
        assert_eq!(
            snap.histogram("wire.latency.GET /v1/queue/summary")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn errors_map_to_statuses_and_typed_bodies() {
        let server = SqalpelServer::new();
        // Unknown project → 404, reconstructable as UnknownProject.
        let resp = handle(
            &server,
            &post("/v1/project/99/take_down", &obj(vec![])),
        );
        assert_eq!(resp.status, 404);
        let err = PlatformError::from_value(&body_of(&resp)).unwrap();
        assert_eq!(err, PlatformError::UnknownProject(99));

        // Malformed body → 400 invalid.
        let mut req = post("/v1/user/register", &obj(vec![]));
        req.body = b"not json".to_vec();
        let resp = handle(&server, &req);
        assert_eq!(resp.status, 400);
        assert_eq!(body_of(&resp)["code"].as_str(), Some("invalid"));

        // Unknown endpoint → 404.
        let resp = handle(&server, &get("/v1/no/such/thing", vec![]));
        assert_eq!(resp.status, 404);

        // Bad contributor key → 403.
        let resp = handle(
            &server,
            &post(
                "/v1/task/request",
                &obj(vec![
                    ("key", "ck_bogus".into()),
                    ("dbms_label", "rowstore-2.0".into()),
                    ("host", "bench-server".into()),
                ]),
            ),
        );
        assert_eq!(resp.status, 403);
        assert_eq!(body_of(&resp)["code"].as_str(), Some("access_denied"));
    }
}
