//! The raw results table (paper §5.5).
//!
//! "All raw results are collected in a results table for off-line
//! inspection. One particular use case is to remove results from target
//! systems that require a re-run … It is often a better strategy to keep
//! these results private until sufficient clarification has been obtained
//! from the contributor."

use crate::driver::OperatorProfile;
use crate::pool::QueryId;
use crate::project::{ExperimentId, ProjectId};
use crate::queue::TaskId;
use crate::user::ContributorKey;
use serde::{Deserialize, Serialize, Value};

/// System load averages (1, 5, 15 minutes), "easily accessible in a Linux
/// environment", recorded at the start and end of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadAvg {
    pub one: f64,
    pub five: f64,
    pub fifteen: f64,
}

impl Serialize for LoadAvg {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("one".into(), self.one.into());
        m.insert("five".into(), self.five.into());
        m.insert("fifteen".into(), self.fifteen.into());
        Value::Object(m)
    }
}

impl Deserialize for LoadAvg {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(LoadAvg {
            one: v["one"].as_f64().ok_or("loadavg: missing one")?,
            five: v["five"].as_f64().ok_or("loadavg: missing five")?,
            fifteen: v["fifteen"].as_f64().ok_or("loadavg: missing fifteen")?,
        })
    }
}

/// One contributed measurement: the wall-clock time of each repetition
/// plus the open-ended key-value extras.
#[derive(Debug, Clone)]
pub struct ResultRecord {
    pub task: u64,
    pub project: u64,
    pub experiment: u64,
    pub query: u64,
    pub dbms_label: String,
    pub host: String,
    /// The anonymous contributor key.
    pub contributor: String,
    /// Wall-clock milliseconds, one per repetition (default 5).
    pub times_ms: Vec<f64>,
    /// Rows produced (sanity check across systems).
    pub rows: usize,
    /// Set when the run errored; error runs are first-class data (the
    /// yellow dots of Figure 7).
    pub error: Option<String>,
    pub load_before: LoadAvg,
    pub load_after: LoadAvg,
    /// "An open-ended key-value list structure can be returned to keep
    /// system specific performance indicators for post inspection."
    pub extras: serde_json::Value,
    /// Moderation: hidden results are not served to readers.
    /// Absent in serialized input from older clients; defaults to false.
    pub hidden: bool,
    /// Canonical logical-plan fingerprint reported by the target system's
    /// EXPLAIN, when it has one. Lets post-processing group queries that
    /// are syntactically distinct but plan-equivalent.
    pub fingerprint: Option<u64>,
    /// Per-operator EXPLAIN ANALYZE profile from the contributor's
    /// system, when it has one — lets post-processing attribute a
    /// discriminative query to the operator that diverged. Kept out of
    /// the CSV export (the column set there is pinned); consumers read
    /// it from the JSON records.
    pub profile: Option<Vec<OperatorProfile>>,
}

impl Serialize for ResultRecord {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("task".into(), self.task.into());
        m.insert("project".into(), self.project.into());
        m.insert("experiment".into(), self.experiment.into());
        m.insert("query".into(), self.query.into());
        m.insert("dbms_label".into(), self.dbms_label.clone().into());
        m.insert("host".into(), self.host.clone().into());
        m.insert("contributor".into(), self.contributor.clone().into());
        m.insert("times_ms".into(), self.times_ms.clone().into());
        m.insert("rows".into(), self.rows.into());
        m.insert(
            "error".into(),
            match &self.error {
                Some(e) => Value::from(e.clone()),
                None => Value::Null,
            },
        );
        m.insert("load_before".into(), self.load_before.to_value());
        m.insert("load_after".into(), self.load_after.to_value());
        m.insert("extras".into(), self.extras.clone());
        m.insert("hidden".into(), self.hidden.into());
        m.insert(
            "fingerprint".into(),
            match self.fingerprint {
                Some(fp) => Value::from(format!("{fp:016x}")),
                None => Value::Null,
            },
        );
        m.insert(
            "profile".into(),
            match &self.profile {
                Some(ops) => Value::Array(ops.iter().map(|o| o.to_value()).collect()),
                None => Value::Null,
            },
        );
        Value::Object(m)
    }
}

impl Deserialize for ResultRecord {
    fn from_value(v: &Value) -> Result<Self, String> {
        let field_u64 =
            |k: &str| v[k].as_i64().map(|x| x as u64).ok_or(format!("missing {k}"));
        let field_str = |k: &str| {
            v[k].as_str()
                .map(str::to_string)
                .ok_or(format!("missing {k}"))
        };
        Ok(ResultRecord {
            task: field_u64("task")?,
            project: field_u64("project")?,
            experiment: field_u64("experiment")?,
            query: field_u64("query")?,
            dbms_label: field_str("dbms_label")?,
            host: field_str("host")?,
            contributor: field_str("contributor")?,
            times_ms: v["times_ms"]
                .as_array()
                .ok_or("missing times_ms")?
                .iter()
                .map(|t| t.as_f64().ok_or("non-numeric time".to_string()))
                .collect::<Result<_, _>>()?,
            rows: field_u64("rows")? as usize,
            error: if v["error"].is_null() {
                None
            } else {
                Some(field_str("error")?)
            },
            load_before: LoadAvg::from_value(&v["load_before"])?,
            load_after: LoadAvg::from_value(&v["load_after"])?,
            extras: v["extras"].clone(),
            hidden: v["hidden"].as_bool().unwrap_or(false),
            // Absent in input from older clients; encoded as 16 hex digits.
            fingerprint: v["fingerprint"]
                .as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok()),
            profile: match &v["profile"] {
                Value::Array(ops) => Some(
                    ops.iter()
                        .map(OperatorProfile::from_value)
                        .collect::<Result<_, _>>()?,
                ),
                _ => None,
            },
        })
    }
}

impl ResultRecord {
    /// The representative time: the median of the repetitions.
    pub fn median_ms(&self) -> Option<f64> {
        if self.error.is_some() || self.times_ms.is_empty() {
            return None;
        }
        let mut t = self.times_ms.clone();
        t.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        Some(t[t.len() / 2])
    }
}

/// The append-only results table with moderation.
#[derive(Debug, Default)]
pub struct ResultStore {
    records: Vec<ResultRecord>,
}

impl ResultStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, record: ResultRecord) -> usize {
        self.records.push(record);
        self.records.len() - 1
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records (moderator view).
    pub fn all(&self) -> &[ResultRecord] {
        &self.records
    }

    /// Records visible to readers: not hidden.
    pub fn visible(&self) -> impl Iterator<Item = &ResultRecord> {
        self.records.iter().filter(|r| !r.hidden)
    }

    /// Records of one experiment.
    pub fn for_experiment(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
    ) -> impl Iterator<Item = &ResultRecord> {
        self.records
            .iter()
            .filter(move |r| r.project == project.0 && r.experiment == experiment.0)
    }

    /// Records of one query.
    pub fn for_query(&self, query: QueryId) -> impl Iterator<Item = &ResultRecord> {
        self.records.iter().filter(move |r| r.query == query.0)
    }

    /// Index of the latest record a contributor filed for a task, if any
    /// — the idempotency check behind retried `report_result` calls.
    pub fn index_of(&self, task: TaskId, contributor: &str) -> Option<usize> {
        self.records
            .iter()
            .rposition(|r| r.task == task.0 && r.contributor == contributor)
    }

    /// Moderator: hide a record pending clarification.
    pub fn set_hidden(&mut self, index: usize, hidden: bool) -> bool {
        match self.records.get_mut(index) {
            Some(r) => {
                r.hidden = hidden;
                true
            }
            None => false,
        }
    }

    /// Moderator: remove an incorrectly-measured record.
    pub fn remove(&mut self, index: usize) -> Option<ResultRecord> {
        if index < self.records.len() {
            Some(self.records.remove(index))
        } else {
            None
        }
    }

    /// CSV export (§5.6: "exported in CSV for post-processing").
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "task,project,experiment,query,dbms,host,contributor,median_ms,runs,rows,error,hidden,fingerprint\n",
        );
        for r in &self.records {
            let median = r
                .median_ms()
                .map(|m| format!("{m:.3}"))
                .unwrap_or_default();
            let error = r.error.as_deref().unwrap_or("").replace(',', ";");
            let fingerprint = r
                .fingerprint
                .map(|fp| format!("{fp:016x}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.task,
                r.project,
                r.experiment,
                r.query,
                r.dbms_label,
                r.host,
                r.contributor,
                median,
                r.times_ms.len(),
                r.rows,
                error,
                r.hidden,
                fingerprint
            ));
        }
        out
    }
}

/// Convenience constructor for tests and the driver.
#[allow(clippy::too_many_arguments)]
pub fn record(
    task: TaskId,
    project: ProjectId,
    experiment: ExperimentId,
    query: QueryId,
    dbms_label: &str,
    host: &str,
    contributor: &ContributorKey,
    times_ms: Vec<f64>,
    rows: usize,
    error: Option<String>,
) -> ResultRecord {
    ResultRecord {
        task: task.0,
        project: project.0,
        experiment: experiment.0,
        query: query.0,
        dbms_label: dbms_label.to_string(),
        host: host.to_string(),
        contributor: contributor.0.clone(),
        times_ms,
        rows,
        error,
        load_before: LoadAvg::default(),
        load_after: LoadAvg::default(),
        extras: serde_json::Value::Null,
        hidden: false,
        fingerprint: None,
        profile: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(query: u64, times: Vec<f64>, error: Option<&str>) -> ResultRecord {
        record(
            TaskId(query),
            ProjectId(1),
            ExperimentId(0),
            QueryId(query),
            "rowstore-2.0",
            "bench-server",
            &ContributorKey("ck_1".into()),
            times,
            10,
            error.map(String::from),
        )
    }

    #[test]
    fn median_of_five() {
        let r = sample(0, vec![5.0, 1.0, 3.0, 2.0, 4.0], None);
        assert_eq!(r.median_ms(), Some(3.0));
    }

    #[test]
    fn errors_have_no_median() {
        let r = sample(0, vec![], Some("boom"));
        assert_eq!(r.median_ms(), None);
    }

    #[test]
    fn moderation_hides_and_removes() {
        let mut s = ResultStore::new();
        let i = s.push(sample(0, vec![1.0], None));
        s.push(sample(1, vec![2.0], None));
        assert_eq!(s.visible().count(), 2);
        assert!(s.set_hidden(i, true));
        assert_eq!(s.visible().count(), 1);
        assert!(!s.set_hidden(99, true));
        let removed = s.remove(i).unwrap();
        assert_eq!(removed.query, 0);
        assert_eq!(s.len(), 1);
        assert!(s.remove(99).is_none());
    }

    #[test]
    fn filtering_by_experiment_and_query() {
        let mut s = ResultStore::new();
        s.push(sample(0, vec![1.0], None));
        s.push(sample(1, vec![2.0], None));
        assert_eq!(s.for_experiment(ProjectId(1), ExperimentId(0)).count(), 2);
        assert_eq!(s.for_experiment(ProjectId(2), ExperimentId(0)).count(), 0);
        assert_eq!(s.for_query(QueryId(1)).count(), 1);
    }

    #[test]
    fn csv_export_shape() {
        let mut s = ResultStore::new();
        s.push(sample(0, vec![1.5, 2.5, 3.5], None));
        s.push(sample(1, vec![], Some("bad, query")));
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("task,project"));
        assert!(lines[1].contains("2.500"));
        // Commas in error text are sanitized.
        assert!(lines[2].contains("bad; query"));
    }

    #[test]
    fn serde_round_trip() {
        let mut r = sample(0, vec![1.0, 2.0], None);
        r.extras = serde_json::json!({"cache_hits": 42});
        r.fingerprint = Some(0x00ab_cdef_0123_4567);
        r.profile = Some(vec![OperatorProfile {
            op: "filter".into(),
            rows_in: 100,
            rows_out: 10,
            batches: 1,
            nanos: 5_000,
            chunks_scanned: 0,
            chunks_skipped: 0,
        }]);
        let text = serde_json::to_string(&r).unwrap();
        let back: ResultRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back.extras["cache_hits"], 42);
        assert_eq!(back.times_ms, vec![1.0, 2.0]);
        assert_eq!(back.fingerprint, Some(0x00ab_cdef_0123_4567));
        assert_eq!(back.profile, r.profile);
    }

    #[test]
    fn fingerprint_optional_in_serde_and_csv() {
        // Older clients omit the field entirely.
        let r = sample(0, vec![1.0], None);
        let mut v = r.to_value();
        if let Value::Object(m) = &mut v {
            m.remove("fingerprint");
        }
        let back = ResultRecord::from_value(&v).unwrap();
        assert_eq!(back.fingerprint, None);

        let mut s = ResultStore::new();
        let mut with_fp = sample(0, vec![1.0], None);
        with_fp.fingerprint = Some(0xdead_beef);
        s.push(with_fp);
        s.push(sample(1, vec![2.0], None));
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].ends_with(",fingerprint"));
        assert!(lines[1].ends_with(",00000000deadbeef"));
        assert!(lines[2].ends_with(",false,")); // no fingerprint: empty cell
    }
}
