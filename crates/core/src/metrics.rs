//! Platform metrics: counters and log-scaled latency histograms behind a
//! lock-sharded registry.
//!
//! The registry is shared by the server, the worker pool and every wire
//! endpoint, so it must be cheap under concurrent writers: names hash to
//! one of a fixed set of shards, each guarded by its own `parking_lot`
//! mutex, so two workers recording different metrics rarely contend.
//!
//! Histograms bucket durations by bit length (`log2`), which covers the
//! full `u64` nanosecond range in 64 buckets at a fixed memory cost and
//! makes merging a plain element-wise sum — associative and commutative,
//! which `tests/metrics_props.rs` pins under arbitrary recorded
//! sequences. Quantiles are read back as the upper bound of the bucket
//! the target rank falls in, an upper estimate with bounded (2x)
//! relative error — plenty for p50/p95/p99 latency reporting.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::time::Instant;

/// One bucket per possible bit length of a `u64` duration.
pub const BUCKETS: usize = 64;

const SHARDS: usize = 8;

/// A log₂-bucketed histogram of `u64` samples (nanoseconds, typically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Bucket index for a sample: its bit length, so bucket `b` holds values
/// in `[2^(b-1), 2^b)` (and bucket 0 holds exactly zero).
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Element-wise sum: associative and commutative by construction.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper bound of the bucket containing the rank-`q` sample
    /// (`0.0 < q <= 1.0`); zero on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return (1u64 << b) - 1;
            }
        }
        u64::MAX
    }

    /// The fixed `(count, p50, p95, p99)` summary shipped in snapshots.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
}

/// The lock-sharded registry. Cheap to write from many threads; reads
/// ([`MetricsRegistry::snapshot`]) take the shard locks one at a time.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    shards: [Mutex<Shard>; SHARDS],
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn shard(&self, name: &str) -> &Mutex<Shard> {
        &self.shards[(fnv1a(name) % SHARDS as u64) as usize]
    }

    /// Add `n` to a counter, creating it at zero first.
    pub fn add(&self, name: &str, n: u64) {
        let mut shard = self.shard(name).lock();
        *shard.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increment a counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Record one duration sample into a histogram.
    pub fn observe_nanos(&self, name: &str, nanos: u64) {
        let mut shard = self.shard(name).lock();
        shard
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(nanos);
    }

    /// Time a closure into the named histogram.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.observe_nanos(name, start.elapsed().as_nanos() as u64);
        out
    }

    /// Current value of a counter (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.shard(name).lock().counters.get(name).copied().unwrap_or(0)
    }

    /// A consistent-enough point-in-time view: each shard is read under
    /// its lock; cross-shard skew is at most the writes that land while
    /// the walk is in progress.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (k, v) in &shard.counters {
                counters.push((k.clone(), *v));
            }
            for (k, h) in &shard.histograms {
                histograms.push((k.clone(), h.summary()));
            }
        }
        counters.sort();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// The quantile summary of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// A point-in-time, name-sorted view of every metric — the payload of
/// `GET /v1/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }
}

impl Serialize for HistogramSummary {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("count".into(), self.count.into());
        m.insert("sum".into(), self.sum.into());
        m.insert("p50".into(), self.p50.into());
        m.insert("p95".into(), self.p95.into());
        m.insert("p99".into(), self.p99.into());
        Value::Object(m)
    }
}

impl Deserialize for HistogramSummary {
    fn from_value(v: &Value) -> Result<Self, String> {
        let field = |k: &str| -> Result<u64, String> {
            v[k].as_i64()
                .map(|n| n as u64)
                .ok_or_else(|| format!("histogram summary: missing {k}"))
        };
        Ok(HistogramSummary {
            count: field("count")?,
            sum: field("sum")?,
            p50: field("p50")?,
            p95: field("p95")?,
            p99: field("p99")?,
        })
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let mut counters = serde_json::Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), (*v).into());
        }
        let mut histograms = serde_json::Map::new();
        for (k, h) in &self.histograms {
            histograms.insert(k.clone(), h.to_value());
        }
        let mut m = serde_json::Map::new();
        m.insert("counters".into(), Value::Object(counters));
        m.insert("histograms".into(), Value::Object(histograms));
        Value::Object(m)
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_value(v: &Value) -> Result<Self, String> {
        let counters = v["counters"]
            .as_object()
            .ok_or("metrics snapshot: missing counters")?
            .iter()
            .map(|(k, n)| {
                n.as_i64()
                    .map(|n| (k.clone(), n as u64))
                    .ok_or_else(|| format!("metrics snapshot: non-integer counter {k}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let histograms = v["histograms"]
            .as_object()
            .ok_or("metrics snapshot: missing histograms")?
            .iter()
            .map(|(k, h)| HistogramSummary::from_value(h).map(|h| (k.clone(), h)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MetricsSnapshot {
            counters,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        // p50 is the 3rd of 5 samples (value 3, bucket 2, upper bound 3).
        assert_eq!(h.quantile(0.5), 3);
        // p99 lands on the largest sample's bucket (1000 -> 2^10 - 1).
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let m = MetricsRegistry::new();
        m.incr("a");
        m.add("a", 2);
        m.incr("b");
        m.observe_nanos("lat", 100);
        m.observe_nanos("lat", 200);
        let got = m.time("timed", || 7);
        assert_eq!(got, 7);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("missing"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.counter("b"), Some(1));
        assert_eq!(snap.histogram("lat").unwrap().count, 2);
        assert_eq!(snap.histogram("timed").unwrap().count, 1);
        // Name-sorted for deterministic serialization.
        let names: Vec<_> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = MetricsRegistry::new();
        m.add("req", 41);
        m.observe_nanos("lat", 1_000_000);
        let snap = m.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let m = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000 {
                        m.incr("shared");
                        m.observe_nanos("lat", i);
                    }
                });
            }
        });
        assert_eq!(m.counter("shared"), 4000);
        assert_eq!(m.snapshot().histogram("lat").unwrap().count, 4000);
    }
}
