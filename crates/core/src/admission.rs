//! Admission control: per-user in-flight bounds and per-project queue
//! quotas.
//!
//! A public platform hands benchmark tasks to strangers. Without a
//! bound, one contributor script stuck in a crash loop can check out the
//! entire queue and starve everyone else, and one moderator can enqueue
//! an experiment so large the server's memory becomes the limit. Two
//! caps police this:
//!
//! * **Per-user in-flight bound** — a user (across all of their
//!   contributor keys) may hold at most `max_inflight_per_user` tasks
//!   that are handed out but not yet reported. Excess `request_task`
//!   calls get [`PlatformError::Throttled`].
//! * **Per-project queue quota** — enqueueing past
//!   `max_queued_per_project` outstanding (non-terminal) tasks is
//!   rejected with `Throttled`.
//!
//! Reservation is race-free across shards: `try_reserve` atomically
//! checks and increments the user's count *before* the shard sweep
//! begins, `confirm` records the claimed task, and `cancel` returns the
//! slot if the sweep found nothing. Release happens on report, reap or
//! requeue.

use crate::error::{PlatformError, PlatformResult};
use crate::queue::TaskId;
use crate::user::{ContributorKey, UserId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Tunable admission bounds.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Most tasks a single user may hold in flight at once.
    pub max_inflight_per_user: usize,
    /// Most outstanding (queued + running) tasks a project may carry.
    pub max_queued_per_project: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight_per_user: 64,
            max_queued_per_project: 100_000,
        }
    }
}

#[derive(Default)]
struct Inner {
    /// Tasks currently held under each contributor key, each with the
    /// claim nonce it was handed out under (`None` = legacy claim or a
    /// recovered hand-out, which matches any nonce on re-request).
    by_key: HashMap<ContributorKey, Vec<(TaskId, Option<u64>)>>,
    /// In-flight count per user (sum over that user's keys, plus any
    /// not-yet-confirmed reservations).
    by_user: HashMap<UserId, usize>,
    /// Which user each key's held tasks are charged to.
    owner_of: HashMap<ContributorKey, UserId>,
}

/// Cross-shard admission state. One small mutex: every operation is a
/// couple of hash-map probes, and it is the only lock `request_task`
/// takes before picking a shard.
pub struct AdmissionControl {
    config: AdmissionConfig,
    inner: Mutex<Inner>,
}

impl AdmissionControl {
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionControl {
            config,
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Atomically claim an in-flight slot for `user`, or `Throttled` if
    /// the bound is already met. Must be paired with `confirm` or
    /// `cancel`.
    pub fn try_reserve(&self, user: UserId) -> PlatformResult<()> {
        let mut inner = self.inner.lock();
        let count = inner.by_user.entry(user).or_insert(0);
        if *count >= self.config.max_inflight_per_user {
            return Err(PlatformError::Throttled(format!(
                "user #{} already holds {} in-flight tasks (bound {})",
                user.0, count, self.config.max_inflight_per_user
            )));
        }
        *count += 1;
        Ok(())
    }

    /// Attach a claimed task to the reservation made by `try_reserve`,
    /// recording the claim nonce the hand-out answered (if any).
    pub fn confirm(&self, key: &ContributorKey, user: UserId, task: TaskId, claim: Option<u64>) {
        let mut inner = self.inner.lock();
        inner
            .by_key
            .entry(key.clone())
            .or_default()
            .push((task, claim));
        inner.owner_of.insert(key.clone(), user);
    }

    /// Return an unused reservation (the shard sweep found no task).
    pub fn cancel(&self, user: UserId) {
        let mut inner = self.inner.lock();
        if let Some(count) = inner.by_user.get_mut(&user) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                inner.by_user.remove(&user);
            }
        }
    }

    /// Drop a held task (reported, reaped or requeued). Returns whether
    /// the task was actually held — duplicate reports release nothing.
    ///
    /// Emptied bookkeeping is removed, not left at zero: a platform
    /// serving many contributors over a long uptime must not grow an
    /// entry per key or user ever seen. `confirm` re-records the owner
    /// on the key's next claim.
    pub fn release(&self, key: &ContributorKey, task: TaskId) -> bool {
        let mut inner = self.inner.lock();
        let Some(held) = inner.by_key.get_mut(key) else {
            return false;
        };
        let Some(pos) = held.iter().position(|(t, _)| *t == task) else {
            return false;
        };
        held.swap_remove(pos);
        let emptied = held.is_empty();
        if let Some(user) = inner.owner_of.get(key).copied() {
            if let Some(count) = inner.by_user.get_mut(&user) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    inner.by_user.remove(&user);
                }
            }
        }
        if emptied {
            inner.by_key.remove(key);
            inner.owner_of.remove(key);
        }
        true
    }

    /// [`release`](Self::release) for a whole bulk upload: one lock
    /// acquisition and one pass over the held list, instead of a
    /// rescan-under-mutex per task. Returns how many of `tasks` were
    /// actually held — duplicates in a retried batch release nothing.
    pub fn release_batch(&self, key: &ContributorKey, tasks: &[TaskId]) -> usize {
        let dropping: std::collections::HashSet<u64> = tasks.iter().map(|t| t.0).collect();
        let mut inner = self.inner.lock();
        let Some(held) = inner.by_key.get_mut(key) else {
            return 0;
        };
        let before = held.len();
        held.retain(|(t, _)| !dropping.contains(&t.0));
        let removed = before - held.len();
        if removed == 0 {
            return 0;
        }
        let emptied = held.is_empty();
        if let Some(user) = inner.owner_of.get(key).copied() {
            if let Some(count) = inner.by_user.get_mut(&user) {
                *count = count.saturating_sub(removed);
                if *count == 0 {
                    inner.by_user.remove(&user);
                }
            }
        }
        if emptied {
            inner.by_key.remove(key);
            inner.owner_of.remove(key);
        }
        removed
    }

    /// Drop a held task without knowing the key — the reaper's path,
    /// where the queue has already forgotten who held it. Returns
    /// whether any holder was found.
    pub fn release_any(&self, task: TaskId) -> bool {
        let key = {
            let inner = self.inner.lock();
            match inner
                .by_key
                .iter()
                .find(|(_, held)| held.iter().any(|(t, _)| *t == task))
            {
                Some((key, _)) => key.clone(),
                None => return false,
            }
        };
        self.release(&key, task)
    }

    /// Tasks currently held under a key (for idempotent re-hand-out).
    pub fn held_by(&self, key: &ContributorKey) -> Vec<TaskId> {
        self.held_with(key).into_iter().map(|(t, _)| t).collect()
    }

    /// Held tasks with the claim nonce each was handed out under.
    pub fn held_with(&self, key: &ContributorKey) -> Vec<(TaskId, Option<u64>)> {
        self.inner
            .lock()
            .by_key
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// Current in-flight count for a user.
    pub fn inflight_of(&self, user: UserId) -> usize {
        self.inner.lock().by_user.get(&user).copied().unwrap_or(0)
    }

    /// Current bookkeeping sizes as `(keys held, users counted, owners
    /// recorded)` — the bounded-state invariant: all three must return
    /// to zero once every hand-out is released.
    pub fn footprint(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock();
        (inner.by_key.len(), inner.by_user.len(), inner.owner_of.len())
    }

    /// Rebuild one held task during recovery (no bound check: the bound
    /// was enforced when the hand-out was first acknowledged).
    pub fn restore(&self, key: &ContributorKey, user: UserId, task: TaskId) {
        let mut inner = self.inner.lock();
        // Recovered hand-outs carry no nonce: they match any re-request.
        inner
            .by_key
            .entry(key.clone())
            .or_default()
            .push((task, None));
        inner.owner_of.insert(key.clone(), user);
        *inner.by_user.entry(user).or_insert(0) += 1;
    }

    /// Enforce the per-project queue quota before enqueueing `adding`
    /// more tasks on top of `outstanding` ones.
    pub fn check_quota(&self, outstanding: usize, adding: usize) -> PlatformResult<()> {
        if outstanding + adding > self.config.max_queued_per_project {
            return Err(PlatformError::Throttled(format!(
                "project queue quota exceeded: {outstanding} outstanding + {adding} new > {}",
                self.config.max_queued_per_project
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AdmissionControl {
        AdmissionControl::new(AdmissionConfig {
            max_inflight_per_user: 2,
            max_queued_per_project: 10,
        })
    }

    #[test]
    fn reserve_confirm_release_cycle_enforces_bound() {
        let adm = small();
        let user = UserId(1);
        let key = ContributorKey("ck_a".into());

        adm.try_reserve(user).unwrap();
        adm.confirm(&key, user, TaskId(100), None);
        adm.try_reserve(user).unwrap();
        adm.confirm(&key, user, TaskId(101), None);
        assert_eq!(adm.inflight_of(user), 2);
        assert!(matches!(
            adm.try_reserve(user),
            Err(PlatformError::Throttled(_))
        ));

        assert!(adm.release(&key, TaskId(100)));
        assert_eq!(adm.inflight_of(user), 1);
        adm.try_reserve(user).unwrap();
        adm.cancel(user); // sweep found nothing: slot returned
        assert_eq!(adm.inflight_of(user), 1);

        // Duplicate release is a no-op.
        assert!(!adm.release(&key, TaskId(100)));
        assert_eq!(adm.inflight_of(user), 1);
    }

    #[test]
    fn bound_spans_all_keys_of_a_user() {
        let adm = small();
        let user = UserId(7);
        let (k1, k2) = (ContributorKey("ck_1".into()), ContributorKey("ck_2".into()));
        adm.try_reserve(user).unwrap();
        adm.confirm(&k1, user, TaskId(1), None);
        adm.try_reserve(user).unwrap();
        adm.confirm(&k2, user, TaskId(2), None);
        assert!(adm.try_reserve(user).is_err());
        assert_eq!(adm.held_by(&k1), vec![TaskId(1)]);
        assert_eq!(adm.held_by(&k2), vec![TaskId(2)]);
        assert!(adm.release(&k2, TaskId(2)));
        adm.try_reserve(user).unwrap();
        adm.cancel(user);
    }

    #[test]
    fn release_clears_all_bookkeeping() {
        let adm = small();
        let user = UserId(9);
        let key = ContributorKey("ck_gc".into());
        adm.try_reserve(user).unwrap();
        adm.confirm(&key, user, TaskId(1), None);
        adm.try_reserve(user).unwrap();
        adm.confirm(&key, user, TaskId(2), None);
        assert_eq!(adm.footprint(), (1, 1, 1));
        assert!(adm.release(&key, TaskId(1)));
        assert_eq!(adm.footprint(), (1, 1, 1), "one task still held");
        assert!(adm.release(&key, TaskId(2)));
        assert_eq!(
            adm.footprint(),
            (0, 0, 0),
            "no per-key or per-user residue after the last release"
        );
        // A cancelled reservation leaves nothing behind either.
        adm.try_reserve(user).unwrap();
        adm.cancel(user);
        assert_eq!(adm.footprint(), (0, 0, 0));
    }

    #[test]
    fn restore_rebuilds_counts() {
        let adm = small();
        let user = UserId(3);
        let key = ContributorKey("ck_r".into());
        adm.restore(&key, user, TaskId(5));
        adm.restore(&key, user, TaskId(6));
        assert_eq!(adm.inflight_of(user), 2);
        assert_eq!(adm.held_by(&key).len(), 2);
        assert!(adm.try_reserve(user).is_err());
        assert!(adm.release(&key, TaskId(5)));
        adm.try_reserve(user).unwrap();
        adm.cancel(user);
    }

    #[test]
    fn quota_check() {
        let adm = small();
        adm.check_quota(4, 6).unwrap();
        assert!(matches!(
            adm.check_quota(5, 6),
            Err(PlatformError::Throttled(_))
        ));
        adm.check_quota(0, 10).unwrap();
    }
}
