//! Platform error type.

use std::fmt;

/// Errors raised by the sqalpel platform layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// Malformed input (names, emails, configuration).
    Invalid(String),
    UnknownUser(u64),
    UnknownProject(u64),
    UnknownExperiment(u64),
    UnknownTask(u64),
    UnknownQuery(u64),
    /// The caller lacks the required role on the project.
    AccessDenied(String),
    /// Grammar processing failed.
    Grammar(String),
    /// The pool hit its hard cap.
    PoolFull(usize),
    /// Publishing rules violated (e.g. a public project referencing a
    /// private DBMS/host entry).
    Publication(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Invalid(m) => write!(f, "invalid input: {m}"),
            PlatformError::UnknownUser(id) => write!(f, "unknown user #{id}"),
            PlatformError::UnknownProject(id) => write!(f, "unknown project #{id}"),
            PlatformError::UnknownExperiment(id) => write!(f, "unknown experiment #{id}"),
            PlatformError::UnknownTask(id) => write!(f, "unknown task #{id}"),
            PlatformError::UnknownQuery(id) => write!(f, "unknown query #{id}"),
            PlatformError::AccessDenied(m) => write!(f, "access denied: {m}"),
            PlatformError::Grammar(m) => write!(f, "grammar error: {m}"),
            PlatformError::PoolFull(cap) => write!(f, "query pool cap ({cap}) reached"),
            PlatformError::Publication(m) => write!(f, "publication rule violated: {m}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<sqalpel_grammar::GrammarParseError> for PlatformError {
    fn from(e: sqalpel_grammar::GrammarParseError) -> Self {
        PlatformError::Grammar(e.to_string())
    }
}

impl From<sqalpel_grammar::template::EnumerationError> for PlatformError {
    fn from(e: sqalpel_grammar::template::EnumerationError) -> Self {
        PlatformError::Grammar(e.to_string())
    }
}

impl From<sqalpel_grammar::GenerateError> for PlatformError {
    fn from(e: sqalpel_grammar::GenerateError) -> Self {
        PlatformError::Grammar(e.to_string())
    }
}

impl From<sqalpel_sql::ParseError> for PlatformError {
    fn from(e: sqalpel_sql::ParseError) -> Self {
        PlatformError::Grammar(e.to_string())
    }
}

pub type PlatformResult<T> = Result<T, PlatformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PlatformError::AccessDenied("not a contributor".into())
            .to_string()
            .contains("access denied"));
        assert_eq!(PlatformError::PoolFull(10).to_string(), "query pool cap (10) reached");
    }
}
