//! Platform error type.
//!
//! Every variant carries a *stable machine-readable code* ([`PlatformError::code`])
//! so wire clients can reconstruct the exact typed error from a JSON payload:
//! the [`serde::Serialize`]/[`serde::Deserialize`] impls round-trip
//! `{"code": ..., "message": ..., "detail": ...}` losslessly.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Errors raised by the sqalpel platform layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// Malformed input (names, emails, configuration).
    Invalid(String),
    UnknownUser(u64),
    UnknownProject(u64),
    UnknownExperiment(u64),
    UnknownTask(u64),
    UnknownQuery(u64),
    /// The caller lacks the required role on the project.
    AccessDenied(String),
    /// Grammar processing failed.
    Grammar(String),
    /// The pool hit its hard cap.
    PoolFull(usize),
    /// Publishing rules violated (e.g. a public project referencing a
    /// private DBMS/host entry, or a taken-down project being served).
    Publication(String),
    /// The wire transport failed after exhausting retries (connect
    /// refused, timeout, malformed response). Never raised in-process.
    Transport(String),
    /// Admission control rejected the request: the caller is over a
    /// per-user in-flight bound or a per-project queue quota. Retry
    /// after backing off; nothing was handed out or enqueued.
    Throttled(String),
}

impl PlatformError {
    /// The stable machine-readable error code carried on the wire.
    /// Codes are part of the v1 protocol: they never change meaning.
    pub fn code(&self) -> &'static str {
        match self {
            PlatformError::Invalid(_) => "invalid",
            PlatformError::UnknownUser(_) => "unknown_user",
            PlatformError::UnknownProject(_) => "unknown_project",
            PlatformError::UnknownExperiment(_) => "unknown_experiment",
            PlatformError::UnknownTask(_) => "unknown_task",
            PlatformError::UnknownQuery(_) => "unknown_query",
            PlatformError::AccessDenied(_) => "access_denied",
            PlatformError::Grammar(_) => "grammar",
            PlatformError::PoolFull(_) => "pool_full",
            PlatformError::Publication(_) => "publication",
            PlatformError::Transport(_) => "transport",
            PlatformError::Throttled(_) => "throttled",
        }
    }

    /// Rebuild the typed error from a `(code, detail)` pair. The detail is
    /// the variant payload: a number for the `unknown_*`/`pool_full`
    /// families, a message string for everything else.
    pub fn from_code(code: &str, detail: &Value) -> Result<PlatformError, String> {
        let num = || {
            detail
                .as_i64()
                .map(|n| n as u64)
                .ok_or_else(|| format!("error code {code:?} needs a numeric detail"))
        };
        let text = || {
            detail
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("error code {code:?} needs a string detail"))
        };
        Ok(match code {
            "invalid" => PlatformError::Invalid(text()?),
            "unknown_user" => PlatformError::UnknownUser(num()?),
            "unknown_project" => PlatformError::UnknownProject(num()?),
            "unknown_experiment" => PlatformError::UnknownExperiment(num()?),
            "unknown_task" => PlatformError::UnknownTask(num()?),
            "unknown_query" => PlatformError::UnknownQuery(num()?),
            "access_denied" => PlatformError::AccessDenied(text()?),
            "grammar" => PlatformError::Grammar(text()?),
            "pool_full" => PlatformError::PoolFull(num()? as usize),
            "publication" => PlatformError::Publication(text()?),
            "transport" => PlatformError::Transport(text()?),
            "throttled" => PlatformError::Throttled(text()?),
            other => return Err(format!("unknown error code {other:?}")),
        })
    }
}

impl Serialize for PlatformError {
    fn to_value(&self) -> Value {
        let detail: Value = match self {
            PlatformError::Invalid(m)
            | PlatformError::AccessDenied(m)
            | PlatformError::Grammar(m)
            | PlatformError::Publication(m)
            | PlatformError::Transport(m)
            | PlatformError::Throttled(m) => m.clone().into(),
            PlatformError::UnknownUser(id)
            | PlatformError::UnknownProject(id)
            | PlatformError::UnknownExperiment(id)
            | PlatformError::UnknownTask(id)
            | PlatformError::UnknownQuery(id) => (*id).into(),
            PlatformError::PoolFull(cap) => (*cap).into(),
        };
        let mut m = serde_json::Map::new();
        m.insert("code".into(), self.code().into());
        m.insert("message".into(), self.to_string().into());
        m.insert("detail".into(), detail);
        Value::Object(m)
    }
}

impl Deserialize for PlatformError {
    fn from_value(v: &Value) -> Result<Self, String> {
        let code = v["code"].as_str().ok_or("error: missing code")?;
        PlatformError::from_code(code, &v["detail"])
    }
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Invalid(m) => write!(f, "invalid input: {m}"),
            PlatformError::UnknownUser(id) => write!(f, "unknown user #{id}"),
            PlatformError::UnknownProject(id) => write!(f, "unknown project #{id}"),
            PlatformError::UnknownExperiment(id) => write!(f, "unknown experiment #{id}"),
            PlatformError::UnknownTask(id) => write!(f, "unknown task #{id}"),
            PlatformError::UnknownQuery(id) => write!(f, "unknown query #{id}"),
            PlatformError::AccessDenied(m) => write!(f, "access denied: {m}"),
            PlatformError::Grammar(m) => write!(f, "grammar error: {m}"),
            PlatformError::PoolFull(cap) => write!(f, "query pool cap ({cap}) reached"),
            PlatformError::Publication(m) => write!(f, "publication rule violated: {m}"),
            PlatformError::Transport(m) => write!(f, "transport failure: {m}"),
            PlatformError::Throttled(m) => write!(f, "throttled: {m}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<sqalpel_grammar::GrammarParseError> for PlatformError {
    fn from(e: sqalpel_grammar::GrammarParseError) -> Self {
        PlatformError::Grammar(e.to_string())
    }
}

impl From<sqalpel_grammar::template::EnumerationError> for PlatformError {
    fn from(e: sqalpel_grammar::template::EnumerationError) -> Self {
        PlatformError::Grammar(e.to_string())
    }
}

impl From<sqalpel_grammar::GenerateError> for PlatformError {
    fn from(e: sqalpel_grammar::GenerateError) -> Self {
        PlatformError::Grammar(e.to_string())
    }
}

impl From<sqalpel_sql::ParseError> for PlatformError {
    fn from(e: sqalpel_sql::ParseError) -> Self {
        PlatformError::Grammar(e.to_string())
    }
}

pub type PlatformResult<T> = Result<T, PlatformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PlatformError::AccessDenied("not a contributor".into())
            .to_string()
            .contains("access denied"));
        assert_eq!(PlatformError::PoolFull(10).to_string(), "query pool cap (10) reached");
    }

    /// The error-mapping table: every variant has a distinct stable code
    /// and survives a JSON round-trip bit-for-bit.
    #[test]
    fn every_variant_round_trips_with_a_stable_code() {
        let table: Vec<(&str, PlatformError)> = vec![
            ("invalid", PlatformError::Invalid("bad email".into())),
            ("unknown_user", PlatformError::UnknownUser(7)),
            ("unknown_project", PlatformError::UnknownProject(8)),
            ("unknown_experiment", PlatformError::UnknownExperiment(9)),
            ("unknown_task", PlatformError::UnknownTask(10)),
            ("unknown_query", PlatformError::UnknownQuery(11)),
            ("access_denied", PlatformError::AccessDenied("private".into())),
            ("grammar", PlatformError::Grammar("cycle".into())),
            ("pool_full", PlatformError::PoolFull(1000)),
            ("publication", PlatformError::Publication("taken down".into())),
            ("transport", PlatformError::Transport("connection refused".into())),
            ("throttled", PlatformError::Throttled("in-flight bound".into())),
        ];
        let mut seen = std::collections::HashSet::new();
        for (code, err) in table {
            assert_eq!(err.code(), code);
            assert!(seen.insert(code), "duplicate code {code}");
            let text = serde_json::to_string(&err).unwrap();
            let back: PlatformError = serde_json::from_str(&text).unwrap();
            assert_eq!(back, err, "round trip of {code}");
            // The JSON also carries the human-readable message.
            assert!(text.contains(&err.to_string().replace('"', "\\\"")));
        }
    }

    #[test]
    fn unknown_codes_and_bad_details_rejected() {
        assert!(PlatformError::from_code("no_such_code", &Value::Null).is_err());
        assert!(PlatformError::from_code("unknown_user", &Value::from("x")).is_err());
        assert!(PlatformError::from_code("invalid", &Value::from(3)).is_err());
    }
}
