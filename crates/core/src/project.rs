//! Performance projects with GitHub-style access control (paper §4.2).
//!
//! "A performance project is initiated and owned by someone, the project
//! leader, who acts as a moderator for quality assurance. Subsequently,
//! contributors are invited to run the experiments in their own DBMS
//! context and share results. For all other users, the project description
//! and results are available in read-only mode" — for public projects;
//! private projects are invisible to non-members. "A project declared
//! public may not contain references to private DBMS and host settings."

use crate::catalog::{Catalogs, Visibility};
use crate::error::{PlatformError, PlatformResult};
use crate::pool::QueryPool;
use crate::user::UserId;
use serde::{Deserialize, Serialize, Value};
use sqalpel_grammar::Grammar;
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProjectId(pub u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExperimentId(pub u64);

/// What a user may do on a project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// No access (private project, non-member).
    None,
    /// Read-only: public project, unrelated user.
    Reader,
    /// May run experiments and submit results; sees all results.
    Contributor,
    /// The project leader/moderator.
    Owner,
}

impl Serialize for Role {
    fn to_value(&self) -> Value {
        match self {
            Role::None => "none".into(),
            Role::Reader => "reader".into(),
            Role::Contributor => "contributor".into(),
            Role::Owner => "owner".into(),
        }
    }
}

impl Deserialize for Role {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v.as_str().ok_or("role: expected a string")? {
            "none" => Ok(Role::None),
            "reader" => Ok(Role::Reader),
            "contributor" => Ok(Role::Contributor),
            "owner" => Ok(Role::Owner),
            other => Err(format!("unknown role {other:?}")),
        }
    }
}

/// A registered-user comment on a project (§4.2: "Registered users can
/// leave comments on projects to improve upon the presentation, highlight
/// issues, or suggest other experiments").
#[derive(Debug, Clone)]
pub struct Comment {
    pub author: UserId,
    pub text: String,
}

/// One experiment: a baseline query turned into a grammar, with its pool.
#[derive(Debug)]
pub struct Experiment {
    pub id: ExperimentId,
    pub title: String,
    /// The user-supplied baseline query.
    pub baseline_sql: String,
    pub pool: QueryPool,
}

/// A performance project.
#[derive(Debug)]
pub struct Project {
    pub id: ProjectId,
    pub title: String,
    /// "Its synopsis contains all information to repeat the experiments,
    /// provides proper attribution to the database generator developers."
    pub synopsis: String,
    pub owner: UserId,
    pub visibility: Visibility,
    /// Invited contributors. A set, not a list: `role_of` sits on the
    /// task hand-out hot path and must stay cheap with 10k contributors.
    pub contributors: BTreeSet<UserId>,
    pub comments: Vec<Comment>,
    pub experiments: Vec<Experiment>,
    /// DBMS labels this project measures (checked against the catalogs).
    pub dbms_labels: Vec<String>,
    /// Host names this project runs on.
    pub hosts: Vec<String>,
    /// Set when a vendor has invoked notice-and-takedown (§4.3); the
    /// project stays but its results are no longer served.
    pub taken_down: bool,
    next_experiment: u64,
}

impl Project {
    pub fn new(
        id: ProjectId,
        title: impl Into<String>,
        synopsis: impl Into<String>,
        owner: UserId,
        visibility: Visibility,
    ) -> Self {
        Project {
            id,
            title: title.into(),
            synopsis: synopsis.into(),
            owner,
            visibility,
            contributors: BTreeSet::new(),
            comments: Vec::new(),
            experiments: Vec::new(),
            dbms_labels: Vec::new(),
            hosts: Vec::new(),
            taken_down: false,
            next_experiment: 0,
        }
    }

    /// The role a user holds on this project.
    pub fn role_of(&self, user: UserId) -> Role {
        if user == self.owner {
            Role::Owner
        } else if self.contributors.contains(&user) {
            Role::Contributor
        } else if self.visibility == Visibility::Public {
            Role::Reader
        } else {
            Role::None
        }
    }

    /// Check that `user` holds at least `required`.
    pub fn require(&self, user: UserId, required: Role) -> PlatformResult<()> {
        if self.role_of(user) >= required {
            Ok(())
        } else {
            Err(PlatformError::AccessDenied(format!(
                "user #{} needs {required:?} on project #{}",
                user.0, self.id.0
            )))
        }
    }

    /// Invite a contributor ("There is no upper limit on the number of
    /// contributors per project").
    pub fn invite(&mut self, inviter: UserId, user: UserId) -> PlatformResult<()> {
        self.require(inviter, Role::Owner)?;
        if user != self.owner {
            self.contributors.insert(user);
        }
        Ok(())
    }

    /// Add an experiment: the baseline SQL is converted into a grammar
    /// automatically (or a hand-written grammar is supplied).
    pub fn add_experiment(
        &mut self,
        actor: UserId,
        title: impl Into<String>,
        baseline_sql: &str,
        grammar: Option<Grammar>,
        template_cap: usize,
        pool_cap: usize,
    ) -> PlatformResult<ExperimentId> {
        self.require(actor, Role::Owner)?;
        let grammar = match grammar {
            Some(g) => g,
            None => sqalpel_grammar::convert_sql(baseline_sql)?,
        };
        let pool = QueryPool::new(grammar, template_cap, pool_cap)?;
        let id = ExperimentId(self.next_experiment);
        self.next_experiment += 1;
        self.experiments.push(Experiment {
            id,
            title: title.into(),
            baseline_sql: baseline_sql.to_string(),
            pool,
        });
        Ok(id)
    }

    /// Re-create an experiment during recovery: no role check, explicit
    /// id, grammar already parsed from its logged source. The pool comes
    /// back empty — entries are replayed separately.
    #[allow(clippy::too_many_arguments)] // mirrors the WAL record's field set
    pub fn restore_experiment(
        &mut self,
        id: ExperimentId,
        title: &str,
        baseline_sql: &str,
        grammar: Grammar,
        template_cap: usize,
        pool_cap: usize,
        dialect: Option<String>,
    ) -> PlatformResult<()> {
        let mut pool = QueryPool::new(grammar, template_cap, pool_cap)?;
        pool.set_dialect(dialect);
        self.next_experiment = self.next_experiment.max(id.0 + 1);
        self.experiments.push(Experiment {
            id,
            title: title.to_string(),
            baseline_sql: baseline_sql.to_string(),
            pool,
        });
        Ok(())
    }

    pub fn experiment(&self, id: ExperimentId) -> PlatformResult<&Experiment> {
        self.experiments
            .iter()
            .find(|e| e.id == id)
            .ok_or(PlatformError::UnknownExperiment(id.0))
    }

    pub fn experiment_mut(&mut self, id: ExperimentId) -> PlatformResult<&mut Experiment> {
        self.experiments
            .iter_mut()
            .find(|e| e.id == id)
            .ok_or(PlatformError::UnknownExperiment(id.0))
    }

    pub fn comment(&mut self, author: UserId, text: impl Into<String>) -> PlatformResult<()> {
        // Any registered user with at least read access may comment.
        self.require(author, Role::Reader)?;
        self.comments.push(Comment {
            author,
            text: text.into(),
        });
        Ok(())
    }

    /// Enforce §4.2's publication rule against the catalogs: "A project
    /// declared public may not contain references to private DBMS and
    /// host settings."
    pub fn check_publication(&self, catalogs: &Catalogs) -> PlatformResult<()> {
        if self.visibility != Visibility::Public {
            return Ok(());
        }
        for label in &self.dbms_labels {
            match catalogs.dbms(label) {
                Some(d) if d.visibility == Visibility::Public => {}
                Some(_) => {
                    return Err(PlatformError::Publication(format!(
                        "public project references private DBMS {label}"
                    )))
                }
                None => {
                    return Err(PlatformError::Publication(format!(
                        "public project references uncataloged DBMS {label}"
                    )))
                }
            }
        }
        for host in &self.hosts {
            match catalogs.host(host) {
                Some(h) if h.visibility == Visibility::Public => {}
                Some(_) => {
                    return Err(PlatformError::Publication(format!(
                        "public project references private host {host}"
                    )))
                }
                None => {
                    return Err(PlatformError::Publication(format!(
                        "public project references uncataloged host {host}"
                    )))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{DbmsEntry, HostEntry};

    fn project(vis: Visibility) -> Project {
        Project::new(ProjectId(1), "tpch-q1", "TPC-H Q1 study", UserId(1), vis)
    }

    #[test]
    fn roles() {
        let mut p = project(Visibility::Public);
        p.invite(UserId(1), UserId(2)).unwrap();
        assert_eq!(p.role_of(UserId(1)), Role::Owner);
        assert_eq!(p.role_of(UserId(2)), Role::Contributor);
        assert_eq!(p.role_of(UserId(3)), Role::Reader);
        let private = project(Visibility::Private);
        assert_eq!(private.role_of(UserId(3)), Role::None);
    }

    #[test]
    fn only_owner_invites() {
        let mut p = project(Visibility::Public);
        assert!(p.invite(UserId(2), UserId(3)).is_err());
        p.invite(UserId(1), UserId(3)).unwrap();
        assert_eq!(p.role_of(UserId(3)), Role::Contributor);
        // Idempotent; owner never becomes a contributor.
        p.invite(UserId(1), UserId(3)).unwrap();
        p.invite(UserId(1), UserId(1)).unwrap();
        assert_eq!(p.contributors.len(), 1);
    }

    #[test]
    fn add_experiment_converts_baseline() {
        let mut p = project(Visibility::Public);
        let id = p
            .add_experiment(
                UserId(1),
                "nation scan",
                "select count(*) from nation where n_name = 'BRAZIL'",
                None,
                1000,
                100,
            )
            .unwrap();
        let e = p.experiment(id).unwrap();
        assert!(e.pool.grammar().rule("l_pred").is_some());
    }

    #[test]
    fn non_owner_cannot_add_experiments() {
        let mut p = project(Visibility::Public);
        let err = p
            .add_experiment(UserId(5), "x", "select 1 from t", None, 10, 10)
            .unwrap_err();
        assert!(matches!(err, PlatformError::AccessDenied(_)));
    }

    #[test]
    fn comments_respect_visibility() {
        let mut public = project(Visibility::Public);
        public.comment(UserId(9), "nice work").unwrap();
        let mut private = project(Visibility::Private);
        assert!(private.comment(UserId(9), "sneaky").is_err());
        private.invite(UserId(1), UserId(9)).unwrap();
        private.comment(UserId(9), "now allowed").unwrap();
    }

    #[test]
    fn publication_rule_blocks_private_references() {
        let mut catalogs = Catalogs::bootstrap();
        catalogs
            .add_dbms(DbmsEntry {
                name: "secretdb".into(),
                version: "1".into(),
                vendor: "acme".into(),
                settings: Default::default(),
                visibility: Visibility::Private,
            })
            .unwrap();
        catalogs
            .add_host(HostEntry {
                name: "secret-host".into(),
                cpu: "?".into(),
                cores: 1,
                ram_gb: 1,
                os: "?".into(),
                visibility: Visibility::Private,
            })
            .unwrap();

        let mut p = project(Visibility::Public);
        p.dbms_labels.push("rowstore-2.0".into());
        p.hosts.push("bench-server".into());
        p.check_publication(&catalogs).unwrap();

        p.dbms_labels.push("secretdb-1".into());
        assert!(matches!(
            p.check_publication(&catalogs),
            Err(PlatformError::Publication(_))
        ));
        p.dbms_labels.pop();
        p.hosts.push("secret-host".into());
        assert!(p.check_publication(&catalogs).is_err());

        // Private projects may reference anything.
        let mut private = project(Visibility::Private);
        private.dbms_labels.push("secretdb-1".into());
        private.check_publication(&catalogs).unwrap();
    }

    #[test]
    fn uncataloged_reference_blocks_publication() {
        let catalogs = Catalogs::bootstrap();
        let mut p = project(Visibility::Public);
        p.dbms_labels.push("oracle-23c".into());
        assert!(p.check_publication(&catalogs).is_err());
    }
}
