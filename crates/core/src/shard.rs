//! Per-project shards of the platform state.
//!
//! The single `RwLock<State>` the server grew up with serialized every
//! operation — a contributor reporting a result for project A blocked a
//! moderator morphing project B's pool. Multi-tenant state is naturally
//! partitioned by project, so each project now lives in its own
//! [`ProjectShard`] behind its own lock: the project record, its task
//! queue and its result store. Users and the catalogs — small, shared,
//! read-mostly — stay in one [`GlobalShard`].
//!
//! Task ids carve up the id space by shard: the owning project sits in
//! the high 32 bits ([`TASK_PROJECT_SHIFT`]) and the shard-local
//! sequence in the low 32, so a task id alone routes a report to its
//! shard without any cross-shard lookup.

use crate::catalog::Catalogs;
use crate::error::{PlatformError, PlatformResult};
use crate::project::{Project, ProjectId};
use crate::queue::{TaskId, TaskQueue};
use crate::results::ResultStore;
use crate::user::UserRegistry;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Bits the owning project id occupies in a task id.
pub const TASK_PROJECT_SHIFT: u32 = 32;

/// The shard a task id belongs to.
pub fn project_of_task(id: TaskId) -> ProjectId {
    ProjectId(id.0 >> TASK_PROJECT_SHIFT)
}

/// The first task id of a project's shard.
pub fn task_id_base(project: ProjectId) -> u64 {
    project.0 << TASK_PROJECT_SHIFT
}

/// Users and catalogs: shared by every project, mutated rarely.
#[derive(Debug)]
pub struct GlobalShard {
    pub users: UserRegistry,
    pub catalogs: Catalogs,
}

/// Everything owned by one project: the project record (experiments,
/// pools, membership), its task queue and its results.
#[derive(Debug)]
pub struct ProjectShard {
    pub project: Project,
    pub queue: TaskQueue,
    pub results: ResultStore,
}

impl ProjectShard {
    pub fn new(project: Project) -> Self {
        let queue = TaskQueue::with_base(task_id_base(project.id));
        ProjectShard {
            project,
            queue,
            results: ResultStore::new(),
        }
    }
}

/// The shard map. Project ids are dense (1-based), so the map is a
/// vector of `Arc`'d shards: readers clone the `Arc` under a brief map
/// read lock, then work against only the shard's own lock.
pub struct ShardedState {
    pub global: RwLock<GlobalShard>,
    shards: RwLock<Vec<Arc<RwLock<ProjectShard>>>>,
    /// Rotating start position for fair round-robin hand-out across
    /// projects in `request_task`.
    cursor: AtomicUsize,
}

impl Default for ShardedState {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedState {
    /// Fresh state with the built-in catalogs loaded.
    pub fn new() -> Self {
        ShardedState {
            global: RwLock::new(GlobalShard {
                users: UserRegistry::new(),
                catalogs: Catalogs::bootstrap(),
            }),
            shards: RwLock::new(Vec::new()),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Reassemble state from recovered parts. Shards must be in project
    /// id order (1, 2, ...).
    pub fn from_parts(global: GlobalShard, shards: Vec<ProjectShard>) -> Self {
        ShardedState {
            global: RwLock::new(global),
            shards: RwLock::new(
                shards
                    .into_iter()
                    .map(|s| Arc::new(RwLock::new(s)))
                    .collect(),
            ),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Allocate the next project id and install its shard. The builder
    /// runs under the map write lock, so id allocation and installation
    /// are atomic.
    pub fn add_project(&self, build: impl FnOnce(ProjectId) -> Project) -> ProjectId {
        let mut shards = self.shards.write();
        let id = ProjectId(shards.len() as u64 + 1);
        shards.push(Arc::new(RwLock::new(ProjectShard::new(build(id)))));
        id
    }

    /// Like [`ShardedState::add_project`], but runs a fallible `log`
    /// callback between building the project and installing its shard —
    /// still under the map write lock, so the WAL sees project creations
    /// in id order. On error the id is never allocated.
    pub fn add_project_with<E>(
        &self,
        build: impl FnOnce(ProjectId) -> Project,
        log: impl FnOnce(&Project) -> Result<(), E>,
    ) -> Result<ProjectId, E> {
        let mut shards = self.shards.write();
        let id = ProjectId(shards.len() as u64 + 1);
        let project = build(id);
        log(&project)?;
        shards.push(Arc::new(RwLock::new(ProjectShard::new(project))));
        Ok(id)
    }

    pub fn shard(&self, id: ProjectId) -> PlatformResult<Arc<RwLock<ProjectShard>>> {
        let shards = self.shards.read();
        if id.0 == 0 {
            return Err(PlatformError::UnknownProject(id.0));
        }
        shards
            .get((id.0 - 1) as usize)
            .cloned()
            .ok_or(PlatformError::UnknownProject(id.0))
    }

    /// Route a task id to its owning shard.
    pub fn shard_of_task(&self, task: TaskId) -> PlatformResult<Arc<RwLock<ProjectShard>>> {
        self.shard(project_of_task(task))
            .map_err(|_| PlatformError::UnknownTask(task.0))
    }

    /// A point-in-time snapshot of the shard list (cheap `Arc` clones).
    pub fn all_shards(&self) -> Vec<Arc<RwLock<ProjectShard>>> {
        self.shards.read().clone()
    }

    /// Run `f` against the shard list while holding the map read lock
    /// for the whole call. Project creation needs the map write lock, so
    /// no shard can be installed — nor records for it logged — while `f`
    /// runs; the snapshotter's consistency cut depends on this.
    pub fn with_shards_locked<T>(&self, f: impl FnOnce(&[Arc<RwLock<ProjectShard>>]) -> T) -> T {
        f(&self.shards.read())
    }

    pub fn shard_count(&self) -> usize {
        self.shards.read().len()
    }

    /// The next round-robin start offset for a fair hand-out sweep.
    pub fn next_cursor(&self) -> usize {
        self.cursor.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Visibility;
    use crate::user::UserId;

    #[test]
    fn task_ids_route_to_their_shard() {
        let state = ShardedState::new();
        let p1 = state.add_project(|id| {
            Project::new(id, "a", "s", UserId(1), Visibility::Public)
        });
        let p2 = state.add_project(|id| {
            Project::new(id, "b", "s", UserId(1), Visibility::Public)
        });
        assert_eq!((p1, p2), (ProjectId(1), ProjectId(2)));
        assert_eq!(state.shard_count(), 2);

        let base2 = task_id_base(p2);
        assert_eq!(project_of_task(TaskId(base2)), p2);
        assert_eq!(project_of_task(TaskId(base2 + 41)), p2);
        let shard = state.shard_of_task(TaskId(base2 + 7)).unwrap();
        assert_eq!(shard.read().project.id, p2);
        assert_eq!(shard.read().queue.id_base(), base2);

        // Unknown routes fail typed, including project 0 (no shard).
        assert!(state.shard(ProjectId(0)).is_err());
        assert!(state.shard(ProjectId(3)).is_err());
        assert!(matches!(
            state.shard_of_task(TaskId(99 << TASK_PROJECT_SHIFT)),
            Err(PlatformError::UnknownTask(_))
        ));
    }

    #[test]
    fn cursor_rotates() {
        let state = ShardedState::new();
        let a = state.next_cursor();
        let b = state.next_cursor();
        assert_eq!(b, a + 1);
    }
}
