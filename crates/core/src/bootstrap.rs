//! Platform bootstrap: "We bootstrap the platform with a sizable number
//! of OLAP cases and products" (§1) — "it … contains sample projects
//! inspired by TPC-H, SSBM, airtraffic" (§5).
//!
//! [`bootstrap_server`] creates a ready-to-demo server: an admin user, a
//! TPC-H project with experiments for a spread of query shapes, an SSB
//! project and an airtraffic project, all with seeded pools.

use crate::catalog::Visibility;
use crate::error::PlatformResult;
use crate::project::{ExperimentId, ProjectId};
use crate::server::SqalpelServer;
use crate::user::UserId;

/// SSB Q1.1 over the star schema (`lineorder` ⋈ `date_dim`).
pub const SSB_Q1_1: &str = "\
select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, date_dim
where lo_orderdate = d_datekey
  and d_year = 1993
  and lo_discount between 1 and 3
  and lo_quantity < 25";

/// An airtraffic delay profile query over the `ontime` table.
pub const AIRTRAFFIC_DELAYS: &str = "\
select carrier, count(*) as flights, avg(depdelay) as avg_delay, max(arrdelay) as worst
from ontime
where cancelled = 0 and depdelay > 0 and distance > 500
group by carrier
order by avg_delay desc";

/// What [`bootstrap_server`] created.
pub struct Bootstrap {
    pub admin: UserId,
    pub tpch: ProjectId,
    pub tpch_experiments: Vec<(&'static str, ExperimentId)>,
    pub ssb: ProjectId,
    pub ssb_experiment: ExperimentId,
    pub airtraffic: ProjectId,
    pub airtraffic_experiment: ExperimentId,
}

/// Populate a server with the demo projects. Pools are seeded with the
/// baseline plus `n_random` random variants each (seeded by `seed`).
pub fn bootstrap_server(
    server: &SqalpelServer,
    n_random: usize,
    seed: u64,
) -> PlatformResult<Bootstrap> {
    let admin = server.register_user("sqalpel-admin", "admin@sqalpel.example")?;

    // --- TPC-H: a spread of query shapes --------------------------------
    let tpch = server.create_project(
        admin,
        "tpch-olap",
        "TPC-H inspired OLAP cases; data from sqalpel-datagen (dbgen derivative). \
         Attribution: TPC-H specification, Transaction Processing Performance Council.",
        Visibility::Public,
    )?;
    server.set_targets(
        tpch,
        admin,
        vec!["rowstore-2.0".into(), "rowstore-1.4".into(), "colstore-5.1".into()],
        vec!["bench-server".into()],
    )?;
    let mut tpch_experiments = Vec::new();
    for name in ["Q1", "Q3", "Q6", "Q14"] {
        let sql = sqalpel_sql::tpch::query(name).expect("known query");
        let exp = server.add_experiment(tpch, admin, name, sql, None, 50_000, 5_000)?;
        server.seed_pool(tpch, exp, admin, n_random, seed)?;
        tpch_experiments.push((name, exp));
    }

    // --- SSB -------------------------------------------------------------
    let ssb = server.create_project(
        admin,
        "ssb-star-schema",
        "Star Schema Benchmark flight; lineorder fact with the date dimension. \
         Attribution: O'Neil, O'Neil, Chen — SSB specification.",
        Visibility::Public,
    )?;
    server.set_targets(
        ssb,
        admin,
        vec!["rowstore-2.0".into(), "colstore-5.1".into()],
        vec!["bench-server".into()],
    )?;
    let ssb_experiment = server.add_experiment(ssb, admin, "SSB Q1.1", SSB_Q1_1, None, 10_000, 1_000)?;
    server.seed_pool(ssb, ssb_experiment, admin, n_random, seed)?;

    // --- airtraffic -------------------------------------------------------
    let airtraffic = server.create_project(
        admin,
        "airtraffic-ontime",
        "Synthetic on-time flight performance (the classic airtraffic demo set).",
        Visibility::Public,
    )?;
    server.set_targets(
        airtraffic,
        admin,
        vec!["rowstore-2.0".into(), "colstore-5.1".into()],
        vec!["bench-server".into()],
    )?;
    let airtraffic_experiment = server.add_experiment(
        airtraffic,
        admin,
        "carrier delays",
        AIRTRAFFIC_DELAYS,
        None,
        10_000,
        1_000,
    )?;
    server.seed_pool(airtraffic, airtraffic_experiment, admin, n_random, seed)?;

    Ok(Bootstrap {
        admin,
        tpch,
        tpch_experiments,
        ssb,
        ssb_experiment,
        airtraffic,
        airtraffic_experiment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::Role;

    #[test]
    fn bootstrap_creates_three_projects() {
        let server = SqalpelServer::new();
        let b = bootstrap_server(&server, 4, 1).unwrap();
        assert_eq!(b.tpch_experiments.len(), 4);
        // All projects are public: any registered user can read them.
        let reader = server.register_user("visitor", "v@x.io").unwrap();
        for p in [b.tpch, b.ssb, b.airtraffic] {
            assert_eq!(server.role_of(p, reader).unwrap(), Role::Reader);
        }
    }

    #[test]
    fn bootstrap_pools_are_seeded() {
        let server = SqalpelServer::new();
        let b = bootstrap_server(&server, 5, 2).unwrap();
        for (name, exp) in &b.tpch_experiments {
            let n = server
                .with_project_view(b.tpch, b.admin, |p| p.experiment(*exp).unwrap().pool.len())
                .unwrap();
            assert!(n >= 2, "{name} pool too small ({n})");
        }
    }

    #[test]
    fn ssb_baseline_runs_on_both_engines() {
        use sqalpel_engine::{ColStore, Database, Dbms, RowStore};
        use std::sync::Arc;
        let db = Arc::new(Database::ssb(0.001, 42));
        let a = RowStore::new(db.clone()).execute(SSB_Q1_1).unwrap();
        let b = ColStore::new(db).execute(SSB_Q1_1).unwrap();
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn airtraffic_baseline_runs() {
        use sqalpel_engine::{Database, Dbms, RowStore};
        use std::sync::Arc;
        let db = Arc::new(Database::airtraffic(50, 2015, 3));
        let r = RowStore::new(db).execute(AIRTRAFFIC_DELAYS).unwrap();
        assert!(r.row_count() >= 4, "several carriers expected");
    }

    #[test]
    fn bootstrap_enqueues_and_serves_tasks() {
        let server = SqalpelServer::new();
        let b = bootstrap_server(&server, 3, 5).unwrap();
        let (_, exp) = b.tpch_experiments[2]; // Q6
        let n = server.enqueue_experiment(b.tpch, exp, b.admin).unwrap();
        assert!(n > 0);
        let key = server.issue_key(b.admin).unwrap();
        let task = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap();
        assert!(task.is_some());
    }
}
