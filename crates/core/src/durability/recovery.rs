//! Boot-time recovery: latest snapshot + WAL tail → platform state.
//!
//! Replay applies each [`WalRecord`] as the physical outcome it logged,
//! in log order, against plain (un-locked) state parts — recovery is
//! single-threaded, locks come afterwards when the parts are wrapped in
//! a [`crate::shard::ShardedState`]. Replay errors mean a corrupt log
//! (records that contradict the state they claim to extend) and abort
//! recovery rather than guessing.

use super::snapshot::{latest_snapshot, read_snapshot};
use super::wal::{read_wal, WalRecord, WAL_FILE};
use crate::catalog::Catalogs;
use crate::project::Project;
use crate::shard::{GlobalShard, ProjectShard};
use crate::user::UserRegistry;
use sqalpel_grammar::Grammar;
use std::io;
use std::path::Path;

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("recovery: {}", msg.into()))
}

/// The state a state directory recovered to.
pub struct RecoveredState {
    pub global: GlobalShard,
    pub shards: Vec<ProjectShard>,
    /// True when the directory held neither snapshot nor WAL records —
    /// the server should run its usual bootstrap (demo data etc.).
    pub fresh: bool,
    /// LSN of the snapshot replay started from (0 = none).
    pub snapshot_lsn: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// WAL records skipped because the snapshot already contained them
    /// (a crash landed between persisting the snapshot and truncating
    /// the log).
    pub skipped_records: u64,
    /// Sequence number the reopened WAL continues from.
    pub next_lsn: u64,
    /// Torn lines discarded at the WAL tail.
    pub torn_records: usize,
}

/// Recover platform state from `dir`. An empty or missing directory
/// yields a fresh state (bootstrap catalogs, no users, no projects).
pub fn recover(dir: &Path) -> io::Result<RecoveredState> {
    let (mut global, mut shards, snapshot_lsn) = match latest_snapshot(dir)? {
        Some((path, lsn)) => {
            let (g, s) = read_snapshot(&path)?;
            (g, s, lsn)
        }
        None => (
            GlobalShard {
                users: UserRegistry::new(),
                catalogs: Catalogs::bootstrap(),
            },
            Vec::new(),
            0,
        ),
    };

    let (records, torn_records) = read_wal(&dir.join(WAL_FILE))?;
    let mut replayed_records = 0u64;
    let mut skipped_records = 0u64;
    let mut last_lsn = snapshot_lsn;
    for (lsn, record) in records {
        if lsn <= snapshot_lsn {
            // The crash landed after the snapshot was persisted but
            // before the WAL truncation reached disk: the record's
            // effect is already inside the snapshot.
            skipped_records += 1;
            continue;
        }
        if lsn <= last_lsn {
            return Err(corrupt(format!(
                "wal lsn {lsn} out of order (after {last_lsn})"
            )));
        }
        apply(&record, &mut global, &mut shards).map_err(corrupt)?;
        last_lsn = lsn;
        replayed_records += 1;
    }

    Ok(RecoveredState {
        fresh: snapshot_lsn == 0 && replayed_records == 0 && shards.is_empty() && global.users.is_empty(),
        global,
        shards,
        snapshot_lsn,
        replayed_records,
        skipped_records,
        next_lsn: last_lsn,
        torn_records,
    })
}

/// Apply one WAL record to the state parts.
pub fn apply(
    record: &WalRecord,
    global: &mut GlobalShard,
    shards: &mut Vec<ProjectShard>,
) -> Result<(), String> {
    fn shard_mut(
        shards: &mut [ProjectShard],
        id: crate::project::ProjectId,
    ) -> Result<&mut ProjectShard, String> {
        if id.0 == 0 {
            return Err("record for project 0".to_string());
        }
        shards
            .get_mut((id.0 - 1) as usize)
            .ok_or(format!("record for unknown project #{}", id.0))
    }
    match record {
        WalRecord::UserRegistered {
            id,
            nickname,
            email,
        } => global.users.restore_user(*id, nickname, email),
        WalRecord::KeyIssued { user, key, counter } => {
            global.users.restore_key(key.clone(), *user, *counter);
            Ok(())
        }
        WalRecord::DbmsAdded { entry } => global
            .catalogs
            .add_dbms(entry.clone())
            .map_err(|e| e.to_string()),
        WalRecord::HostAdded { entry } => global
            .catalogs
            .add_host(entry.clone())
            .map_err(|e| e.to_string()),
        WalRecord::ProjectCreated {
            id,
            owner,
            title,
            synopsis,
            visibility,
        } => {
            if id.0 as usize != shards.len() + 1 {
                return Err(format!("project #{} replayed out of order", id.0));
            }
            shards.push(ProjectShard::new(Project::new(
                *id,
                title.clone(),
                synopsis.clone(),
                *owner,
                *visibility,
            )));
            Ok(())
        }
        WalRecord::Invited { project, user } => {
            let shard = shard_mut(shards, *project)?;
            if *user != shard.project.owner {
                shard.project.contributors.insert(*user);
            }
            Ok(())
        }
        WalRecord::TargetsSet {
            project,
            dbms_labels,
            hosts,
        } => {
            let shard = shard_mut(shards, *project)?;
            shard.project.dbms_labels = dbms_labels.clone();
            shard.project.hosts = hosts.clone();
            // No publication re-check: it passed when the record was
            // acknowledged, and the catalogs replay in the same order.
            Ok(())
        }
        WalRecord::CommentAdded {
            project,
            author,
            text,
        } => {
            let shard = shard_mut(shards, *project)?;
            shard.project.comments.push(crate::project::Comment {
                author: *author,
                text: text.clone(),
            });
            Ok(())
        }
        WalRecord::TakenDown { project } => {
            shard_mut(shards, *project)?.project.taken_down = true;
            Ok(())
        }
        WalRecord::ExperimentAdded {
            project,
            id,
            title,
            baseline_sql,
            grammar,
            template_cap,
            pool_cap,
            dialect,
        } => {
            let grammar = Grammar::parse(grammar).map_err(|e| format!("grammar: {e}"))?;
            shard_mut(shards, *project)?
                .project
                .restore_experiment(
                    *id,
                    title,
                    baseline_sql,
                    grammar,
                    *template_cap,
                    *pool_cap,
                    dialect.clone(),
                )
                .map_err(|e| e.to_string())
        }
        WalRecord::PoolExtended {
            project,
            experiment,
            entries,
        } => {
            let shard = shard_mut(shards, *project)?;
            let pool = &mut shard
                .project
                .experiment_mut(*experiment)
                .map_err(|e| e.to_string())?
                .pool;
            for entry in entries {
                pool.restore_entry(entry.clone())?;
            }
            Ok(())
        }
        WalRecord::TasksEnqueued { project, tasks } => {
            let shard = shard_mut(shards, *project)?;
            for task in tasks {
                shard.queue.restore_task(task.clone())?;
            }
            Ok(())
        }
        WalRecord::TaskClaimed { task, key } => {
            let shard = shard_mut(shards, crate::shard::project_of_task(*task))?;
            shard
                .queue
                .claim(*task, key)
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
        WalRecord::ReportAccepted {
            task,
            key,
            error,
            record,
        } => {
            let shard = shard_mut(shards, crate::shard::project_of_task(*task))?;
            shard
                .queue
                .complete(*task, key, error.clone())
                .map_err(|e| e.to_string())?;
            shard.results.push(record.clone());
            Ok(())
        }
        WalRecord::ReportBatchAccepted { key, items } => {
            // One group commit replays as its per-report effects, in
            // upload order — all of them or (torn tail) none.
            for (task, error, record) in items {
                let shard = shard_mut(shards, crate::shard::project_of_task(*task))?;
                shard
                    .queue
                    .complete(*task, key, error.clone())
                    .map_err(|e| e.to_string())?;
                shard.results.push(record.clone());
            }
            Ok(())
        }
        WalRecord::TasksReaped { project, tasks } => {
            let shard = shard_mut(shards, *project)?;
            for task in tasks {
                shard.queue.restore_timeout(*task).map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        WalRecord::TaskRequeued { task } => {
            let shard = shard_mut(shards, crate::shard::project_of_task(*task))?;
            shard.queue.requeue(*task).map_err(|e| e.to_string())
        }
        WalRecord::ResultHidden {
            project,
            index,
            hidden,
        } => {
            let shard = shard_mut(shards, *project)?;
            if !shard.results.set_hidden(*index, *hidden) {
                return Err(format!("hidden flag for unknown result #{index}"));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::wal::WalWriter;
    use super::super::Durability;
    use super::*;
    use crate::catalog::Visibility;
    use crate::queue::{TaskId, TaskState};
    use crate::results;
    use crate::user::{ContributorKey, UserId};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sqalpel-recover-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_dir_recovers_fresh() {
        let dir = tmp_dir("fresh");
        let rec = recover(&dir).unwrap();
        assert!(rec.fresh);
        assert!(rec.shards.is_empty());
        assert!(rec.global.catalogs.dbms("rowstore-2.0").is_some());
        assert_eq!(rec.next_lsn, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A miniature history: user, key, project, experiment, pool, queue,
    /// one claimed, one reported — written straight to the WAL.
    fn write_history(dir: &Path) -> ContributorKey {
        let key = ContributorKey("ck_demo".into());
        let grammar =
            Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap();
        let mut pool = crate::pool::QueryPool::new(grammar.clone(), 1000, 100).unwrap();
        pool.seed_baseline().unwrap();
        let entry = pool.entries()[0].clone();
        let base = 1u64 << 32;

        let mut wal = WalWriter::open(dir, 0).unwrap();
        let records = vec![
            WalRecord::UserRegistered {
                id: UserId(1),
                nickname: "mlk".into(),
                email: "mlk@cwi.nl".into(),
            },
            WalRecord::KeyIssued {
                user: UserId(1),
                key: key.clone(),
                counter: 1,
            },
            WalRecord::ProjectCreated {
                id: crate::project::ProjectId(1),
                owner: UserId(1),
                title: "nation".into(),
                synopsis: "s".into(),
                visibility: Visibility::Public,
            },
            WalRecord::TargetsSet {
                project: crate::project::ProjectId(1),
                dbms_labels: vec!["rowstore-2.0".into()],
                hosts: vec!["bench-server".into()],
            },
            WalRecord::ExperimentAdded {
                project: crate::project::ProjectId(1),
                id: crate::project::ExperimentId(0),
                title: "nation".into(),
                baseline_sql: "select count(*) from nation where n_name = 'BRAZIL'".into(),
                grammar: grammar.to_string(),
                template_cap: 1000,
                pool_cap: 100,
                dialect: None,
            },
            WalRecord::PoolExtended {
                project: crate::project::ProjectId(1),
                experiment: crate::project::ExperimentId(0),
                entries: vec![entry.clone()],
            },
            WalRecord::TasksEnqueued {
                project: crate::project::ProjectId(1),
                tasks: vec![
                    crate::queue::Task {
                        id: TaskId(base),
                        project: crate::project::ProjectId(1),
                        experiment: crate::project::ExperimentId(0),
                        query: entry.id,
                        sql: entry.sql.clone(),
                        dbms_label: "rowstore-2.0".into(),
                        host: "bench-server".into(),
                        state: TaskState::Queued,
                        started: None,
                    },
                    crate::queue::Task {
                        id: TaskId(base + 1),
                        project: crate::project::ProjectId(1),
                        experiment: crate::project::ExperimentId(0),
                        query: entry.id,
                        sql: entry.sql.clone(),
                        dbms_label: "colstore-5.1".into(),
                        host: "bench-server".into(),
                        state: TaskState::Queued,
                        started: None,
                    },
                ],
            },
            WalRecord::TaskClaimed {
                task: TaskId(base),
                key: key.clone(),
            },
            WalRecord::ReportAccepted {
                task: TaskId(base),
                key: key.clone(),
                error: None,
                record: results::record(
                    TaskId(base),
                    crate::project::ProjectId(1),
                    crate::project::ExperimentId(0),
                    entry.id,
                    "rowstore-2.0",
                    "bench-server",
                    &key,
                    vec![1.0, 2.0, 3.0],
                    5,
                    None,
                ),
            },
            WalRecord::TaskClaimed {
                task: TaskId(base + 1),
                key: key.clone(),
            },
        ];
        for r in &records {
            wal.append(r).unwrap();
        }
        key
    }

    #[test]
    fn wal_only_replay_rebuilds_everything() {
        let dir = tmp_dir("replay");
        let key = write_history(&dir);
        let rec = recover(&dir).unwrap();
        assert!(!rec.fresh);
        assert_eq!(rec.replayed_records, 10);
        assert_eq!(rec.next_lsn, 10);

        assert_eq!(rec.global.users.resolve_key(&key), Some(UserId(1)));
        let shard = &rec.shards[0];
        assert_eq!(shard.project.title, "nation");
        assert_eq!(shard.project.experiments[0].pool.len(), 1);
        let s = shard.queue.summary();
        assert_eq!((s.finished, s.running, s.queued), (1, 1, 0));
        // The in-flight claim is re-held: idempotent re-hand-out works.
        assert!(shard
            .queue
            .running_claim(&key, "colstore-5.1", "bench-server")
            .is_some());
        assert_eq!(shard.results.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_equals_wal_only() {
        let dir = tmp_dir("snap-tail");
        let key = write_history(&dir);
        let wal_only = recover(&dir).unwrap();

        // Re-open through the Durability handle, snapshot, then log two
        // more records: replay must continue from the snapshot.
        let (dur, rec) = Durability::open(&dir).unwrap();
        dur.snapshot(&rec.global, &rec.shards.iter().collect::<Vec<_>>())
            .unwrap();
        let base = 1u64 << 32;
        dur.log(&WalRecord::ReportAccepted {
            task: TaskId(base + 1),
            key: key.clone(),
            error: Some("boom".into()),
            record: results::record(
                TaskId(base + 1),
                crate::project::ProjectId(1),
                crate::project::ExperimentId(0),
                crate::pool::QueryId(0),
                "colstore-5.1",
                "bench-server",
                &key,
                vec![],
                0,
                Some("boom".into()),
            ),
        })
        .unwrap();
        dur.log(&WalRecord::ResultHidden {
            project: crate::project::ProjectId(1),
            index: 1,
            hidden: true,
        })
        .unwrap();
        drop(dur);

        let rec2 = recover(&dir).unwrap();
        assert_eq!(rec2.snapshot_lsn, 10);
        assert_eq!(rec2.replayed_records, 2);
        assert_eq!(rec2.next_lsn, 12);
        let shard = &rec2.shards[0];
        let s = shard.queue.summary();
        assert_eq!((s.finished, s.failed, s.running), (1, 1, 0));
        assert_eq!(shard.results.len(), 2);
        assert!(shard.results.all()[1].hidden);
        // Users/catalogs carried through the snapshot.
        assert_eq!(
            rec2.global.users.len(),
            wal_only.global.users.len()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_snapshot_is_skipped_not_replayed() {
        let dir = tmp_dir("stale-wal");
        write_history(&dir);
        let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();

        let (dur, rec) = Durability::open(&dir).unwrap();
        dur.snapshot(&rec.global, &rec.shards.iter().collect::<Vec<_>>())
            .unwrap();
        drop(dur);
        // Crash window: the snapshot rename + dir fsync made it to disk
        // but the WAL truncation did not — the full pre-snapshot log is
        // still there next to the snapshot that already contains it.
        std::fs::write(dir.join(WAL_FILE), &wal_bytes).unwrap();

        let rec2 = recover(&dir).unwrap();
        assert_eq!(rec2.snapshot_lsn, 10);
        assert_eq!(rec2.skipped_records, 10, "stale prefix ignored");
        assert_eq!(rec2.replayed_records, 0);
        assert_eq!(rec2.next_lsn, 10);
        let s = rec2.shards[0].queue.summary();
        assert_eq!((s.finished, s.running), (1, 1));
        assert_eq!(rec2.shards[0].results.len(), 1, "no duplicated report");

        // Life goes on past the stale tail: a record logged after the
        // reopen replays on the next boot while the prefix stays skipped.
        let (dur, _rec) = Durability::open(&dir).unwrap();
        dur.log(&WalRecord::ResultHidden {
            project: crate::project::ProjectId(1),
            index: 0,
            hidden: true,
        })
        .unwrap();
        drop(dur);
        let rec3 = recover(&dir).unwrap();
        assert_eq!((rec3.skipped_records, rec3.replayed_records), (10, 1));
        assert_eq!(rec3.next_lsn, 11);
        assert!(rec3.shards[0].results.all()[0].hidden);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn contradictory_replay_is_rejected() {
        let dir = tmp_dir("contradict");
        let mut wal = WalWriter::open(&dir, 0).unwrap();
        // A claim for a task that was never enqueued.
        wal.append(&WalRecord::ProjectCreated {
            id: crate::project::ProjectId(1),
            owner: UserId(1),
            title: "x".into(),
            synopsis: "y".into(),
            visibility: Visibility::Public,
        })
        .unwrap();
        wal.append(&WalRecord::TaskClaimed {
            task: TaskId(1u64 << 32),
            key: ContributorKey("ck_x".into()),
        })
        .unwrap();
        drop(wal);
        assert!(recover(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
