//! Durability for the platform state: write-ahead record log, periodic
//! snapshots, boot-time recovery.
//!
//! The contract: **once an operation is acknowledged, it survives a
//! crash.** The server logs a typed [`WalRecord`] for every mutation
//! *before* releasing the lock that made it (so WAL order equals
//! mutation order per lock domain), flushed to the OS per record. A
//! bulk upload group-commits: all of its reports ride one
//! [`WalRecord::ReportBatchAccepted`] line — one append, one flush, one
//! checksum — so the batch is acknowledged, and replays, atomically.
//! Snapshots bound replay time; the WAL is truncated when one lands.
//! Records carry their LSN, so on boot [`recover`] loads the newest
//! snapshot and replays only records past its LSN — a crash between the
//! snapshot rename and the truncation leaves a stale prefix that is
//! skipped, not double-applied. A torn final record — the crash
//! interrupted an append whose operation was never acknowledged — is
//! discarded, which is precisely the at-least-acknowledged, at-most-once
//! semantics the wire protocol's idempotent retries expect.

pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use recovery::{recover, RecoveredState};
pub use snapshot::{latest_snapshot, read_snapshot, state_fingerprint, write_snapshot};
pub use wal::{read_wal, WalRecord, WalWriter, WAL_FILE};

use crate::shard::{GlobalShard, ProjectShard};
use parking_lot::Mutex;
use std::io;
use std::path::{Path, PathBuf};

/// Handle to a state directory: the open WAL plus snapshot plumbing.
pub struct Durability {
    dir: PathBuf,
    wal: Mutex<WalWriter>,
}

impl Durability {
    /// Open a state directory: recover whatever is there, then position
    /// the WAL for appending. Creates the directory if needed.
    pub fn open(dir: &Path) -> io::Result<(Durability, RecoveredState)> {
        std::fs::create_dir_all(dir)?;
        let recovered = recover(dir)?;
        let wal = WalWriter::open(dir, recovered.next_lsn)?;
        Ok((
            Durability {
                dir: dir.to_path_buf(),
                wal: Mutex::new(wal),
            },
            recovered,
        ))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one record, flushed to the OS. Returns the framed byte
    /// length. The caller must hold the lock of the state it mutated.
    pub fn log(&self, record: &WalRecord) -> io::Result<u64> {
        self.wal.lock().append(record)
    }

    /// Current record sequence number.
    pub fn lsn(&self) -> u64 {
        self.wal.lock().lsn()
    }

    /// Write a snapshot of the given state and truncate the WAL behind
    /// it. The caller must hold **all** platform locks (global, shard
    /// map, every shard) so the state cannot move between the snapshot
    /// and the truncation.
    pub fn snapshot(&self, global: &GlobalShard, shards: &[&ProjectShard]) -> io::Result<u64> {
        let mut wal = self.wal.lock();
        let lsn = wal.lsn();
        write_snapshot(&self.dir, lsn, global, shards)?;
        wal.reset_after_snapshot()?;
        snapshot::prune_older(&self.dir, lsn)?;
        Ok(lsn)
    }

    /// Fsync the WAL without truncating (graceful shutdown).
    pub fn sync(&self) -> io::Result<()> {
        self.wal.lock().sync()
    }
}
