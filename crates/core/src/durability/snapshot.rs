//! Checkpointing: the full platform state as one JSONL file.
//!
//! A snapshot bounds recovery time — replay starts from the latest
//! snapshot instead of the beginning of history. The format is
//! line-oriented so huge states stream out without building one giant
//! JSON value: a `meta` line (snapshot LSN), then one line per item in
//! restore order, then an `end` marker that proves the file is whole.
//!
//! Written to a temp file and atomically renamed into place as
//! `snapshot-<lsn>.jsonl`; the directory is fsynced so the rename
//! survives a crash. Readers pick the highest LSN present; older
//! snapshots are pruned after a new one lands.

use super::wal::fnv64;
use crate::pool::PoolEntry;
use crate::project::{Comment, ExperimentId, Project, ProjectId};
use crate::queue::Task;
use crate::results::ResultRecord;
use crate::shard::{GlobalShard, ProjectShard};
use crate::user::{ContributorKey, UserId};
use serde::{Deserialize, Serialize, Value};
use sqalpel_grammar::Grammar;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {}", msg.into()))
}

fn line(out: &mut impl Write, t: &str, mut fields: serde_json::Map) -> io::Result<()> {
    fields.insert("t".into(), t.into());
    writeln!(out, "{}", Value::Object(fields))
}

fn one(key: &str, value: Value) -> serde_json::Map {
    let mut m = serde_json::Map::new();
    m.insert(key.into(), value);
    m
}

/// Write a snapshot of the given state at `lsn`. The caller must hold
/// every shard lock (the state must not move under the writer). Returns
/// the final snapshot path.
pub fn write_snapshot(
    dir: &Path,
    lsn: u64,
    global: &GlobalShard,
    shards: &[&ProjectShard],
) -> io::Result<PathBuf> {
    let tmp = dir.join(format!("snapshot-{lsn:020}.tmp"));
    let path = dir.join(format!("snapshot-{lsn:020}.jsonl"));
    let mut out = BufWriter::new(File::create(&tmp)?);

    line(&mut out, "meta", {
        let mut m = one("lsn", lsn.into());
        m.insert("projects".into(), shards.len().into());
        m
    })?;

    for u in global.users.users() {
        let mut m = one("id", u.id.0.into());
        m.insert("nickname".into(), u.nickname.clone().into());
        m.insert("email".into(), u.email_for_legal_contact().into());
        line(&mut out, "user", m)?;
    }
    for (key, user) in global.users.keys() {
        let mut m = one("key", key.0.clone().into());
        m.insert("user".into(), user.0.into());
        line(&mut out, "key", m)?;
    }
    line(
        &mut out,
        "key_counter",
        one("value", global.users.key_counter().into()),
    )?;
    for entry in global.catalogs.dbms_entries() {
        line(&mut out, "dbms", one("entry", entry.to_value()))?;
    }
    for entry in global.catalogs.host_entries() {
        line(&mut out, "host", one("entry", entry.to_value()))?;
    }

    for shard in shards {
        let p = &shard.project;
        let mut m = one("id", p.id.0.into());
        m.insert("title".into(), p.title.clone().into());
        m.insert("synopsis".into(), p.synopsis.clone().into());
        m.insert("owner".into(), p.owner.0.into());
        m.insert("visibility".into(), p.visibility.to_value());
        m.insert(
            "contributors".into(),
            Value::Array(p.contributors.iter().map(|u| Value::from(u.0)).collect()),
        );
        m.insert(
            "comments".into(),
            Value::Array(
                p.comments
                    .iter()
                    .map(|c| {
                        let mut m = one("author", c.author.0.into());
                        m.insert("text".into(), c.text.clone().into());
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        m.insert("dbms_labels".into(), p.dbms_labels.clone().into());
        m.insert("hosts".into(), p.hosts.clone().into());
        m.insert("taken_down".into(), p.taken_down.into());
        line(&mut out, "project", m)?;

        for e in &p.experiments {
            let mut m = one("project", p.id.0.into());
            m.insert("id".into(), e.id.0.into());
            m.insert("title".into(), e.title.clone().into());
            m.insert("baseline_sql".into(), e.baseline_sql.clone().into());
            m.insert("grammar".into(), e.pool.grammar().to_string().into());
            m.insert("template_cap".into(), e.pool.template_cap().into());
            m.insert("pool_cap".into(), e.pool.pool_cap().into());
            if let Some(d) = e.pool.dialect() {
                m.insert("dialect".into(), d.into());
            }
            line(&mut out, "experiment", m)?;
            for entry in e.pool.entries() {
                let mut m = one("project", p.id.0.into());
                m.insert("experiment".into(), e.id.0.into());
                m.insert("entry".into(), entry.to_value());
                line(&mut out, "pool_entry", m)?;
            }
        }
        for task in shard.queue.tasks() {
            line(&mut out, "task", one("task", task.to_value()))?;
        }
        for record in shard.results.all() {
            line(&mut out, "result", one("record", record.to_value()))?;
        }
    }

    line(&mut out, "end", serde_json::Map::new())?;
    out.flush()?;
    out.into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?
        .sync_all()?;
    fs::rename(&tmp, &path)?;
    // Fsync the directory so the rename itself is durable.
    File::open(dir)?.sync_all()?;
    Ok(path)
}

/// The newest complete snapshot in `dir`, as `(path, lsn)`.
pub fn latest_snapshot(dir: &Path) -> io::Result<Option<(PathBuf, u64)>> {
    let mut best: Option<(PathBuf, u64)> = None;
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(lsn) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".jsonl"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(_, b)| lsn > *b) {
            best = Some((entry.path(), lsn));
        }
    }
    Ok(best)
}

/// Remove snapshots (and stray temp files) older than `keep_lsn`.
pub fn prune_older(dir: &Path, keep_lsn: u64) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".jsonl"))
            .and_then(|s| s.parse::<u64>().ok())
            .is_some_and(|lsn| lsn < keep_lsn)
            || name.ends_with(".tmp");
        if stale {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// Load a snapshot back into state parts. Restore order inside the file
/// matches write order, so the per-structure `restore_*` methods see
/// ids arrive densely.
pub fn read_snapshot(path: &Path) -> io::Result<(GlobalShard, Vec<ProjectShard>)> {
    let mut global = GlobalShard {
        users: crate::user::UserRegistry::new(),
        catalogs: crate::catalog::Catalogs::new(),
    };
    let mut shards: Vec<ProjectShard> = Vec::new();
    let mut ended = false;

    for text in BufReader::new(File::open(path)?).lines() {
        let text = text?;
        if text.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(&text)
            .map_err(|e| corrupt(format!("bad line: {e}")))?;
        let num = |k: &str| {
            v[k].as_i64()
                .map(|x| x as u64)
                .ok_or_else(|| corrupt(format!("missing {k}")))
        };
        let text_field = |k: &str| {
            v[k].as_str()
                .map(str::to_string)
                .ok_or_else(|| corrupt(format!("missing {k}")))
        };
        match v["t"].as_str().ok_or_else(|| corrupt("untagged line"))? {
            "meta" => {}
            "user" => {
                global
                    .users
                    .restore_user(
                        UserId(num("id")?),
                        &text_field("nickname")?,
                        &text_field("email")?,
                    )
                    .map_err(corrupt)?;
            }
            "key" => {
                // Counter comes as its own line; 0 here, maxed later.
                global
                    .users
                    .restore_key(ContributorKey(text_field("key")?), UserId(num("user")?), 0);
            }
            "key_counter" => {
                global.users.restore_key_counter(num("value")?);
            }
            "dbms" => {
                let entry = crate::catalog::DbmsEntry::from_value(&v["entry"]).map_err(corrupt)?;
                global.catalogs.add_dbms(entry).map_err(|e| corrupt(e.to_string()))?;
            }
            "host" => {
                let entry = crate::catalog::HostEntry::from_value(&v["entry"]).map_err(corrupt)?;
                global.catalogs.add_host(entry).map_err(|e| corrupt(e.to_string()))?;
            }
            "project" => {
                let id = ProjectId(num("id")?);
                if id.0 as usize != shards.len() + 1 {
                    return Err(corrupt(format!("project #{} out of order", id.0)));
                }
                let mut p = Project::new(
                    id,
                    text_field("title")?,
                    text_field("synopsis")?,
                    UserId(num("owner")?),
                    crate::catalog::Visibility::from_value(&v["visibility"]).map_err(corrupt)?,
                );
                for u in v["contributors"].as_array().ok_or_else(|| corrupt("missing contributors"))? {
                    p.contributors.insert(UserId(
                        u.as_i64().ok_or_else(|| corrupt("bad contributor"))? as u64,
                    ));
                }
                for c in v["comments"].as_array().ok_or_else(|| corrupt("missing comments"))? {
                    p.comments.push(Comment {
                        author: UserId(c["author"].as_i64().ok_or_else(|| corrupt("bad author"))? as u64),
                        text: c["text"].as_str().ok_or_else(|| corrupt("bad comment"))?.to_string(),
                    });
                }
                for l in v["dbms_labels"].as_array().ok_or_else(|| corrupt("missing dbms_labels"))? {
                    p.dbms_labels.push(l.as_str().ok_or_else(|| corrupt("bad label"))?.to_string());
                }
                for h in v["hosts"].as_array().ok_or_else(|| corrupt("missing hosts"))? {
                    p.hosts.push(h.as_str().ok_or_else(|| corrupt("bad host"))?.to_string());
                }
                p.taken_down = v["taken_down"].as_bool().unwrap_or(false);
                shards.push(ProjectShard::new(p));
            }
            "experiment" => {
                let shard = shard_mut(&mut shards, ProjectId(num("project")?))?;
                let grammar = Grammar::parse(&text_field("grammar")?)
                    .map_err(|e| corrupt(format!("grammar: {e}")))?;
                shard
                    .project
                    .restore_experiment(
                        ExperimentId(num("id")?),
                        &text_field("title")?,
                        &text_field("baseline_sql")?,
                        grammar,
                        num("template_cap")? as usize,
                        num("pool_cap")? as usize,
                        v["dialect"].as_str().map(str::to_string),
                    )
                    .map_err(|e| corrupt(e.to_string()))?;
            }
            "pool_entry" => {
                let shard = shard_mut(&mut shards, ProjectId(num("project")?))?;
                let exp = ExperimentId(num("experiment")?);
                let entry = PoolEntry::from_value(&v["entry"]).map_err(corrupt)?;
                shard
                    .project
                    .experiment_mut(exp)
                    .map_err(|e| corrupt(e.to_string()))?
                    .pool
                    .restore_entry(entry)
                    .map_err(corrupt)?;
            }
            "task" => {
                let task = Task::from_value(&v["task"]).map_err(corrupt)?;
                let shard = shard_mut(&mut shards, task.project)?;
                shard.queue.restore_task(task).map_err(corrupt)?;
            }
            "result" => {
                let record = ResultRecord::from_value(&v["record"]).map_err(corrupt)?;
                let shard = shard_mut(&mut shards, ProjectId(record.project))?;
                shard.results.push(record);
            }
            "end" => {
                ended = true;
            }
            other => return Err(corrupt(format!("unknown tag {other:?}"))),
        }
    }
    if !ended {
        return Err(corrupt("missing end marker (truncated snapshot)"));
    }
    Ok((global, shards))
}

fn shard_mut(shards: &mut [ProjectShard], id: ProjectId) -> io::Result<&mut ProjectShard> {
    if id.0 == 0 {
        return Err(corrupt("project id 0"));
    }
    shards
        .get_mut((id.0 - 1) as usize)
        .ok_or_else(|| corrupt(format!("item for unknown project #{}", id.0)))
}

/// A cheap whole-state integrity fingerprint, used by tests to compare
/// a recovered state against the original.
pub fn state_fingerprint(global: &GlobalShard, shards: &[&ProjectShard]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for u in global.users.users() {
        h ^= fnv64(u.nickname.as_bytes()).wrapping_add(u.id.0);
        h = h.wrapping_mul(0x100000001b3);
    }
    for shard in shards {
        for task in shard.queue.tasks() {
            h ^= fnv64(serde_json::to_string(task).unwrap_or_default().as_bytes());
            h = h.wrapping_mul(0x100000001b3);
        }
        for record in shard.results.all() {
            h ^= fnv64(serde_json::to_string(record).unwrap_or_default().as_bytes());
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalogs, Visibility};
    use crate::user::UserRegistry;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sqalpel-snap-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn populated() -> (GlobalShard, Vec<ProjectShard>) {
        let mut users = UserRegistry::new();
        let owner = users.register("mlk", "mlk@cwi.nl").unwrap();
        let worker = users.register("pk", "pk@cwi.nl").unwrap();
        let key = users.issue_key(worker).unwrap();

        let mut project = Project::new(
            ProjectId(1),
            "nation-study",
            "TPC-H nation walk",
            owner,
            Visibility::Public,
        );
        project.invite(owner, worker).unwrap();
        project.dbms_labels.push("rowstore-2.0".into());
        project.hosts.push("bench-server".into());
        project
            .add_experiment(
                owner,
                "nation",
                "select count(*) from nation where n_name = 'BRAZIL'",
                None,
                1000,
                100,
            )
            .unwrap();
        let exp = &mut project.experiments[0];
        exp.pool.seed_baseline().unwrap();
        let mut rng = sqalpel_grammar::seeded_rng(42);
        exp.pool.add_random(4, &mut rng).unwrap();

        let mut shard = ProjectShard::new(project);
        for entry in shard.project.experiments[0].pool.entries().to_vec() {
            for dbms in ["rowstore-2.0", "colstore-5.1"] {
                shard
                    .queue
                    .enqueue(
                        ProjectId(1),
                        ExperimentId(0),
                        entry.id,
                        entry.sql.clone(),
                        dbms,
                        "bench-server",
                    )
                    .unwrap();
            }
        }
        let task = shard
            .queue
            .checkout(&key, "rowstore-2.0", "bench-server")
            .unwrap();
        shard.queue.complete(task.id, &key, None).unwrap();
        shard.queue.checkout(&key, "colstore-5.1", "bench-server").unwrap();
        (
            GlobalShard {
                users,
                catalogs: Catalogs::bootstrap(),
            },
            vec![shard],
        )
    }

    #[test]
    fn snapshot_round_trips_full_state() {
        let dir = tmp_dir("roundtrip");
        let (global, shards) = populated();
        let refs: Vec<&ProjectShard> = shards.iter().collect();
        let path = write_snapshot(&dir, 7, &global, &refs).unwrap();
        assert_eq!(latest_snapshot(&dir).unwrap().unwrap(), (path.clone(), 7));

        let (g2, s2) = read_snapshot(&path).unwrap();
        assert_eq!(g2.users.len(), global.users.len());
        assert_eq!(g2.users.key_counter(), global.users.key_counter());
        assert_eq!(
            g2.catalogs.dbms_entries().len(),
            global.catalogs.dbms_entries().len()
        );
        assert_eq!(s2.len(), 1);
        let (a, b) = (&shards[0], &s2[0]);
        assert_eq!(b.project.title, a.project.title);
        assert_eq!(b.project.contributors, a.project.contributors);
        assert_eq!(
            b.project.experiments[0].pool.len(),
            a.project.experiments[0].pool.len()
        );
        assert_eq!(b.queue.summary(), a.queue.summary());
        assert_eq!(b.queue.id_base(), a.queue.id_base());
        assert_eq!(b.results.len(), a.results.len());
        assert_eq!(
            state_fingerprint(&g2, &s2.iter().collect::<Vec<_>>()),
            state_fingerprint(&global, &refs)
        );

        // A newer snapshot wins; pruning removes the older one.
        let path2 = write_snapshot(&dir, 9, &global, &refs).unwrap();
        assert_eq!(latest_snapshot(&dir).unwrap().unwrap().1, 9);
        prune_older(&dir, 9).unwrap();
        assert!(!path.exists());
        assert!(path2.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let dir = tmp_dir("truncated");
        let (global, shards) = populated();
        let refs: Vec<&ProjectShard> = shards.iter().collect();
        let path = write_snapshot(&dir, 1, &global, &refs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Drop the end marker.
        let cut = text.rfind("{\"").unwrap();
        std::fs::write(&path, &text[..cut]).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("end marker"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tmp_dir("empty");
        assert!(latest_snapshot(&dir).unwrap().is_none());
        assert!(latest_snapshot(Path::new("/nonexistent-state-dir"))
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
