//! The append-only record log.
//!
//! Every mutating platform operation appends one typed [`WalRecord`]
//! *before* the caller sees its acknowledgement. Records are physical,
//! not logical: they carry the concrete ids, SQL texts and catalog
//! entries the operation produced, so replay never re-runs grammar
//! conversion, random seeding or role checks — it re-applies outcomes.
//! (The alternative, logging API calls, founders on the pool's
//! [`Fingerprinter`](crate::pool::Fingerprinter): an in-process closure
//! that cannot be serialized, and without which a replayed morph walk
//! would diverge.)
//!
//! Framing is one record per line: `<lsn> <len> <fnv64> <json>\n`,
//! where `lsn` is the record's log sequence number, `len` the byte
//! length of the JSON text and `fnv64` its FNV-1a checksum. A torn
//! tail — short line, bad length, bad checksum — ends replay at the
//! last intact record, which is exactly the prefix the platform
//! acknowledged before the crash. The LSN stamp lets recovery skip
//! records a snapshot already contains: if a crash lands between
//! persisting a snapshot and truncating the log, the stale prefix
//! (lsn <= snapshot lsn) is ignored instead of replayed twice.
//!
//! Each append is flushed to the OS before the operation acks, which
//! survives process death (`kill -9`). Full fsync happens at snapshot
//! time; the log is truncated there, so the WAL is always the tail
//! since the latest snapshot.

use crate::catalog::{DbmsEntry, HostEntry, Visibility};
use crate::pool::PoolEntry;
use crate::project::{ExperimentId, ProjectId};
use crate::queue::{Task, TaskId};
use crate::results::ResultRecord;
use crate::user::{ContributorKey, UserId};
use serde::{Deserialize, Serialize, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// FNV-1a over a byte string — the per-record checksum.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One durable platform mutation.
///
/// `ReportAccepted` dominates the enum's size via its inline
/// `ResultRecord`; records are serialized and dropped (or replayed one
/// at a time), never held in bulk, so the indirection a box would buy
/// isn't worth the churn at every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum WalRecord {
    UserRegistered {
        id: UserId,
        nickname: String,
        email: String,
    },
    KeyIssued {
        user: UserId,
        key: ContributorKey,
        /// The registry's issue counter at derivation time; replay
        /// advances past it so fresh keys never collide.
        counter: u64,
    },
    DbmsAdded {
        entry: DbmsEntry,
    },
    HostAdded {
        entry: HostEntry,
    },
    ProjectCreated {
        id: ProjectId,
        owner: UserId,
        title: String,
        synopsis: String,
        visibility: Visibility,
    },
    Invited {
        project: ProjectId,
        user: UserId,
    },
    TargetsSet {
        project: ProjectId,
        dbms_labels: Vec<String>,
        hosts: Vec<String>,
    },
    CommentAdded {
        project: ProjectId,
        author: UserId,
        text: String,
    },
    TakenDown {
        project: ProjectId,
    },
    ExperimentAdded {
        project: ProjectId,
        id: ExperimentId,
        title: String,
        baseline_sql: String,
        /// The resolved grammar rendered back to the DSL — covers both
        /// hand-written grammars and auto-converted baselines.
        grammar: String,
        template_cap: usize,
        pool_cap: usize,
        dialect: Option<String>,
    },
    /// Pool entries added by seeding or a morph step (physical: the
    /// instantiated SQL, not the random walk that found it).
    PoolExtended {
        project: ProjectId,
        experiment: ExperimentId,
        entries: Vec<PoolEntry>,
    },
    TasksEnqueued {
        project: ProjectId,
        tasks: Vec<Task>,
    },
    TaskClaimed {
        task: TaskId,
        key: ContributorKey,
    },
    /// A report acknowledged: the queue completion and the stored record
    /// in one — replay applies both or neither.
    ReportAccepted {
        task: TaskId,
        key: ContributorKey,
        error: Option<String>,
        record: ResultRecord,
    },
    /// One bulk upload's accepted reports as a single group commit: one
    /// framed line, one checksum, so a torn tail drops the whole batch
    /// atomically — an unacked batch never replays partially.
    ReportBatchAccepted {
        key: ContributorKey,
        /// `(task, error, record)` per accepted report, in upload order.
        items: Vec<(TaskId, Option<String>, ResultRecord)>,
    },
    TasksReaped {
        project: ProjectId,
        tasks: Vec<TaskId>,
    },
    TaskRequeued {
        task: TaskId,
    },
    ResultHidden {
        project: ProjectId,
        index: usize,
        hidden: bool,
    },
}

impl WalRecord {
    fn op(&self) -> &'static str {
        match self {
            WalRecord::UserRegistered { .. } => "user_registered",
            WalRecord::KeyIssued { .. } => "key_issued",
            WalRecord::DbmsAdded { .. } => "dbms_added",
            WalRecord::HostAdded { .. } => "host_added",
            WalRecord::ProjectCreated { .. } => "project_created",
            WalRecord::Invited { .. } => "invited",
            WalRecord::TargetsSet { .. } => "targets_set",
            WalRecord::CommentAdded { .. } => "comment_added",
            WalRecord::TakenDown { .. } => "taken_down",
            WalRecord::ExperimentAdded { .. } => "experiment_added",
            WalRecord::PoolExtended { .. } => "pool_extended",
            WalRecord::TasksEnqueued { .. } => "tasks_enqueued",
            WalRecord::TaskClaimed { .. } => "task_claimed",
            WalRecord::ReportAccepted { .. } => "report_accepted",
            WalRecord::ReportBatchAccepted { .. } => "report_batch_accepted",
            WalRecord::TasksReaped { .. } => "tasks_reaped",
            WalRecord::TaskRequeued { .. } => "task_requeued",
            WalRecord::ResultHidden { .. } => "result_hidden",
        }
    }
}

impl Serialize for WalRecord {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("op".into(), self.op().into());
        match self {
            WalRecord::UserRegistered {
                id,
                nickname,
                email,
            } => {
                m.insert("id".into(), id.0.into());
                m.insert("nickname".into(), nickname.clone().into());
                m.insert("email".into(), email.clone().into());
            }
            WalRecord::KeyIssued { user, key, counter } => {
                m.insert("user".into(), user.0.into());
                m.insert("key".into(), key.0.clone().into());
                m.insert("counter".into(), (*counter).into());
            }
            WalRecord::DbmsAdded { entry } => {
                m.insert("entry".into(), entry.to_value());
            }
            WalRecord::HostAdded { entry } => {
                m.insert("entry".into(), entry.to_value());
            }
            WalRecord::ProjectCreated {
                id,
                owner,
                title,
                synopsis,
                visibility,
            } => {
                m.insert("id".into(), id.0.into());
                m.insert("owner".into(), owner.0.into());
                m.insert("title".into(), title.clone().into());
                m.insert("synopsis".into(), synopsis.clone().into());
                m.insert("visibility".into(), visibility.to_value());
            }
            WalRecord::Invited { project, user } => {
                m.insert("project".into(), project.0.into());
                m.insert("user".into(), user.0.into());
            }
            WalRecord::TargetsSet {
                project,
                dbms_labels,
                hosts,
            } => {
                m.insert("project".into(), project.0.into());
                m.insert("dbms_labels".into(), dbms_labels.clone().into());
                m.insert("hosts".into(), hosts.clone().into());
            }
            WalRecord::CommentAdded {
                project,
                author,
                text,
            } => {
                m.insert("project".into(), project.0.into());
                m.insert("author".into(), author.0.into());
                m.insert("text".into(), text.clone().into());
            }
            WalRecord::TakenDown { project } => {
                m.insert("project".into(), project.0.into());
            }
            WalRecord::ExperimentAdded {
                project,
                id,
                title,
                baseline_sql,
                grammar,
                template_cap,
                pool_cap,
                dialect,
            } => {
                m.insert("project".into(), project.0.into());
                m.insert("id".into(), id.0.into());
                m.insert("title".into(), title.clone().into());
                m.insert("baseline_sql".into(), baseline_sql.clone().into());
                m.insert("grammar".into(), grammar.clone().into());
                m.insert("template_cap".into(), (*template_cap).into());
                m.insert("pool_cap".into(), (*pool_cap).into());
                if let Some(d) = dialect {
                    m.insert("dialect".into(), d.clone().into());
                }
            }
            WalRecord::PoolExtended {
                project,
                experiment,
                entries,
            } => {
                m.insert("project".into(), project.0.into());
                m.insert("experiment".into(), experiment.0.into());
                m.insert(
                    "entries".into(),
                    Value::Array(entries.iter().map(|e| e.to_value()).collect()),
                );
            }
            WalRecord::TasksEnqueued { project, tasks } => {
                m.insert("project".into(), project.0.into());
                m.insert(
                    "tasks".into(),
                    Value::Array(tasks.iter().map(|t| t.to_value()).collect()),
                );
            }
            WalRecord::TaskClaimed { task, key } => {
                m.insert("task".into(), task.0.into());
                m.insert("key".into(), key.0.clone().into());
            }
            WalRecord::ReportAccepted {
                task,
                key,
                error,
                record,
            } => {
                m.insert("task".into(), task.0.into());
                m.insert("key".into(), key.0.clone().into());
                if let Some(e) = error {
                    m.insert("error".into(), e.clone().into());
                }
                m.insert("record".into(), record.to_value());
            }
            WalRecord::ReportBatchAccepted { key, items } => {
                m.insert("key".into(), key.0.clone().into());
                m.insert(
                    "items".into(),
                    Value::Array(
                        items
                            .iter()
                            .map(|(task, error, record)| {
                                let mut item = serde_json::Map::new();
                                item.insert("task".into(), task.0.into());
                                if let Some(e) = error {
                                    item.insert("error".into(), e.clone().into());
                                }
                                item.insert("record".into(), record.to_value());
                                Value::Object(item)
                            })
                            .collect(),
                    ),
                );
            }
            WalRecord::TasksReaped { project, tasks } => {
                m.insert("project".into(), project.0.into());
                m.insert(
                    "tasks".into(),
                    Value::Array(tasks.iter().map(|t| Value::from(t.0)).collect()),
                );
            }
            WalRecord::TaskRequeued { task } => {
                m.insert("task".into(), task.0.into());
            }
            WalRecord::ResultHidden {
                project,
                index,
                hidden,
            } => {
                m.insert("project".into(), project.0.into());
                m.insert("index".into(), (*index).into());
                m.insert("hidden".into(), (*hidden).into());
            }
        }
        Value::Object(m)
    }
}

impl Deserialize for WalRecord {
    fn from_value(v: &Value) -> Result<Self, String> {
        let num = |k: &str| {
            v[k].as_i64()
                .map(|x| x as u64)
                .ok_or(format!("wal record: missing {k}"))
        };
        let text = |k: &str| {
            v[k].as_str()
                .map(str::to_string)
                .ok_or(format!("wal record: missing {k}"))
        };
        match v["op"].as_str().ok_or("wal record: missing op")? {
            "user_registered" => Ok(WalRecord::UserRegistered {
                id: UserId(num("id")?),
                nickname: text("nickname")?,
                email: text("email")?,
            }),
            "key_issued" => Ok(WalRecord::KeyIssued {
                user: UserId(num("user")?),
                key: ContributorKey(text("key")?),
                counter: num("counter")?,
            }),
            "dbms_added" => Ok(WalRecord::DbmsAdded {
                entry: DbmsEntry::from_value(&v["entry"])?,
            }),
            "host_added" => Ok(WalRecord::HostAdded {
                entry: HostEntry::from_value(&v["entry"])?,
            }),
            "project_created" => Ok(WalRecord::ProjectCreated {
                id: ProjectId(num("id")?),
                owner: UserId(num("owner")?),
                title: text("title")?,
                synopsis: text("synopsis")?,
                visibility: Visibility::from_value(&v["visibility"])?,
            }),
            "invited" => Ok(WalRecord::Invited {
                project: ProjectId(num("project")?),
                user: UserId(num("user")?),
            }),
            "targets_set" => {
                let list = |k: &str| -> Result<Vec<String>, String> {
                    v[k].as_array()
                        .ok_or(format!("targets_set: missing {k}"))?
                        .iter()
                        .map(|s| {
                            s.as_str()
                                .map(str::to_string)
                                .ok_or(format!("targets_set: non-string in {k}"))
                        })
                        .collect()
                };
                Ok(WalRecord::TargetsSet {
                    project: ProjectId(num("project")?),
                    dbms_labels: list("dbms_labels")?,
                    hosts: list("hosts")?,
                })
            }
            "comment_added" => Ok(WalRecord::CommentAdded {
                project: ProjectId(num("project")?),
                author: UserId(num("author")?),
                text: text("text")?,
            }),
            "taken_down" => Ok(WalRecord::TakenDown {
                project: ProjectId(num("project")?),
            }),
            "experiment_added" => Ok(WalRecord::ExperimentAdded {
                project: ProjectId(num("project")?),
                id: ExperimentId(num("id")?),
                title: text("title")?,
                baseline_sql: text("baseline_sql")?,
                grammar: text("grammar")?,
                template_cap: num("template_cap")? as usize,
                pool_cap: num("pool_cap")? as usize,
                dialect: v["dialect"].as_str().map(str::to_string),
            }),
            "pool_extended" => Ok(WalRecord::PoolExtended {
                project: ProjectId(num("project")?),
                experiment: ExperimentId(num("experiment")?),
                entries: v["entries"]
                    .as_array()
                    .ok_or("pool_extended: missing entries")?
                    .iter()
                    .map(PoolEntry::from_value)
                    .collect::<Result<_, _>>()?,
            }),
            "tasks_enqueued" => Ok(WalRecord::TasksEnqueued {
                project: ProjectId(num("project")?),
                tasks: v["tasks"]
                    .as_array()
                    .ok_or("tasks_enqueued: missing tasks")?
                    .iter()
                    .map(Task::from_value)
                    .collect::<Result<_, _>>()?,
            }),
            "task_claimed" => Ok(WalRecord::TaskClaimed {
                task: TaskId(num("task")?),
                key: ContributorKey(text("key")?),
            }),
            "report_accepted" => Ok(WalRecord::ReportAccepted {
                task: TaskId(num("task")?),
                key: ContributorKey(text("key")?),
                error: v["error"].as_str().map(str::to_string),
                record: ResultRecord::from_value(&v["record"])?,
            }),
            "report_batch_accepted" => Ok(WalRecord::ReportBatchAccepted {
                key: ContributorKey(text("key")?),
                items: v["items"]
                    .as_array()
                    .ok_or("report_batch_accepted: missing items")?
                    .iter()
                    .map(|item| {
                        Ok((
                            TaskId(
                                item["task"]
                                    .as_i64()
                                    .map(|x| x as u64)
                                    .ok_or("report_batch_accepted: missing task")?,
                            ),
                            item["error"].as_str().map(str::to_string),
                            ResultRecord::from_value(&item["record"])?,
                        ))
                    })
                    .collect::<Result<_, String>>()?,
            }),
            "tasks_reaped" => Ok(WalRecord::TasksReaped {
                project: ProjectId(num("project")?),
                tasks: v["tasks"]
                    .as_array()
                    .ok_or("tasks_reaped: missing tasks")?
                    .iter()
                    .map(|t| {
                        t.as_i64()
                            .map(|x| TaskId(x as u64))
                            .ok_or("tasks_reaped: bad task id".to_string())
                    })
                    .collect::<Result<_, _>>()?,
            }),
            "task_requeued" => Ok(WalRecord::TaskRequeued {
                task: TaskId(num("task")?),
            }),
            "result_hidden" => Ok(WalRecord::ResultHidden {
                project: ProjectId(num("project")?),
                index: num("index")? as usize,
                hidden: v["hidden"].as_bool().ok_or("result_hidden: missing hidden")?,
            }),
            other => Err(format!("unknown wal op {other:?}")),
        }
    }
}

/// The WAL file name inside a state directory.
pub const WAL_FILE: &str = "wal.log";

/// Appender over the single live WAL file.
pub struct WalWriter {
    path: PathBuf,
    file: File,
    /// Records appended since the file was last truncated, plus the
    /// starting sequence handed in at open — a monotone record sequence
    /// used to name snapshots.
    lsn: u64,
}

impl WalWriter {
    /// Open (creating if absent) the WAL for appending. `lsn` is the
    /// sequence number recovery established for the existing tail.
    pub fn open(dir: &Path, lsn: u64) -> io::Result<WalWriter> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter { path, file, lsn })
    }

    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Append one record, stamped with the next LSN, and flush it to the
    /// OS. Returns the framed line's byte length (for the `wal.bytes`
    /// counter). A failed append truncates back to the pre-append length
    /// so a partial line cannot tear off later, successful records.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let json = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("wal encode: {e}")))?;
        let lsn = self.lsn + 1;
        let line = format!("{lsn} {} {:016x} {}\n", json.len(), fnv64(json.as_bytes()), json);
        let start = self.file.metadata()?.len();
        if let Err(e) = self
            .file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
        {
            let _ = self.file.set_len(start);
            let _ = self.file.seek(SeekFrom::End(0));
            return Err(e);
        }
        self.lsn = lsn;
        Ok(line.len() as u64)
    }

    /// Fsync then truncate: called under all platform locks right after
    /// a snapshot at the current LSN has been persisted, making the WAL
    /// the empty tail of that snapshot.
    pub fn reset_after_snapshot(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Fsync without truncating (graceful shutdown).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_all()
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read every intact record from a WAL file, stopping silently at a torn
/// tail. Returns the `(lsn, record)` pairs and the count of torn
/// (ignored) lines.
pub fn read_wal(path: &Path) -> io::Result<(Vec<(u64, WalRecord)>, usize)> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut torn = 0;
    for line in BufReader::new(file).split(b'\n') {
        let line = line?;
        let Some(parsed) = parse_line(&line) else {
            // Torn or corrupt: everything from here on is past the
            // acknowledged prefix.
            torn += 1;
            break;
        };
        records.push(parsed);
    }
    Ok((records, torn))
}

fn parse_line(line: &[u8]) -> Option<(u64, WalRecord)> {
    let text = std::str::from_utf8(line).ok()?;
    let (lsn, rest) = text.split_once(' ')?;
    let (len, rest) = rest.split_once(' ')?;
    let (sum, json) = rest.split_once(' ')?;
    let lsn: u64 = lsn.parse().ok()?;
    let len: usize = len.parse().ok()?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    if json.len() != len || fnv64(json.as_bytes()) != sum {
        return None;
    }
    serde_json::from_str(json).ok().map(|r| (lsn, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::record;
    use crate::{pool::QueryId, queue::TaskState};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sqalpel-wal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::UserRegistered {
                id: UserId(1),
                nickname: "mlk".into(),
                email: "mlk@cwi.nl".into(),
            },
            WalRecord::KeyIssued {
                user: UserId(1),
                key: ContributorKey("ck_feed".into()),
                counter: 3,
            },
            WalRecord::ProjectCreated {
                id: ProjectId(1),
                owner: UserId(1),
                title: "nation".into(),
                synopsis: "s".into(),
                visibility: Visibility::Public,
            },
            WalRecord::TargetsSet {
                project: ProjectId(1),
                dbms_labels: vec!["rowstore-2.0".into()],
                hosts: vec!["bench-server".into()],
            },
            WalRecord::TasksEnqueued {
                project: ProjectId(1),
                tasks: vec![Task {
                    id: TaskId(1 << 32),
                    project: ProjectId(1),
                    experiment: ExperimentId(0),
                    query: QueryId(0),
                    sql: "select 1 from t".into(),
                    dbms_label: "rowstore-2.0".into(),
                    host: "bench-server".into(),
                    state: TaskState::Queued,
                    started: None,
                }],
            },
            WalRecord::TaskClaimed {
                task: TaskId(1 << 32),
                key: ContributorKey("ck_feed".into()),
            },
            WalRecord::ReportAccepted {
                task: TaskId(1 << 32),
                key: ContributorKey("ck_feed".into()),
                error: None,
                record: record(
                    TaskId(1 << 32),
                    ProjectId(1),
                    ExperimentId(0),
                    QueryId(0),
                    "rowstore-2.0",
                    "bench-server",
                    &ContributorKey("ck_feed".into()),
                    vec![1.0, 2.0],
                    3,
                    None,
                ),
            },
            WalRecord::ReportBatchAccepted {
                key: ContributorKey("ck_feed".into()),
                items: vec![(
                    TaskId((1 << 32) | 1),
                    Some("timeout".into()),
                    record(
                        TaskId((1 << 32) | 1),
                        ProjectId(1),
                        ExperimentId(0),
                        QueryId(1),
                        "rowstore-2.0",
                        "bench-server",
                        &ContributorKey("ck_feed".into()),
                        vec![4.0],
                        0,
                        Some("timeout".into()),
                    ),
                )],
            },
            WalRecord::TasksReaped {
                project: ProjectId(1),
                tasks: vec![TaskId(1 << 32)],
            },
            WalRecord::ResultHidden {
                project: ProjectId(1),
                index: 0,
                hidden: true,
            },
        ]
    }

    #[test]
    fn append_and_read_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mut wal = WalWriter::open(&dir, 0).unwrap();
        let mut bytes = 0;
        for r in sample_records() {
            bytes += wal.append(&r).unwrap();
        }
        assert_eq!(wal.lsn(), sample_records().len() as u64);
        assert!(bytes > 0);

        let (back, torn) = read_wal(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(back.len(), sample_records().len());
        // LSNs stamp the records 1..=n in append order.
        let lsns: Vec<u64> = back.iter().map(|(lsn, _)| *lsn).collect();
        assert_eq!(lsns, (1..=back.len() as u64).collect::<Vec<_>>());
        // Spot-check a couple of payloads survived verbatim.
        let WalRecord::ReportAccepted { record, .. } = &back[6].1 else {
            panic!("wrong op at 6: {:?}", back[6].1.op());
        };
        assert_eq!(record.times_ms, vec![1.0, 2.0]);
        let WalRecord::TasksEnqueued { tasks, .. } = &back[4].1 else {
            panic!()
        };
        assert_eq!(tasks[0].id, TaskId(1 << 32));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_replay_at_acknowledged_prefix() {
        let dir = tmp_dir("torn");
        let mut wal = WalWriter::open(&dir, 0).unwrap();
        for r in sample_records().into_iter().take(3) {
            wal.append(&r).unwrap();
        }
        drop(wal);
        // Simulate a crash mid-write: chop the last line in half.
        let path = dir.join(WAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();

        let (back, torn) = read_wal(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(torn, 1);

        // A flipped byte (bad checksum) also ends replay there.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        let (back, torn) = read_wal(&path).unwrap();
        assert!(back.len() <= 2);
        assert_eq!(torn, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_after_snapshot_empties_the_log() {
        let dir = tmp_dir("reset");
        let mut wal = WalWriter::open(&dir, 0).unwrap();
        for r in sample_records().into_iter().take(2) {
            wal.append(&r).unwrap();
        }
        wal.reset_after_snapshot().unwrap();
        assert_eq!(wal.lsn(), 2, "lsn keeps counting across truncation");
        let (back, _) = read_wal(&dir.join(WAL_FILE)).unwrap();
        assert!(back.is_empty());
        // Appends continue on the truncated file, LSNs past the snapshot.
        wal.append(&sample_records()[0]).unwrap();
        let (back, _) = read_wal(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].0, 3, "post-truncation records carry lsns past the snapshot");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_wal_reads_empty() {
        let (records, torn) = read_wal(Path::new("/nonexistent/wal.log")).unwrap();
        assert!(records.is_empty());
        assert_eq!(torn, 0);
    }
}
