//! The query pool and its morphing strategies (paper §3.2).
//!
//! "In contrast to systems such as RAGS that only randomly generate
//! queries in a brute force manner, we use a query pool. It is populated
//! with the baseline query and some queries constructed from randomly
//! chosen templates. Once a collection has been defined, we can extend the
//! pool by morphing queries based on observed behavior":
//!
//! - **Alter** — pick a pool query, replace one literal;
//! - **Expand** — find a template slightly larger (one more slot);
//! - **Prune** — one fewer slot, "the preferred method to identify the
//!   contribution of sub-queries in highly complex queries".
//!
//! Fine-grained guidance restricts which lexical terms may (or must)
//! appear; the pool is deduplicated on canonical SQL — and, when a
//! [`Fingerprinter`] is attached, on logical-plan fingerprints, so
//! lexically distinct mutants that rewrite to the same plan (flipped
//! comparisons, reordered conjuncts) never bloat the pool — and capped.

use crate::error::{PlatformError, PlatformResult};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize, Value};
use sqalpel_grammar::{instantiate, Choice, Grammar, Template};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Identifier of a pool query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// The three morphing strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    Alter,
    Expand,
    Prune,
}

impl Strategy {
    /// The paper's Figure 7 color coding: alter = purple, expand = green,
    /// prune = blue.
    pub fn color(self) -> &'static str {
        match self {
            Strategy::Alter => "purple",
            Strategy::Expand => "green",
            Strategy::Prune => "blue",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Strategy::Alter => "alter",
            Strategy::Expand => "expand",
            Strategy::Prune => "prune",
        }
    }

    /// Inverse of [`Strategy::name`], for wire payloads.
    pub fn from_name(name: &str) -> Result<Strategy, String> {
        match name {
            "alter" => Ok(Strategy::Alter),
            "expand" => Ok(Strategy::Expand),
            "prune" => Ok(Strategy::Prune),
            other => Err(format!("unknown strategy {other:?}")),
        }
    }
}

/// How a pool entry came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// The user-supplied baseline query.
    Baseline,
    /// Drawn from a randomly chosen template.
    Random,
    /// Morphed from `parent` with the given strategy.
    Morph { strategy: Strategy, parent: QueryId },
}

/// One query in the pool.
#[derive(Debug, Clone)]
pub struct PoolEntry {
    pub id: QueryId,
    /// Canonical SQL text (dedup key).
    pub sql: String,
    /// Index into the pool's template set.
    pub template: usize,
    pub choice: Choice,
    pub origin: Origin,
    /// Creation order (the x-axis of the experiment-history view).
    pub step: usize,
    /// Canonical logical-plan fingerprint, when the pool has a
    /// [`Fingerprinter`] and the query plans on the target system.
    pub fingerprint: Option<u64>,
}

impl Serialize for Origin {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        match self {
            Origin::Baseline => {
                m.insert("kind".into(), "baseline".into());
            }
            Origin::Random => {
                m.insert("kind".into(), "random".into());
            }
            Origin::Morph { strategy, parent } => {
                m.insert("kind".into(), "morph".into());
                m.insert("strategy".into(), strategy.name().into());
                m.insert("parent".into(), parent.0.into());
            }
        }
        Value::Object(m)
    }
}

impl Deserialize for Origin {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v["kind"].as_str().ok_or("origin: missing kind")? {
            "baseline" => Ok(Origin::Baseline),
            "random" => Ok(Origin::Random),
            "morph" => Ok(Origin::Morph {
                strategy: Strategy::from_name(
                    v["strategy"].as_str().ok_or("origin: missing strategy")?,
                )?,
                parent: QueryId(
                    v["parent"].as_i64().ok_or("origin: missing parent")? as u64
                ),
            }),
            other => Err(format!("unknown origin {other:?}")),
        }
    }
}

impl Serialize for PoolEntry {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("id".into(), self.id.0.into());
        m.insert("sql".into(), self.sql.clone().into());
        m.insert("template".into(), self.template.into());
        let choice: serde_json::Map = self
            .choice
            .iter()
            .map(|(class, idxs)| {
                let idxs: Vec<Value> = idxs.iter().map(|&i| Value::from(i)).collect();
                (class.clone(), Value::Array(idxs))
            })
            .collect();
        m.insert("choice".into(), Value::Object(choice));
        m.insert("origin".into(), self.origin.to_value());
        m.insert("step".into(), self.step.into());
        // Hex text keeps the full u64 out of i64 number territory, same
        // trick as the results CSV.
        if let Some(fp) = self.fingerprint {
            m.insert("fingerprint".into(), format!("{fp:016x}").into());
        }
        Value::Object(m)
    }
}

impl Deserialize for PoolEntry {
    fn from_value(v: &Value) -> Result<Self, String> {
        let num =
            |k: &str| v[k].as_i64().map(|x| x as u64).ok_or(format!("pool entry: missing {k}"));
        let mut choice = Choice::new();
        match &v["choice"] {
            Value::Object(m) => {
                for (class, idxs) in m.iter() {
                    let idxs = idxs
                        .as_array()
                        .ok_or("pool entry: choice class not an array")?
                        .iter()
                        .map(|i| {
                            i.as_i64()
                                .map(|x| x as usize)
                                .ok_or("pool entry: bad literal index".to_string())
                        })
                        .collect::<Result<Vec<usize>, String>>()?;
                    choice.insert(class.clone(), idxs);
                }
            }
            _ => return Err("pool entry: missing choice".into()),
        }
        let fingerprint = match v["fingerprint"].as_str() {
            None => None,
            Some(hex) => Some(
                u64::from_str_radix(hex, 16)
                    .map_err(|e| format!("pool entry: bad fingerprint: {e}"))?,
            ),
        };
        Ok(PoolEntry {
            id: QueryId(num("id")?),
            sql: v["sql"]
                .as_str()
                .ok_or("pool entry: missing sql")?
                .to_string(),
            template: num("template")? as usize,
            choice,
            origin: Origin::from_value(&v["origin"])?,
            step: num("step")? as usize,
            fingerprint,
        })
    }
}

impl PoolEntry {
    /// Number of lexical components (node size in Figure 7).
    pub fn components(&self) -> usize {
        self.choice.values().map(Vec::len).sum()
    }

    /// The lexical terms of this query as `(class, literal index)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&str, usize)> {
        self.choice
            .iter()
            .flat_map(|(class, idx)| idx.iter().map(move |&i| (class.as_str(), i)))
    }
}

/// Term-level guidance: "explicitly specifying what lexical terms should
/// or should not be included in the queries being generated" (§3.2).
#[derive(Debug, Clone, Default)]
pub struct Guidance {
    /// Terms that may never appear.
    pub exclude: BTreeSet<(String, usize)>,
    /// Terms that must appear in every generated query.
    pub require: BTreeSet<(String, usize)>,
    /// Relative strategy weights for [`QueryPool::morph_auto`].
    pub weights: StrategyWeights,
}

/// Relative weights for the guided random walk.
#[derive(Debug, Clone, Copy)]
pub struct StrategyWeights {
    pub alter: f64,
    pub expand: f64,
    pub prune: f64,
}

impl Default for StrategyWeights {
    fn default() -> Self {
        StrategyWeights {
            alter: 1.0,
            expand: 1.0,
            prune: 1.0,
        }
    }
}

/// A pluggable plan fingerprinter: canonical plan hash for a SQL string,
/// or `None` when the query does not plan (fingerprint pruning then
/// degrades to SQL-only dedup for that query). Typically backed by
/// [`Dbms::explain`](sqalpel_engine::Dbms::explain).
#[derive(Clone)]
pub struct Fingerprinter(Arc<FingerprintFn>);

/// The function behind a [`Fingerprinter`].
pub type FingerprintFn = dyn Fn(&str) -> Option<u64> + Send + Sync;

impl Fingerprinter {
    pub fn new(f: impl Fn(&str) -> Option<u64> + Send + Sync + 'static) -> Self {
        Fingerprinter(Arc::new(f))
    }

    pub fn fingerprint(&self, sql: &str) -> Option<u64> {
        (self.0)(sql)
    }
}

impl std::fmt::Debug for Fingerprinter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Fingerprinter(..)")
    }
}

/// The query pool over one grammar.
#[derive(Debug)]
pub struct QueryPool {
    grammar: Grammar,
    templates: Vec<Template>,
    /// True when template enumeration hit the cap.
    pub templates_truncated: bool,
    entries: Vec<PoolEntry>,
    by_sql: HashMap<String, QueryId>,
    cap: usize,
    /// The template-enumeration cap this pool was built with — kept so a
    /// snapshot can rebuild the identical template set from the grammar.
    template_cap: usize,
    pub guidance: Guidance,
    step: usize,
    /// SQL dialect used when instantiating queries (grammar dialect
    /// sections accommodate "minor differences in syntax", §1).
    dialect: Option<String>,
    /// Plan-fingerprint dedup: mutants whose rewritten plan was already
    /// seen are dropped just like lexical duplicates.
    fingerprinter: Option<Fingerprinter>,
    seen_fingerprints: HashSet<u64>,
}

impl QueryPool {
    /// Build a pool for a grammar; templates are enumerated up to
    /// `template_cap`, the pool itself holds at most `pool_cap` queries.
    pub fn new(grammar: Grammar, template_cap: usize, pool_cap: usize) -> PlatformResult<Self> {
        let report = grammar.check();
        if !report.is_ok() {
            return Err(PlatformError::Grammar(report.to_string()));
        }
        let set = grammar.templates(template_cap)?;
        Ok(QueryPool {
            grammar,
            templates: set.templates,
            templates_truncated: set.truncated,
            entries: Vec::new(),
            by_sql: HashMap::new(),
            cap: pool_cap,
            template_cap,
            guidance: Guidance::default(),
            step: 0,
            dialect: None,
            fingerprinter: None,
            seen_fingerprints: HashSet::new(),
        })
    }

    /// Instantiate queries in the given dialect from here on.
    pub fn set_dialect(&mut self, dialect: Option<String>) {
        self.dialect = dialect;
    }

    /// Attach a plan fingerprinter: from here on, new queries whose
    /// canonical plan fingerprint was already seen are dropped exactly
    /// like lexical duplicates (the prune dedup from the roadmap).
    pub fn set_fingerprinter(&mut self, f: Option<Fingerprinter>) {
        self.fingerprinter = f;
    }

    pub fn dialect(&self) -> Option<&str> {
        self.dialect.as_deref()
    }

    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    pub fn template_cap(&self) -> usize {
        self.template_cap
    }

    pub fn pool_cap(&self) -> usize {
        self.cap
    }

    /// Re-insert an entry during recovery, bypassing instantiation: the
    /// stored SQL is authoritative, and the (non-serializable)
    /// fingerprinter need not be attached for the dedup sets to rebuild.
    pub fn restore_entry(&mut self, entry: PoolEntry) -> Result<(), String> {
        if entry.id.0 as usize != self.entries.len() {
            return Err(format!(
                "pool entry #{} restored out of order (expected #{})",
                entry.id.0,
                self.entries.len()
            ));
        }
        if entry.template >= self.templates.len() {
            return Err(format!(
                "pool entry #{} references template {} of {}",
                entry.id.0,
                entry.template,
                self.templates.len()
            ));
        }
        self.by_sql.insert(entry.sql.clone(), entry.id);
        if let Some(fp) = entry.fingerprint {
            self.seen_fingerprints.insert(fp);
        }
        self.step = self.step.max(entry.step + 1);
        self.entries.push(entry);
        Ok(())
    }

    pub fn entry(&self, id: QueryId) -> PlatformResult<&PoolEntry> {
        self.entries
            .get(id.0 as usize)
            .ok_or(PlatformError::UnknownQuery(id.0))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The literal text of a term.
    pub fn term_text(&self, class: &str, idx: usize) -> Option<String> {
        self.grammar
            .rule(class)
            .and_then(|r| r.alternatives.get(idx))
            .map(|a| a.literal_text())
    }

    fn admissible(&self, template: &Template, choice: &Choice) -> bool {
        for (class, idxs) in choice {
            if idxs
                .iter()
                .any(|&i| self.guidance.exclude.contains(&(class.clone(), i)))
            {
                return false;
            }
        }
        for (class, idx) in &self.guidance.require {
            // A required term must be present whenever its class can
            // appear at all; templates without the class are rejected.
            if !template.counts.contains_key(class)
                || !choice.get(class).is_some_and(|v| v.contains(idx))
            {
                return false;
            }
        }
        true
    }

    fn insert(
        &mut self,
        template: usize,
        choice: Choice,
        origin: Origin,
    ) -> PlatformResult<Option<QueryId>> {
        if self.entries.len() >= self.cap {
            return Err(PlatformError::PoolFull(self.cap));
        }
        let sql = instantiate(
            &self.grammar,
            &self.templates[template],
            &choice,
            self.dialect.as_deref(),
        )?;
        if self.by_sql.contains_key(&sql) {
            return Ok(None); // "added to the pool unless it was already known"
        }
        // Plan-level dedup: a lexically novel query whose rewritten plan
        // fingerprint is already in the pool adds no discriminative value.
        let fingerprint = self
            .fingerprinter
            .as_ref()
            .and_then(|f| f.fingerprint(&sql));
        if let Some(fp) = fingerprint {
            if !self.seen_fingerprints.insert(fp) {
                return Ok(None);
            }
        }
        let id = QueryId(self.entries.len() as u64);
        self.by_sql.insert(sql.clone(), id);
        self.entries.push(PoolEntry {
            id,
            sql,
            template,
            choice,
            origin,
            step: self.step,
            fingerprint,
        });
        self.step += 1;
        Ok(Some(id))
    }

    /// Seed the pool with the baseline query: the maximal template
    /// instantiated with every literal.
    pub fn seed_baseline(&mut self) -> PlatformResult<QueryId> {
        let (idx, template) = self
            .templates
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| t.components())
            .ok_or_else(|| PlatformError::Grammar("grammar has no templates".into()))?;
        let choice: Choice = template
            .counts
            .iter()
            .map(|(class, &k)| (class.clone(), (0..k).collect()))
            .collect();
        self.insert(idx, choice, Origin::Baseline)?
            .ok_or_else(|| PlatformError::Invalid("baseline already seeded".into()))
    }

    /// Add up to `n` random-template queries (§3.2: "populated with the
    /// baseline query and some queries constructed from randomly chosen
    /// templates"). Returns the ids actually added (duplicates and
    /// guidance-rejected draws are skipped).
    pub fn add_random(&mut self, n: usize, rng: &mut StdRng) -> PlatformResult<Vec<QueryId>> {
        let mut added = Vec::new();
        let mut attempts = 0;
        while added.len() < n && attempts < n * 20 {
            attempts += 1;
            let t = rng.random_range(0..self.templates.len());
            let choice = sqalpel_grammar::random_choice(&self.grammar, &self.templates[t], rng)?;
            if !self.admissible(&self.templates[t], &choice) {
                continue;
            }
            if let Some(id) = self.insert(t, choice, Origin::Random)? {
                added.push(id);
            }
        }
        Ok(added)
    }

    /// Apply one morphing step with the given strategy to a random parent.
    /// Returns the new query id, or `None` when no admissible, novel
    /// variant was found.
    pub fn morph(&mut self, strategy: Strategy, rng: &mut StdRng) -> PlatformResult<Option<QueryId>> {
        if self.entries.is_empty() {
            return Err(PlatformError::Invalid("morphing an empty pool".into()));
        }
        // A bounded number of parent draws; each parent gets a bounded
        // number of variant draws.
        for _ in 0..16 {
            let parent = &self.entries[rng.random_range(0..self.entries.len())];
            let parent_id = parent.id;
            let candidate = match strategy {
                Strategy::Alter => self.alter_candidate(parent_id, rng),
                Strategy::Expand => self.expand_candidate(parent_id, rng),
                Strategy::Prune => self.prune_candidate(parent_id, rng),
            };
            if let Some((template, choice)) = candidate {
                if !self.admissible(&self.templates[template], &choice) {
                    continue;
                }
                if let Some(id) = self.insert(
                    template,
                    choice,
                    Origin::Morph {
                        strategy,
                        parent: parent_id,
                    },
                )? {
                    return Ok(Some(id));
                }
            }
        }
        Ok(None)
    }

    /// One step of the guided random walk: pick a strategy by weight.
    pub fn morph_auto(&mut self, rng: &mut StdRng) -> PlatformResult<Option<QueryId>> {
        let w = self.guidance.weights;
        let total = w.alter + w.expand + w.prune;
        if total <= 0.0 {
            return Err(PlatformError::Invalid("all strategy weights zero".into()));
        }
        let roll = rng.random_range(0.0..total);
        let strategy = if roll < w.alter {
            Strategy::Alter
        } else if roll < w.alter + w.expand {
            Strategy::Expand
        } else {
            Strategy::Prune
        };
        self.morph(strategy, rng)
    }

    /// Alter: same template, one literal replaced by an unused one.
    fn alter_candidate(&self, parent: QueryId, rng: &mut StdRng) -> Option<(usize, Choice)> {
        let entry = &self.entries[parent.0 as usize];
        let template = &self.templates[entry.template];
        // Classes where a different literal is available.
        let swappable: Vec<&String> = entry
            .choice
            .iter()
            .filter(|(class, idxs)| idxs.len() < self.grammar.class_size(class))
            .map(|(class, _)| class)
            .collect();
        let class = swappable.get(rng.random_range(0..swappable.len().max(1)))?;
        let idxs = &entry.choice[*class];
        let n = self.grammar.class_size(class);
        let unused: Vec<usize> = (0..n).filter(|i| !idxs.contains(i)).collect();
        let replacement = unused[rng.random_range(0..unused.len())];
        let victim = rng.random_range(0..idxs.len());
        let mut new_idxs = idxs.clone();
        new_idxs[victim] = replacement;
        new_idxs.sort_unstable();
        let mut choice = entry.choice.clone();
        choice.insert((*class).clone(), new_idxs);
        let _ = template;
        Some((entry.template, choice))
    }

    /// Expand: a template with exactly one more slot whose counts contain
    /// the parent's; keep the parent's literals and add one.
    fn expand_candidate(&self, parent: QueryId, rng: &mut StdRng) -> Option<(usize, Choice)> {
        let entry = &self.entries[parent.0 as usize];
        let from = &self.templates[entry.template].counts;
        let candidates: Vec<usize> = self
            .templates
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.components() == entry.components() + 1
                    && from
                        .iter()
                        .all(|(c, &k)| t.counts.get(c).copied().unwrap_or(0) >= k)
            })
            .map(|(i, _)| i)
            .collect();
        let target = *candidates.get(rng.random_range(0..candidates.len().max(1)))?;
        let grown = self.grow_choice(&entry.choice, target, rng)?;
        Some((target, grown))
    }

    /// Prune: one fewer slot; drop one literal.
    fn prune_candidate(&self, parent: QueryId, rng: &mut StdRng) -> Option<(usize, Choice)> {
        let entry = &self.entries[parent.0 as usize];
        let from = &self.templates[entry.template].counts;
        let candidates: Vec<usize> = self
            .templates
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.components() + 1 == entry.components()
                    && t.counts
                        .iter()
                        .all(|(c, &k)| from.get(c).copied().unwrap_or(0) >= k)
            })
            .map(|(i, _)| i)
            .collect();
        let target = *candidates.get(rng.random_range(0..candidates.len().max(1)))?;
        // Shrink the choice to the target's counts, dropping literals from
        // the class that lost a slot.
        let mut choice = Choice::new();
        for (class, &k) in &self.templates[target].counts {
            let have = entry.choice.get(class)?;
            let mut keep = have.clone();
            while keep.len() > k {
                let drop = rng.random_range(0..keep.len());
                keep.remove(drop);
            }
            choice.insert(class.clone(), keep);
        }
        Some((target, choice))
    }

    /// Extend a parent's choice to fill a larger template.
    fn grow_choice(&self, base: &Choice, target: usize, rng: &mut StdRng) -> Option<Choice> {
        let mut choice = Choice::new();
        for (class, &k) in &self.templates[target].counts {
            let mut idxs = base.get(class).cloned().unwrap_or_default();
            let n = self.grammar.class_size(class);
            while idxs.len() < k {
                let unused: Vec<usize> = (0..n).filter(|i| !idxs.contains(i)).collect();
                if unused.is_empty() {
                    return None;
                }
                idxs.push(unused[rng.random_range(0..unused.len())]);
            }
            idxs.sort_unstable();
            choice.insert(class.clone(), idxs);
        }
        Some(choice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqalpel_grammar::seeded_rng;

    fn pool() -> QueryPool {
        let g = Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap();
        QueryPool::new(g, 10_000, 1000).unwrap()
    }

    #[test]
    fn baseline_is_maximal() {
        let mut p = pool();
        let id = p.seed_baseline().unwrap();
        let e = p.entry(id).unwrap();
        assert_eq!(e.origin, Origin::Baseline);
        // 4 columns + table + filter.
        assert_eq!(e.components(), 6);
        assert!(e.sql.contains("WHERE n_name= 'BRAZIL'"));
    }

    #[test]
    fn random_seeding_dedups() {
        let mut p = pool();
        p.seed_baseline().unwrap();
        let mut rng = seeded_rng(1);
        p.add_random(20, &mut rng).unwrap();
        // The whole space has 32 queries; no duplicates may appear.
        let mut sqls: Vec<&str> = p.entries().iter().map(|e| e.sql.as_str()).collect();
        let before = sqls.len();
        sqls.sort_unstable();
        sqls.dedup();
        assert_eq!(sqls.len(), before);
        assert!(before <= 32);
    }

    #[test]
    fn alter_changes_exactly_one_literal() {
        let mut p = pool();
        p.seed_baseline().unwrap();
        let mut rng = seeded_rng(3);
        p.add_random(5, &mut rng).unwrap();
        let before = p.len();
        if let Some(id) = p.morph(Strategy::Alter, &mut rng).unwrap() {
            let e = p.entry(id).unwrap();
            let Origin::Morph { strategy, parent } = e.origin else {
                panic!("wrong origin");
            };
            assert_eq!(strategy, Strategy::Alter);
            let par = p.entry(parent).unwrap();
            assert_eq!(e.components(), par.components());
            assert_eq!(e.template, par.template);
            assert_ne!(e.sql, par.sql);
        } else {
            // Acceptable: no novel variant found in bounded tries.
            assert_eq!(p.len(), before);
        }
    }

    #[test]
    fn expand_grows_by_one_component() {
        let mut p = pool();
        p.seed_baseline().unwrap();
        let mut rng = seeded_rng(5);
        // Baseline is maximal, so expanding requires smaller seeds first.
        p.add_random(8, &mut rng).unwrap();
        for _ in 0..20 {
            if let Some(id) = p.morph(Strategy::Expand, &mut rng).unwrap() {
                let e = p.entry(id).unwrap();
                let Origin::Morph { parent, .. } = e.origin else {
                    panic!()
                };
                let par = p.entry(parent).unwrap();
                assert_eq!(e.components(), par.components() + 1);
                // Parent literals are preserved.
                for (class, idxs) in &par.choice {
                    let grown = &e.choice[class];
                    assert!(idxs.iter().all(|i| grown.contains(i)));
                }
                return;
            }
        }
        panic!("expand never produced a variant");
    }

    #[test]
    fn prune_shrinks_by_one_component() {
        let mut p = pool();
        p.seed_baseline().unwrap();
        let mut rng = seeded_rng(7);
        for _ in 0..20 {
            if let Some(id) = p.morph(Strategy::Prune, &mut rng).unwrap() {
                let e = p.entry(id).unwrap();
                let Origin::Morph { parent, .. } = e.origin else {
                    panic!()
                };
                let par = p.entry(parent).unwrap();
                assert_eq!(e.components() + 1, par.components());
                return;
            }
        }
        panic!("prune never produced a variant");
    }

    #[test]
    fn exclusion_guidance_respected() {
        let mut p = pool();
        // Never use n_comment (literal 3 of l_column).
        p.guidance.exclude.insert(("l_column".into(), 3));
        let mut rng = seeded_rng(11);
        p.add_random(15, &mut rng).unwrap();
        for _ in 0..30 {
            p.morph_auto(&mut rng).unwrap();
        }
        for e in p.entries() {
            assert!(
                !e.sql.contains("n_comment"),
                "excluded term appeared in {}",
                e.sql
            );
        }
    }

    #[test]
    fn requirement_guidance_respected() {
        let mut p = pool();
        // Every query must project n_name (literal 1 of l_column).
        p.guidance.require.insert(("l_column".into(), 1));
        let mut rng = seeded_rng(13);
        p.add_random(10, &mut rng).unwrap();
        assert!(!p.is_empty());
        for e in p.entries() {
            assert!(e.sql.contains("n_name"), "{}", e.sql);
        }
    }

    #[test]
    fn pool_cap_enforced() {
        let g = Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap();
        let mut p = QueryPool::new(g, 10_000, 2).unwrap();
        p.seed_baseline().unwrap();
        let mut rng = seeded_rng(17);
        p.add_random(1, &mut rng).unwrap();
        let err = p.add_random(5, &mut rng).unwrap_err();
        assert!(matches!(err, PlatformError::PoolFull(2)));
    }

    #[test]
    fn term_text_lookup() {
        let p = pool();
        assert_eq!(p.term_text("l_column", 1).unwrap(), "n_name");
        assert!(p.term_text("l_column", 99).is_none());
        assert!(p.term_text("ghost", 0).is_none());
    }

    #[test]
    fn invalid_grammar_rejected() {
        let g = Grammar::parse("q:\n    ${ghost}\n").unwrap();
        assert!(matches!(
            QueryPool::new(g, 100, 100),
            Err(PlatformError::Grammar(_))
        ));
    }

    #[test]
    fn dialect_changes_generated_sql() {
        let src = "q:\n    SELECT count(*) FROM nation ${l_limit}\nl_limit:\n    LIMIT 5\nl_limit@legacydb:\n    FETCH FIRST 5 ROWS ONLY\n";
        let g = Grammar::parse(src).unwrap();
        let mut p = QueryPool::new(g.clone(), 100, 100).unwrap();
        p.seed_baseline().unwrap();
        assert!(p.entries()[0].sql.contains("LIMIT 5"));
        let mut p2 = QueryPool::new(g, 100, 100).unwrap();
        p2.set_dialect(Some("legacydb".into()));
        p2.seed_baseline().unwrap();
        assert!(p2.entries()[0].sql.contains("FETCH FIRST 5 ROWS ONLY"), "{}", p2.entries()[0].sql);
    }

    #[test]
    fn fingerprint_prunes_plan_equivalent_mutants() {
        use sqalpel_engine::Dbms;
        let src = "q:\n    SELECT n_name FROM nation WHERE ${l_filter}\nl_filter:\n    n_regionkey < 2\n    2 > n_regionkey\n";
        let g = Grammar::parse(src).unwrap();

        // Control: without a fingerprinter the flipped comparison is a
        // lexically novel pool entry.
        let mut rng = seeded_rng(19);
        let mut control = QueryPool::new(g.clone(), 100, 100).unwrap();
        control.seed_baseline().unwrap();
        assert!(control.morph(Strategy::Alter, &mut rng).unwrap().is_some());
        assert_eq!(control.len(), 2);

        // With an engine-backed fingerprinter the mutant's rewritten plan
        // canonicalizes to the baseline's plan and the mutant is dropped.
        let db = Arc::new(sqalpel_engine::Database::tpch(0.001, 42));
        let store = sqalpel_engine::RowStore::new(db);
        let mut p = QueryPool::new(g, 100, 100).unwrap();
        p.set_fingerprinter(Some(Fingerprinter::new(move |sql| {
            store.explain(sql).ok().map(|e| e.fingerprint)
        })));
        let base = p.seed_baseline().unwrap();
        assert!(p.entry(base).unwrap().fingerprint.is_some());
        let mut rng = seeded_rng(19);
        let added = p.morph(Strategy::Alter, &mut rng).unwrap();
        assert!(added.is_none(), "plan-equivalent mutant must be dropped");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn entries_round_trip_and_restore_rebuilds_dedup() {
        let mut p = pool();
        p.seed_baseline().unwrap();
        let mut rng = seeded_rng(23);
        p.add_random(5, &mut rng).unwrap();
        for _ in 0..10 {
            p.morph_auto(&mut rng).unwrap();
        }
        let g = Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap();
        let mut back = QueryPool::new(g, p.template_cap(), p.pool_cap()).unwrap();
        for e in p.entries() {
            let text = serde_json::to_string(e).unwrap();
            let e2: PoolEntry = serde_json::from_str(&text).unwrap();
            assert_eq!(e2.id, e.id);
            assert_eq!(e2.sql, e.sql);
            assert_eq!(e2.choice, e.choice);
            assert_eq!(e2.origin, e.origin);
            back.restore_entry(e2).unwrap();
        }
        assert_eq!(back.len(), p.len());
        // The rebuilt dedup set rejects re-inserting a known query: the
        // next morph walk continues instead of duplicating.
        let before = back.len();
        let mut rng2 = seeded_rng(29);
        for _ in 0..5 {
            back.morph_auto(&mut rng2).unwrap();
        }
        let mut sqls: Vec<&str> = back.entries().iter().map(|e| e.sql.as_str()).collect();
        let n = sqls.len();
        sqls.sort_unstable();
        sqls.dedup();
        assert_eq!(sqls.len(), n);
        assert!(back.len() >= before);
        // Out-of-order restore is rejected.
        let mut empty =
            QueryPool::new(Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap(), 10_000, 1000)
                .unwrap();
        assert!(empty.restore_entry(p.entries()[1].clone()).is_err());
    }

    #[test]
    fn strategy_colors_match_paper() {
        assert_eq!(Strategy::Alter.color(), "purple");
        assert_eq!(Strategy::Expand.color(), "green");
        assert_eq!(Strategy::Prune.color(), "blue");
    }
}
