//! Visual analytics (paper §5.6) — the numbers behind Figures 2, 3, 4
//! and 7, computed rather than drawn.
//!
//! - [`components`]: dominant lexical terms by least-squares attribution
//!   of run time to term presence (Figure 2's principal components);
//! - [`speedup`]: per-query speedup factors between two result sets
//!   (Figure 3);
//! - [`differential`]: token-level diff between two query variants with
//!   their per-system timings (Figure 4);
//! - [`history`]: the experiment timeline with morph strategies, error
//!   runs and node sizes (Figure 7).

use crate::pool::{Origin, PoolEntry, QueryId, QueryPool, Strategy};
use crate::results::ResultRecord;
use std::collections::{BTreeMap, BTreeSet, HashMap};

// ------------------------------------------------------------- components

/// A lexical term with its estimated time contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentWeight {
    pub class: String,
    pub literal: String,
    /// Estimated milliseconds this term adds to a query that contains it.
    pub weight_ms: f64,
    /// How many measured queries contained the term.
    pub support: usize,
}

/// Attribute measured times to lexical terms with ridge-regularized least
/// squares over the term-presence design matrix. Returns terms sorted by
/// descending weight.
///
/// `times` maps pool query ids to a representative time (median over
/// repetitions) on a single system.
pub fn components(pool: &QueryPool, times: &HashMap<QueryId, f64>) -> Vec<ComponentWeight> {
    // Collect the measured entries and the distinct terms they use.
    let measured: Vec<&PoolEntry> = pool
        .entries()
        .iter()
        .filter(|e| times.contains_key(&e.id))
        .collect();
    if measured.is_empty() {
        return Vec::new();
    }
    // Count term support first: terms present in *every* measured query
    // are collinear with the intercept (they explain the base cost, not a
    // component) and are folded into it rather than ranked.
    let mut raw_support: BTreeMap<(String, usize), usize> = BTreeMap::new();
    for e in &measured {
        for (class, idx) in e.terms() {
            *raw_support.entry((class.to_string(), idx)).or_insert(0) += 1;
        }
    }
    let mut term_index: BTreeMap<(String, usize), usize> = BTreeMap::new();
    for (key, &count) in &raw_support {
        if count < measured.len() {
            let next = term_index.len();
            term_index.insert(key.clone(), next);
        }
    }
    let n_terms = term_index.len();
    let n_rows = measured.len();

    // Design matrix (presence) with an intercept column.
    let cols = n_terms + 1;
    let mut x = vec![vec![0.0f64; cols]; n_rows];
    let mut y = vec![0.0f64; n_rows];
    for (i, e) in measured.iter().enumerate() {
        x[i][0] = 1.0; // intercept
        for (class, idx) in e.terms() {
            if let Some(&j) = term_index.get(&(class.to_string(), idx)) {
                x[i][j + 1] = 1.0;
            }
        }
        y[i] = times[&e.id];
    }

    // Normal equations with ridge: (XᵀX + λI) w = Xᵀy.
    let lambda = 1e-6;
    let mut a = vec![vec![0.0f64; cols]; cols];
    let mut b = vec![0.0f64; cols];
    for i in 0..n_rows {
        for j in 0..cols {
            if x[i][j] == 0.0 {
                continue;
            }
            b[j] += y[i];
            for (k, cell) in x[i].iter().enumerate() {
                a[j][k] += cell;
            }
        }
    }
    for (j, row) in a.iter_mut().enumerate() {
        row[j] += lambda;
    }
    let w = solve(a, b);

    let mut out: Vec<ComponentWeight> = term_index
        .into_iter()
        .map(|((class, idx), j)| ComponentWeight {
            literal: pool.term_text(&class, idx).unwrap_or_default(),
            support: raw_support[&(class.clone(), idx)],
            class,
            weight_ms: w[j + 1],
        })
        .collect();
    out.sort_by(|a, b| b.weight_ms.partial_cmp(&a.weight_ms).expect("finite weights"));
    out
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite matrix")
            })
            .expect("non-empty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue; // singular direction; ridge keeps this rare
        }
        for row in col + 1..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            let pivot_row = a[col].clone();
            for (k, pv) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= factor * pv;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut w = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * w[k];
        }
        w[col] = if a[col][col].abs() < 1e-12 {
            0.0
        } else {
            acc / a[col][col]
        };
    }
    w
}

// ---------------------------------------------------------------- speedup

/// Speedup statistics between two timing maps (e.g. the same system on a
/// 10× larger database, or two different systems).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupReport {
    /// Per-query `(id, factor)` where factor = slow/fast (denominator
    /// system first argument).
    pub factors: Vec<(QueryId, f64)>,
    pub min: f64,
    pub median: f64,
    pub max: f64,
}

/// Compute per-query factors `times_b / times_a` over the common ids.
/// Returns `None` when there is no overlap.
pub fn speedup(
    times_a: &HashMap<QueryId, f64>,
    times_b: &HashMap<QueryId, f64>,
) -> Option<SpeedupReport> {
    let mut factors: Vec<(QueryId, f64)> = times_a
        .iter()
        .filter_map(|(id, &a)| {
            let b = *times_b.get(id)?;
            (a > 0.0).then_some((*id, b / a))
        })
        .collect();
    if factors.is_empty() {
        return None;
    }
    factors.sort_by_key(|(id, _)| *id);
    let mut sorted: Vec<f64> = factors.iter().map(|(_, f)| *f).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite factors"));
    Some(SpeedupReport {
        min: sorted[0],
        median: sorted[sorted.len() / 2],
        max: sorted[sorted.len() - 1],
        factors,
    })
}

/// Extract a `query id → median ms` map for one system from raw records
/// (error runs are skipped).
pub fn times_by_query(records: &[ResultRecord], dbms_label: &str) -> HashMap<QueryId, f64> {
    let mut out = HashMap::new();
    for r in records {
        if r.dbms_label == dbms_label {
            if let Some(m) = r.median_ms() {
                out.insert(QueryId(r.query), m);
            }
        }
    }
    out
}

/// Queries discriminating between two systems: relatively better on A
/// (factor above `threshold`) or on B (below `1/threshold`).
pub fn discriminative(
    times_a: &HashMap<QueryId, f64>,
    times_b: &HashMap<QueryId, f64>,
    threshold: f64,
) -> (Vec<QueryId>, Vec<QueryId>) {
    let mut better_on_a = Vec::new();
    let mut better_on_b = Vec::new();
    if let Some(report) = speedup(times_a, times_b) {
        for (id, factor) in report.factors {
            if factor >= threshold {
                better_on_a.push(id); // B is slower here: A wins
            } else if factor <= 1.0 / threshold {
                better_on_b.push(id);
            }
        }
    }
    (better_on_a, better_on_b)
}

// ------------------------------------------------------------ differential

/// One segment of a token-level diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffPiece {
    Common(String),
    OnlyLeft(String),
    OnlyRight(String),
}

/// Token-level LCS diff between two SQL texts (Figure 4's "highlights the
/// differences in query formulation").
pub fn differential(left: &str, right: &str) -> Vec<DiffPiece> {
    let l: Vec<&str> = left.split_whitespace().collect();
    let r: Vec<&str> = right.split_whitespace().collect();
    // LCS table.
    let mut dp = vec![vec![0usize; r.len() + 1]; l.len() + 1];
    for i in (0..l.len()).rev() {
        for j in (0..r.len()).rev() {
            dp[i][j] = if l[i] == r[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    // Walk.
    let mut out: Vec<DiffPiece> = Vec::new();
    let push = |out: &mut Vec<DiffPiece>, piece: DiffPiece| {
        match (out.last_mut(), &piece) {
            (Some(DiffPiece::Common(a)), DiffPiece::Common(b)) => {
                a.push(' ');
                a.push_str(b);
            }
            (Some(DiffPiece::OnlyLeft(a)), DiffPiece::OnlyLeft(b)) => {
                a.push(' ');
                a.push_str(b);
            }
            (Some(DiffPiece::OnlyRight(a)), DiffPiece::OnlyRight(b)) => {
                a.push(' ');
                a.push_str(b);
            }
            _ => out.push(piece),
        }
    };
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        if l[i] == r[j] {
            push(&mut out, DiffPiece::Common(l[i].to_string()));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            push(&mut out, DiffPiece::OnlyLeft(l[i].to_string()));
            i += 1;
        } else {
            push(&mut out, DiffPiece::OnlyRight(r[j].to_string()));
            j += 1;
        }
    }
    while i < l.len() {
        push(&mut out, DiffPiece::OnlyLeft(l[i].to_string()));
        i += 1;
    }
    while j < r.len() {
        push(&mut out, DiffPiece::OnlyRight(r[j].to_string()));
        j += 1;
    }
    out
}

/// Render a diff as `  common / - left-only / + right-only` lines.
pub fn render_diff(diff: &[DiffPiece]) -> String {
    let mut out = String::new();
    for piece in diff {
        match piece {
            DiffPiece::Common(t) => out.push_str(&format!("  {t}\n")),
            DiffPiece::OnlyLeft(t) => out.push_str(&format!("- {t}\n")),
            DiffPiece::OnlyRight(t) => out.push_str(&format!("+ {t}\n")),
        }
    }
    out
}

// --------------------------------------------------------------- history

/// One node of the experiment-history timeline (Figure 7).
#[derive(Debug, Clone)]
pub struct HistoryNode {
    pub step: usize,
    pub query: QueryId,
    /// The morph strategy, `None` for baseline/random seeds.
    pub strategy: Option<Strategy>,
    /// Link to the parent (the dashed morph edges).
    pub parent: Option<QueryId>,
    /// Node size: number of lexical components.
    pub components: usize,
    /// True when every measured run of the query errored (yellow dots).
    pub error: bool,
    /// Median time per DBMS label (absent for unmeasured/errored runs).
    pub times_ms: BTreeMap<String, f64>,
}

impl HistoryNode {
    /// The display color: strategy color, yellow for errors, grey seeds.
    pub fn color(&self) -> &'static str {
        if self.error {
            "yellow"
        } else {
            match self.strategy {
                Some(s) => s.color(),
                None => "grey",
            }
        }
    }
}

/// Build the experiment history from the pool and the raw results.
pub fn history(pool: &QueryPool, records: &[ResultRecord]) -> Vec<HistoryNode> {
    let mut times: HashMap<QueryId, BTreeMap<String, f64>> = HashMap::new();
    let mut errored: HashMap<QueryId, bool> = HashMap::new();
    let mut measured: BTreeSet<QueryId> = BTreeSet::new();
    for r in records {
        let id = QueryId(r.query);
        measured.insert(id);
        match r.median_ms() {
            Some(m) => {
                times.entry(id).or_default().insert(r.dbms_label.clone(), m);
                errored.insert(id, false);
            }
            None => {
                errored.entry(id).or_insert(true);
            }
        }
    }
    pool.entries()
        .iter()
        .map(|e| {
            let (strategy, parent) = match e.origin {
                Origin::Morph { strategy, parent } => (Some(strategy), Some(parent)),
                _ => (None, None),
            };
            HistoryNode {
                step: e.step,
                query: e.id,
                strategy,
                parent,
                components: e.components(),
                error: errored.get(&e.id).copied().unwrap_or(false),
                times_ms: times.get(&e.id).cloned().unwrap_or_default(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqalpel_grammar::Grammar;

    fn pool() -> QueryPool {
        let g = Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap();
        let mut p = QueryPool::new(g, 10_000, 1000).unwrap();
        p.seed_baseline().unwrap();
        let mut rng = sqalpel_grammar::seeded_rng(2);
        p.add_random(12, &mut rng).unwrap();
        p
    }

    #[test]
    fn components_identify_expensive_term() {
        let p = pool();
        // Synthetic cost model: n_comment costs 50ms, everything else 1ms
        // per component; intercept 2ms.
        let mut times = HashMap::new();
        for e in p.entries() {
            let mut t = 2.0;
            for (class, idx) in e.terms() {
                t += if class == "l_column" && idx == 3 { 50.0 } else { 1.0 };
            }
            times.insert(e.id, t);
        }
        let ranked = components(&p, &times);
        assert!(!ranked.is_empty());
        assert_eq!(ranked[0].literal, "n_comment", "{ranked:#?}");
        assert!(ranked[0].weight_ms > 25.0);
        // All other terms must be far below.
        assert!(ranked[1].weight_ms < 10.0, "{ranked:#?}");
    }

    #[test]
    fn components_empty_without_measurements() {
        let p = pool();
        assert!(components(&p, &HashMap::new()).is_empty());
    }

    #[test]
    fn speedup_statistics() {
        let a: HashMap<QueryId, f64> =
            [(QueryId(0), 10.0), (QueryId(1), 20.0), (QueryId(2), 5.0)]
                .into_iter()
                .collect();
        let b: HashMap<QueryId, f64> =
            [(QueryId(0), 80.0), (QueryId(1), 280.0), (QueryId(2), 60.0)]
                .into_iter()
                .collect();
        let r = speedup(&a, &b).unwrap();
        assert_eq!(r.min, 8.0);
        assert_eq!(r.max, 14.0);
        assert_eq!(r.median, 12.0);
        assert_eq!(r.factors.len(), 3);
        assert!(speedup(&a, &HashMap::new()).is_none());
    }

    #[test]
    fn discriminative_split() {
        let a: HashMap<QueryId, f64> =
            [(QueryId(0), 1.0), (QueryId(1), 10.0), (QueryId(2), 5.0)]
                .into_iter()
                .collect();
        let b: HashMap<QueryId, f64> =
            [(QueryId(0), 4.0), (QueryId(1), 2.0), (QueryId(2), 5.0)]
                .into_iter()
                .collect();
        let (on_a, on_b) = discriminative(&a, &b, 2.0);
        assert_eq!(on_a, vec![QueryId(0)]);
        assert_eq!(on_b, vec![QueryId(1)]);
    }

    #[test]
    fn differential_marks_changed_tokens() {
        let d = differential(
            "SELECT n_name FROM nation WHERE n_name= 'BRAZIL'",
            "SELECT n_name , n_regionkey FROM nation",
        );
        let rendered = render_diff(&d);
        assert!(rendered.contains("+ , n_regionkey"), "{rendered}");
        assert!(rendered.contains("- WHERE n_name= 'BRAZIL'"), "{rendered}");
        assert!(rendered.contains("  SELECT n_name"), "{rendered}");
    }

    #[test]
    fn differential_identical_texts() {
        let d = differential("a b c", "a b c");
        assert_eq!(d, vec![DiffPiece::Common("a b c".into())]);
    }

    #[test]
    fn history_nodes_follow_pool() {
        let mut p = pool();
        let mut rng = sqalpel_grammar::seeded_rng(5);
        for _ in 0..10 {
            p.morph_auto(&mut rng).unwrap();
        }
        // Simulate results: first query errored, second measured.
        let records = vec![
            {
                let mut r = crate::results::record(
                    crate::queue::TaskId(0),
                    crate::project::ProjectId(1),
                    crate::project::ExperimentId(0),
                    QueryId(0),
                    "rowstore-2.0",
                    "h",
                    &crate::user::ContributorKey("ck".into()),
                    vec![],
                    0,
                    Some("boom".into()),
                );
                r.times_ms = vec![];
                r
            },
            crate::results::record(
                crate::queue::TaskId(1),
                crate::project::ProjectId(1),
                crate::project::ExperimentId(0),
                QueryId(1),
                "rowstore-2.0",
                "h",
                &crate::user::ContributorKey("ck".into()),
                vec![3.0, 1.0, 2.0],
                5,
                None,
            ),
        ];
        let h = history(&p, &records);
        assert_eq!(h.len(), p.len());
        assert!(h[0].error);
        assert_eq!(h[0].color(), "yellow");
        assert_eq!(h[1].times_ms["rowstore-2.0"], 2.0);
        // Morphed nodes carry strategy colors and parents.
        let morphed = h.iter().find(|n| n.strategy.is_some()).unwrap();
        assert!(morphed.parent.is_some());
        assert!(["purple", "green", "blue"].contains(&morphed.color()));
        // Node sizes match component counts.
        assert!(h.iter().all(|n| n.components >= 1));
    }

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let w = solve(a, b);
        assert!((w[0] - 1.0).abs() < 1e-9);
        assert!((w[1] - 3.0).abs() < 1e-9);
    }
}
