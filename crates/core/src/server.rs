//! The in-process sqalpel server — the SaaS façade of §5.1 without HTTP.
//!
//! "sqalpel is built as a client-server, web-based software platform for
//! developing, managing, and sharing experimental results." This module
//! provides the same operations as the web endpoints: user administration,
//! the catalogs, project/experiment management, pool extension, the task
//! hand-out loop used by the experiment driver, result collection and
//! moderation. State lives behind a [`parking_lot::RwLock`]; the server is
//! `Send + Sync` and exercised concurrently in the integration tests.

use crate::catalog::{Catalogs, DbmsEntry, HostEntry, Visibility};
use crate::error::{PlatformError, PlatformResult};
use crate::metrics::MetricsRegistry;
use crate::pool::{QueryId, Strategy};
use crate::project::{ExperimentId, Project, ProjectId, Role};
use crate::queue::{QueueSummary, Task, TaskId, TaskQueue, TaskState};
use crate::results::{record, ResultRecord, ResultStore};
use crate::user::{ContributorKey, UserId, UserRegistry};
use crate::driver::RunOutcome;
use parking_lot::RwLock;
use std::time::Duration;

/// The contribution surface of the platform — what a driver loop needs,
/// abstracted over the transport. [`SqalpelServer`] implements it
/// in-process; [`crate::wire::WireClient`] implements it over HTTP, so
/// [`crate::workers::run_worker_pool`] and every driver loop run
/// unchanged against either.
pub trait Platform: Send + Sync {
    /// Request a queued task matching the contributor's target.
    fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>>;

    /// Report the outcome of a handed-out task; returns the index of the
    /// accepted result record.
    fn report_result(
        &self,
        key: &ContributorKey,
        task_id: TaskId,
        outcome: RunOutcome,
    ) -> PlatformResult<usize>;

    /// Per-state task counts.
    fn queue_summary(&self) -> PlatformResult<QueueSummary>;

    /// The platform's metrics registry, for instrumented callers like
    /// the worker pool. Remote implementations (the wire client) return
    /// `None` — their server keeps the registry.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }
}

struct State {
    users: UserRegistry,
    catalogs: Catalogs,
    projects: Vec<Project>,
    queue: TaskQueue,
    results: ResultStore,
}

/// The platform server.
pub struct SqalpelServer {
    state: RwLock<State>,
    /// Sharded, so instrumentation never contends with the state lock.
    metrics: MetricsRegistry,
}

impl Default for SqalpelServer {
    fn default() -> Self {
        Self::new()
    }
}

impl SqalpelServer {
    /// A server with the built-in catalogs loaded.
    pub fn new() -> Self {
        SqalpelServer {
            state: RwLock::new(State {
                users: UserRegistry::new(),
                catalogs: Catalogs::bootstrap(),
                projects: Vec::new(),
                queue: TaskQueue::new(),
                results: ResultStore::new(),
            }),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The server's metrics registry (also served as `GET /v1/metrics`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    // ------------------------------------------------------------- users

    pub fn register_user(&self, nickname: &str, email: &str) -> PlatformResult<UserId> {
        self.state.write().users.register(nickname, email)
    }

    pub fn issue_key(&self, user: UserId) -> PlatformResult<ContributorKey> {
        self.state.write().users.issue_key(user)
    }

    // ----------------------------------------------------------- catalogs

    pub fn add_dbms(&self, entry: DbmsEntry) -> PlatformResult<()> {
        self.state.write().catalogs.add_dbms(entry)
    }

    pub fn add_host(&self, entry: HostEntry) -> PlatformResult<()> {
        self.state.write().catalogs.add_host(entry)
    }

    pub fn dbms_labels(&self) -> Vec<String> {
        self.state
            .read()
            .catalogs
            .dbms_entries()
            .iter()
            .map(|d| d.label())
            .collect()
    }

    // ----------------------------------------------------------- projects

    pub fn create_project(
        &self,
        owner: UserId,
        title: &str,
        synopsis: &str,
        visibility: Visibility,
    ) -> PlatformResult<ProjectId> {
        let mut st = self.state.write();
        st.users.get(owner)?;
        let id = ProjectId(st.projects.len() as u64 + 1);
        st.projects
            .push(Project::new(id, title, synopsis, owner, visibility));
        Ok(id)
    }

    fn with_project<T>(
        &self,
        id: ProjectId,
        f: impl FnOnce(&mut State, usize) -> PlatformResult<T>,
    ) -> PlatformResult<T> {
        let mut st = self.state.write();
        let idx = st
            .projects
            .iter()
            .position(|p| p.id == id)
            .ok_or(PlatformError::UnknownProject(id.0))?;
        f(&mut st, idx)
    }

    pub fn invite(&self, project: ProjectId, owner: UserId, user: UserId) -> PlatformResult<()> {
        self.with_project(project, |st, i| {
            st.users.get(user)?;
            st.projects[i].invite(owner, user)
        })
    }

    /// Declare the DBMS/host targets of the project; public projects are
    /// checked against the catalogs (§4.2's publication rule).
    pub fn set_targets(
        &self,
        project: ProjectId,
        actor: UserId,
        dbms_labels: Vec<String>,
        hosts: Vec<String>,
    ) -> PlatformResult<()> {
        self.with_project(project, |st, i| {
            st.projects[i].require(actor, Role::Owner)?;
            st.projects[i].dbms_labels = dbms_labels;
            st.projects[i].hosts = hosts;
            st.projects[i].check_publication(&st.catalogs)
        })
    }

    pub fn comment(&self, project: ProjectId, author: UserId, text: &str) -> PlatformResult<()> {
        self.with_project(project, |st, i| st.projects[i].comment(author, text))
    }

    /// Vendor notice-and-takedown (§4.3): results stop being served.
    pub fn take_down(&self, project: ProjectId) -> PlatformResult<()> {
        self.with_project(project, |st, i| {
            st.projects[i].taken_down = true;
            Ok(())
        })
    }

    /// The role a user holds on a project.
    pub fn role_of(&self, project: ProjectId, user: UserId) -> PlatformResult<Role> {
        let st = self.state.read();
        let p = st
            .projects
            .iter()
            .find(|p| p.id == project)
            .ok_or(PlatformError::UnknownProject(project.0))?;
        Ok(p.role_of(user))
    }

    // -------------------------------------------------------- experiments

    #[allow(clippy::too_many_arguments)]
    pub fn add_experiment(
        &self,
        project: ProjectId,
        actor: UserId,
        title: &str,
        baseline_sql: &str,
        grammar: Option<sqalpel_grammar::Grammar>,
        template_cap: usize,
        pool_cap: usize,
    ) -> PlatformResult<ExperimentId> {
        self.with_project(project, |st, i| {
            st.projects[i].add_experiment(actor, title, baseline_sql, grammar, template_cap, pool_cap)
        })
    }

    /// Seed the pool: baseline + `n_random` random-template queries.
    pub fn seed_pool(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        n_random: usize,
        seed: u64,
    ) -> PlatformResult<usize> {
        self.with_project(project, |st, i| {
            st.projects[i].require(actor, Role::Owner)?;
            let exp = st.projects[i].experiment_mut(experiment)?;
            exp.pool.seed_baseline()?;
            let mut rng = sqalpel_grammar::seeded_rng(seed);
            let added = exp.pool.add_random(n_random, &mut rng)?;
            Ok(added.len() + 1)
        })
    }

    /// Attach (or detach) a plan fingerprinter to an experiment's pool:
    /// from here on, morphed mutants whose canonical plan fingerprint the
    /// pool has already seen are pruned before they reach the task queue.
    pub fn set_pool_fingerprinter(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        f: Option<crate::pool::Fingerprinter>,
    ) -> PlatformResult<()> {
        self.with_project(project, |st, i| {
            st.projects[i].require(actor, Role::Owner)?;
            let exp = st.projects[i].experiment_mut(experiment)?;
            exp.pool.set_fingerprinter(f);
            Ok(())
        })
    }

    /// Apply morphing steps; `strategy: None` uses the weighted walk.
    pub fn morph_pool(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        strategy: Option<Strategy>,
        steps: usize,
        seed: u64,
    ) -> PlatformResult<Vec<QueryId>> {
        self.with_project(project, |st, i| {
            st.projects[i].require(actor, Role::Owner)?;
            let exp = st.projects[i].experiment_mut(experiment)?;
            let mut rng = sqalpel_grammar::seeded_rng(seed);
            let mut added = Vec::new();
            for _ in 0..steps {
                let id = match strategy {
                    Some(s) => exp.pool.morph(s, &mut rng)?,
                    None => exp.pool.morph_auto(&mut rng)?,
                };
                if let Some(id) = id {
                    added.push(id);
                }
            }
            Ok(added)
        })
    }

    /// Enqueue every pool query for every declared target combination.
    /// Returns the number of tasks created.
    pub fn enqueue_experiment(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
    ) -> PlatformResult<usize> {
        self.with_project(project, |st, i| {
            st.projects[i].require(actor, Role::Owner)?;
            let (entries, dbms_labels, hosts) = {
                let p = &st.projects[i];
                let exp = p.experiment(experiment)?;
                (
                    exp.pool
                        .entries()
                        .iter()
                        .map(|e| (e.id, e.sql.clone()))
                        .collect::<Vec<_>>(),
                    p.dbms_labels.clone(),
                    p.hosts.clone(),
                )
            };
            let mut n = 0;
            for (qid, sql) in &entries {
                for d in &dbms_labels {
                    for h in &hosts {
                        if st
                            .queue
                            .enqueue(project, experiment, *qid, sql.clone(), d.clone(), h.clone())
                            .is_some()
                        {
                            n += 1;
                        }
                    }
                }
            }
            Ok(n)
        })
    }

    // ------------------------------------------------------- contribution

    /// The driver's "request a task" call: hand out a queued task matching
    /// the contributor's target, restricted to projects where the key's
    /// owner is (at least) a contributor.
    ///
    /// The claim is **idempotent**: if this key already holds a running
    /// task for the target (the response to an earlier claim was lost in
    /// transit and the client retried), that same task is handed out
    /// again instead of a second one.
    pub fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>> {
        self.metrics.time("server.request_task_nanos", || {
            self.metrics.incr("server.request_task");
            let mut st = self.state.write();
            let user = st
                .users
                .resolve_key(key)
                .ok_or_else(|| PlatformError::AccessDenied("unknown contributor key".into()))?;
            if let Some(held) = st.queue.running_claim(key, dbms_label, host) {
                self.metrics.incr("server.request_task.rehandout");
                return Ok(Some(held.clone()));
            }
            // Only tasks for this exact (dbms, host) target are visited — the
            // queue serves them from its hand-out index.
            let candidate = st.queue.queued_for(dbms_label, host).into_iter().find(|id| {
                let t = st.queue.task(*id).expect("indexed task exists");
                st.projects
                    .iter()
                    .find(|p| p.id == t.project)
                    .is_some_and(|p| p.role_of(user) >= Role::Contributor && !p.taken_down)
            });
            match candidate {
                Some(id) => Ok(Some(st.queue.claim(id, key)?)),
                None => Ok(None),
            }
        })
    }

    /// The driver's "report back" call.
    ///
    /// Reports are **idempotent per (task, contributor)**: if this key
    /// already filed a record for the task (a retry after a lost
    /// response), the original record's index is returned and nothing is
    /// double-counted. A report for a task that was reaped and re-claimed
    /// by someone else is still refused.
    pub fn report_result(
        &self,
        key: &ContributorKey,
        task_id: TaskId,
        outcome: RunOutcome,
    ) -> PlatformResult<usize> {
        self.metrics.time("server.report_result_nanos", || {
            let mut st = self.state.write();
            // The idempotency check applies only when this key does NOT hold
            // the task: a running claim means this is a fresh report (e.g. the
            // task failed, was requeued and re-claimed by the same key), not a
            // retry of an accepted one.
            let held_by_key = matches!(
                &st.queue.task(task_id)?.state,
                TaskState::Running { contributor } if contributor == key
            );
            if !held_by_key {
                if let Some(existing) = st.results.index_of(task_id, &key.0) {
                    self.metrics.incr("server.report_result.duplicate");
                    return Ok(existing);
                }
            }
            st.queue.complete(task_id, key, outcome.error.clone())?;
            let task = st.queue.task(task_id)?.clone();
            let mut rec: ResultRecord = record(
                task_id,
                task.project,
                task.experiment,
                task.query,
                &task.dbms_label,
                &task.host,
                key,
                outcome.times_ms,
                outcome.rows,
                outcome.error,
            );
            rec.load_before = outcome.load_before;
            rec.load_after = outcome.load_after;
            rec.extras = outcome.extras;
            rec.fingerprint = outcome.fingerprint;
            rec.profile = outcome.profile;
            // Zone-map effectiveness across everything reported to this
            // server, visible at GET /v1/metrics.
            if let Some(profile) = &rec.profile {
                let (scanned, skipped) = profile.iter().fold((0, 0), |(a, b), op| {
                    (a + op.chunks_scanned, b + op.chunks_skipped)
                });
                if scanned > 0 {
                    self.metrics.add("scan.chunks_scanned", scanned);
                }
                if skipped > 0 {
                    self.metrics.add("scan.chunks_skipped", skipped);
                }
            }
            self.metrics.incr("server.report_result.accepted");
            Ok(st.results.push(rec))
        })
    }

    /// Reap stuck runs (moderator cron).
    pub fn reap_stuck(&self, timeout: Duration) -> Vec<TaskId> {
        self.state.write().queue.reap_stuck(timeout)
    }

    pub fn requeue(&self, task: TaskId) -> PlatformResult<()> {
        self.state.write().queue.requeue(task)
    }

    pub fn queue_summary(&self) -> QueueSummary {
        self.state.read().queue.summary()
    }

    // ------------------------------------------------------------ results

    /// Results of a project as seen by `viewer`: owners and contributors
    /// see everything, readers only non-hidden records, and taken-down
    /// projects serve nothing.
    pub fn results_for(
        &self,
        project: ProjectId,
        viewer: UserId,
    ) -> PlatformResult<Vec<ResultRecord>> {
        let st = self.state.read();
        let p = st
            .projects
            .iter()
            .find(|p| p.id == project)
            .ok_or(PlatformError::UnknownProject(project.0))?;
        let role = p.role_of(viewer);
        if role < Role::Reader {
            return Err(PlatformError::AccessDenied(format!(
                "project #{} is private",
                project.0
            )));
        }
        if p.taken_down {
            return Err(PlatformError::Publication(format!(
                "project #{} was taken down",
                project.0
            )));
        }
        Ok(st
            .results
            .all()
            .iter()
            .filter(|r| r.project == project.0)
            .filter(|r| role >= Role::Contributor || !r.hidden)
            .cloned()
            .collect())
    }

    pub fn hide_result(&self, project: ProjectId, actor: UserId, index: usize, hidden: bool) -> PlatformResult<()> {
        self.with_project(project, |st, i| {
            st.projects[i].require(actor, Role::Owner)?;
            if st.results.set_hidden(index, hidden) {
                Ok(())
            } else {
                Err(PlatformError::Invalid(format!("no result #{index}")))
            }
        })
    }

    pub fn export_csv(&self, project: ProjectId, viewer: UserId) -> PlatformResult<String> {
        let records = self.results_for(project, viewer)?;
        let mut store = ResultStore::new();
        for r in records {
            store.push(r);
        }
        Ok(store.to_csv())
    }

    /// Results of a project keyed off a contributor key instead of a user
    /// id — the wire client's view, where the key is the only credential.
    pub fn results_for_key(
        &self,
        project: ProjectId,
        key: &ContributorKey,
    ) -> PlatformResult<Vec<ResultRecord>> {
        let viewer = self
            .state
            .read()
            .users
            .resolve_key(key)
            .ok_or_else(|| PlatformError::AccessDenied("unknown contributor key".into()))?;
        self.results_for(project, viewer)
    }

    /// Read-only access to a project for report rendering.
    pub fn with_project_view<T>(
        &self,
        project: ProjectId,
        viewer: UserId,
        f: impl FnOnce(&Project) -> T,
    ) -> PlatformResult<T> {
        let st = self.state.read();
        let p = st
            .projects
            .iter()
            .find(|p| p.id == project)
            .ok_or(PlatformError::UnknownProject(project.0))?;
        if p.role_of(viewer) < Role::Reader {
            return Err(PlatformError::AccessDenied(format!(
                "project #{} is private",
                project.0
            )));
        }
        Ok(f(p))
    }
}

impl Platform for SqalpelServer {
    fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>> {
        SqalpelServer::request_task(self, key, dbms_label, host)
    }

    fn report_result(
        &self,
        key: &ContributorKey,
        task_id: TaskId,
        outcome: RunOutcome,
    ) -> PlatformResult<usize> {
        SqalpelServer::report_result(self, key, task_id, outcome)
    }

    fn queue_summary(&self) -> PlatformResult<QueueSummary> {
        Ok(SqalpelServer::queue_summary(self))
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(SqalpelServer::metrics(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, EngineConnector, ExperimentDriver};
    use sqalpel_engine::{Database, RowStore};
    use std::sync::Arc;

    fn setup() -> (SqalpelServer, UserId, UserId, ProjectId, ExperimentId) {
        let server = SqalpelServer::new();
        let owner = server.register_user("mlk", "mlk@cwi.nl").unwrap();
        let contrib = server.register_user("pk", "pk@monetdb.com").unwrap();
        let project = server
            .create_project(owner, "nation-study", "TPC-H nation micro-benchmark", Visibility::Public)
            .unwrap();
        server
            .set_targets(
                project,
                owner,
                vec!["rowstore-2.0".into()],
                vec!["bench-server".into()],
            )
            .unwrap();
        server.invite(project, owner, contrib).unwrap();
        let exp = server
            .add_experiment(
                project,
                owner,
                "nation filter",
                "select n_name, n_regionkey from nation where n_regionkey = 1 and n_name = 'BRAZIL'",
                None,
                1000,
                100,
            )
            .unwrap();
        server.seed_pool(project, exp, owner, 5, 42).unwrap();
        (server, owner, contrib, project, exp)
    }

    #[test]
    fn full_contribution_loop() {
        let (server, _owner, contrib, project, exp) = setup();
        let n = server.enqueue_experiment(project, exp, _owner).unwrap();
        assert!(n >= 2);
        let key = server.issue_key(contrib).unwrap();

        let db = Arc::new(Database::tpch(0.001, 42));
        let driver = ExperimentDriver::new(
            EngineConnector::new(Arc::new(RowStore::new(db))),
            DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 3").unwrap(),
        );
        let mut done = 0;
        while let Some(task) = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
        {
            let outcome = driver.run(&task.sql);
            server.report_result(&key, task.id, outcome).unwrap();
            done += 1;
        }
        assert_eq!(done, n);
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running, s.timed_out), (0, 0, 0));
        assert_eq!(s.finished + s.failed, n);
        let results = server.results_for(project, contrib).unwrap();
        assert_eq!(results.len(), n);
        assert!(results.iter().all(|r| r.times_ms.len() == 3 || r.error.is_some()));
    }

    #[test]
    fn strangers_cannot_request_tasks() {
        let (server, owner, _c, project, exp) = setup();
        server.enqueue_experiment(project, exp, owner).unwrap();
        let stranger = server.register_user("eve", "eve@x.io").unwrap();
        let key = server.issue_key(stranger).unwrap();
        // Reader role is not enough to contribute.
        assert!(server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .is_none());
        // Unknown keys are rejected outright.
        assert!(server
            .request_task(&ContributorKey("ck_fake".into()), "rowstore-2.0", "bench-server")
            .is_err());
    }

    #[test]
    fn private_projects_invisible_to_strangers() {
        let server = SqalpelServer::new();
        let owner = server.register_user("mlk", "a@b.io").unwrap();
        let stranger = server.register_user("eve", "e@x.io").unwrap();
        let project = server
            .create_project(owner, "secret", "private study", Visibility::Private)
            .unwrap();
        assert!(server.results_for(project, stranger).is_err());
        assert!(server
            .with_project_view(project, stranger, |p| p.title.clone())
            .is_err());
        assert!(server
            .with_project_view(project, owner, |p| p.title.clone())
            .is_ok());
    }

    #[test]
    fn hidden_results_invisible_to_readers() {
        let (server, owner, contrib, project, exp) = setup();
        server.enqueue_experiment(project, exp, owner).unwrap();
        let key = server.issue_key(contrib).unwrap();
        let db = Arc::new(Database::tpch(0.001, 42));
        let driver = ExperimentDriver::new(
            EngineConnector::new(Arc::new(RowStore::new(db))),
            DriverConfig::parse("dbms = rowstore-2.0").unwrap(),
        );
        let task = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .unwrap();
        let idx = server
            .report_result(&key, task.id, driver.run(&task.sql))
            .unwrap();
        server.hide_result(project, owner, idx, true).unwrap();

        let reader = server.register_user("reader", "r@x.io").unwrap();
        assert_eq!(server.results_for(project, reader).unwrap().len(), 0);
        // Contributors still see it.
        assert_eq!(server.results_for(project, contrib).unwrap().len(), 1);
    }

    #[test]
    fn takedown_stops_serving_results() {
        let (server, owner, _c, project, _exp) = setup();
        server.take_down(project).unwrap();
        assert!(matches!(
            server.results_for(project, owner),
            Err(PlatformError::Publication(_))
        ));
    }

    #[test]
    fn public_project_cannot_target_private_dbms() {
        let (server, owner, _c, project, _exp) = setup();
        server
            .add_dbms(DbmsEntry {
                name: "secretdb".into(),
                version: "9".into(),
                vendor: "acme".into(),
                settings: Default::default(),
                visibility: Visibility::Private,
            })
            .unwrap();
        let err = server
            .set_targets(project, owner, vec!["secretdb-9".into()], vec!["bench-server".into()])
            .unwrap_err();
        assert!(matches!(err, PlatformError::Publication(_)));
    }

    #[test]
    fn morphing_extends_pool() {
        let (server, owner, _c, project, exp) = setup();
        let added = server
            .morph_pool(project, exp, owner, None, 20, 7)
            .unwrap();
        assert!(!added.is_empty());
        let n = server
            .with_project_view(project, owner, |p| {
                p.experiment(exp).unwrap().pool.len()
            })
            .unwrap();
        assert!(n >= 6 + added.len());
    }

    #[test]
    fn concurrent_contributors_drain_the_queue() {
        let (server, owner, contrib, project, exp) = setup();
        server.morph_pool(project, exp, owner, None, 10, 3).unwrap();
        let total = server.enqueue_experiment(project, exp, owner).unwrap();
        let db = Arc::new(Database::tpch(0.001, 42));

        let workers: Vec<_> = (0..4)
            .map(|_| {
                let key = server.issue_key(contrib).unwrap();
                let driver = ExperimentDriver::new(
                    EngineConnector::new(Arc::new(RowStore::new(Arc::clone(&db)))),
                    DriverConfig::parse(
                        "dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 2",
                    )
                    .unwrap(),
                );
                crate::workers::Worker::new(key, driver)
            })
            .collect();
        let report = crate::workers::run_worker_pool(&server, workers);

        assert_eq!(report.completed(), total);
        assert_eq!(report.rejected(), 0);
        assert!(report.workers.iter().all(|w| w.wall <= report.wall));
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running), (0, 0));
    }

    #[test]
    fn retried_claims_and_reports_are_idempotent() {
        let (server, owner, contrib, _project, exp) = setup();
        let n = server.enqueue_experiment(_project, exp, owner).unwrap();
        assert!(n >= 2);
        let key = server.issue_key(contrib).unwrap();

        // A claim whose response was "lost": the retry hands out the very
        // same task instead of a second one.
        let first = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .unwrap();
        let retry = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .unwrap();
        assert_eq!(retry.id, first.id);
        assert_eq!(server.queue_summary().running, 1);

        // A report whose response was "lost": the retry returns the same
        // record index and files nothing new.
        let db = Arc::new(Database::tpch(0.001, 42));
        let driver = ExperimentDriver::new(
            EngineConnector::new(Arc::new(RowStore::new(db))),
            DriverConfig::parse("dbms = rowstore-2.0\nrepetitions = 2").unwrap(),
        );
        let outcome = driver.run(&first.sql);
        let idx = server.report_result(&key, first.id, outcome.clone()).unwrap();
        let idx_retry = server.report_result(&key, first.id, outcome).unwrap();
        assert_eq!(idx, idx_retry);
        let results = server.results_for(_project, contrib).unwrap();
        assert_eq!(results.len(), 1, "no double-counted report");

        // A different key still cannot touch the completed task.
        let other = server.issue_key(contrib).unwrap();
        let late = RunOutcome {
            times_ms: vec![1.0],
            rows: 0,
            error: None,
            load_before: Default::default(),
            load_after: Default::default(),
            extras: serde_json::Value::Null,
            fingerprint: None,
            profile: None,
        };
        assert!(server.report_result(&other, first.id, late).is_err());
    }
}
