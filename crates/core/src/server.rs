//! The in-process sqalpel server — the SaaS façade of §5.1 without HTTP.
//!
//! "sqalpel is built as a client-server, web-based software platform for
//! developing, managing, and sharing experimental results." This module
//! provides the same operations as the web endpoints: user administration,
//! the catalogs, project/experiment management, pool extension, the task
//! hand-out loop used by the experiment driver, result collection and
//! moderation.
//!
//! State is sharded per project ([`ShardedState`]): each project's queue,
//! results and membership live behind their own lock, users and catalogs
//! in a small global shard, so contributors working distinct projects
//! never contend. Three orthogonal concerns wrap every mutation:
//!
//! * **Durability** — a server opened with [`SqalpelServer::open`] logs a
//!   [`WalRecord`] for each mutation *before* the owning lock is
//!   released, takes periodic snapshots, and recovers snapshot + WAL
//!   tail on the next open. `new()` stays purely in-memory.
//! * **Admission** — [`AdmissionControl`] bounds per-user in-flight
//!   hand-outs and per-project queue depth; violations surface as
//!   [`PlatformError::Throttled`].
//! * **Fairness** — `request_task` sweeps shards round-robin from a
//!   rotating cursor, so one project with a deep queue cannot starve the
//!   hand-out of the others.
//!
//! Lock order everywhere: global shard → shard map → project shard →
//! WAL. The admission mutex is leaf-level (never held across another
//! acquisition).

use crate::admission::{AdmissionConfig, AdmissionControl};
use crate::catalog::{DbmsEntry, HostEntry, Visibility};
use crate::driver::RunOutcome;
use crate::durability::{Durability, WalRecord};
use crate::error::{PlatformError, PlatformResult};
use crate::metrics::MetricsRegistry;
use crate::pool::{PoolEntry, QueryId, Strategy};
use crate::project::{ExperimentId, Project, ProjectId, Role};
use crate::push::{LocalWaiter, Notification, PushHub, PushWaiter};
use crate::queue::{QueueSummary, Task, TaskId, TaskState};
use crate::results::{record, ResultRecord, ResultStore};
use crate::shard::{ProjectShard, ShardedState};
use crate::user::{ContributorKey, UserId};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The contribution surface of the platform — what a driver loop needs,
/// abstracted over the transport. [`SqalpelServer`] implements it
/// in-process; [`crate::wire::WireClient`] implements it over HTTP, so
/// [`crate::workers::run_worker_pool`] and every driver loop run
/// unchanged against either.
pub trait Platform: Send + Sync {
    /// Request a queued task matching the contributor's target.
    fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>>;

    /// Report the outcome of a handed-out task; returns the index of the
    /// accepted result record.
    fn report_result(
        &self,
        key: &ContributorKey,
        task_id: TaskId,
        outcome: RunOutcome,
    ) -> PlatformResult<usize>;

    /// Per-state task counts.
    fn queue_summary(&self) -> PlatformResult<QueueSummary>;

    /// The platform's metrics registry, for instrumented callers like
    /// the worker pool. Remote implementations (the wire client) return
    /// `None` — their server keeps the registry.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }

    /// Open a push-notification channel under this contributor key, so a
    /// worker can park on "work is ready" instead of empty-polling.
    /// `None` means the platform (or transport) does not support push —
    /// callers fall back to polling with backoff.
    fn subscribe_push(&self, _key: &ContributorKey) -> Option<Box<dyn PushWaiter>> {
        None
    }
}

/// The platform server.
pub struct SqalpelServer {
    state: ShardedState,
    admission: AdmissionControl,
    /// `Some` when opened on a state directory; `new()` servers are
    /// purely in-memory.
    durability: Option<Durability>,
    /// Take a snapshot (and truncate the WAL) every this many logged
    /// records; `None` leaves snapshots to explicit `snapshot_now` calls.
    snapshot_every: Option<u64>,
    ops_since_snapshot: AtomicU64,
    snapshotting: AtomicBool,
    /// Whether `open` found an empty state directory (callers bootstrap
    /// demo data only then).
    fresh: bool,
    /// Sharded, so instrumentation never contends with the state locks.
    metrics: MetricsRegistry,
    /// Fan-out hub for server-push notifications (`QueueReady`,
    /// `ExperimentFinished`). Shared with the wire server, which drains
    /// subscriptions into v2 frames.
    push: Arc<PushHub>,
}

impl Default for SqalpelServer {
    fn default() -> Self {
        Self::new()
    }
}

impl SqalpelServer {
    /// A purely in-memory server with the built-in catalogs loaded.
    pub fn new() -> Self {
        Self::with_admission(AdmissionConfig::default())
    }

    /// An in-memory server with explicit admission bounds.
    pub fn with_admission(config: AdmissionConfig) -> Self {
        SqalpelServer {
            state: ShardedState::new(),
            admission: AdmissionControl::new(config),
            durability: None,
            snapshot_every: None,
            ops_since_snapshot: AtomicU64::new(0),
            snapshotting: AtomicBool::new(false),
            fresh: true,
            metrics: MetricsRegistry::new(),
            push: Arc::new(PushHub::new()),
        }
    }

    /// Open a durable server on a state directory: recover the latest
    /// snapshot plus the WAL tail, then log every further mutation.
    pub fn open(dir: &Path) -> io::Result<Self> {
        Self::open_with(dir, AdmissionConfig::default(), None)
    }

    /// [`SqalpelServer::open`] with explicit admission bounds and an
    /// automatic snapshot interval (in logged records).
    pub fn open_with(
        dir: &Path,
        config: AdmissionConfig,
        snapshot_every: Option<u64>,
    ) -> io::Result<Self> {
        let started = Instant::now();
        let (durability, recovered) = Durability::open(dir)?;
        let metrics = MetricsRegistry::new();
        metrics.add("wal.replayed_records", recovered.replayed_records);
        metrics.add("wal.skipped_records", recovered.skipped_records);
        metrics.add("wal.recovery_nanos", started.elapsed().as_nanos() as u64);

        // Rebuild in-flight admission state from the recovered queues:
        // every Running task still counts against its holder's bound.
        let admission = AdmissionControl::new(config);
        for shard in &recovered.shards {
            for task in shard.queue.tasks() {
                if let TaskState::Running { contributor } = &task.state {
                    if let Some(user) = recovered.global.users.resolve_key(contributor) {
                        admission.restore(contributor, user, task.id);
                    }
                }
            }
        }
        Ok(SqalpelServer {
            fresh: recovered.fresh,
            state: ShardedState::from_parts(recovered.global, recovered.shards),
            admission,
            durability: Some(durability),
            snapshot_every,
            ops_since_snapshot: AtomicU64::new(0),
            snapshotting: AtomicBool::new(false),
            metrics,
            push: Arc::new(PushHub::new()),
        })
    }

    /// Whether `open` found an empty state directory (no snapshot, no
    /// WAL) — callers seed demo data only on a fresh boot.
    pub fn recovered_fresh(&self) -> bool {
        self.fresh
    }

    /// The server's metrics registry (also served as `GET /v1/metrics`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The admission controller (read-only handles for tests/tools).
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// The push-notification hub. The wire server subscribes contributor
    /// connections here and drains their pending notifications into v2
    /// push frames.
    pub fn push_hub(&self) -> &Arc<PushHub> {
        &self.push
    }

    // --------------------------------------------------------- durability

    /// Append one record to the WAL (no-op on in-memory servers). Called
    /// while holding the lock that guards the mutated state, so WAL
    /// order equals mutation order per lock domain.
    fn log(&self, record: &WalRecord) -> PlatformResult<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let bytes = d
            .log(record)
            .map_err(|e| PlatformError::Invalid(format!("durability: {e}")))?;
        self.metrics.incr("wal.records");
        self.metrics.add("wal.bytes", bytes);
        self.ops_since_snapshot.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot the full state and truncate the WAL behind it. Takes
    /// read locks on the global shard, the shard map and every project
    /// shard (in lock order), which excludes all writers — the cut is
    /// consistent. Holding the *map* lock for the duration matters: a
    /// concurrent `create_project` (global read + map write) could
    /// otherwise install a shard and log records for it between the
    /// shard-list read and the WAL truncation, and the truncation would
    /// silently drop the acknowledged project.
    pub fn snapshot_now(&self) -> PlatformResult<u64> {
        let d = self.durability.as_ref().ok_or_else(|| {
            PlatformError::Invalid("server has no state directory".into())
        })?;
        let global = self.state.global.read();
        let lsn = self
            .state
            .with_shards_locked(|shards| {
                let guards: Vec<_> = shards.iter().map(|s| s.read()).collect();
                let refs: Vec<&ProjectShard> = guards.iter().map(|g| &**g).collect();
                d.snapshot(&global, &refs)
            })
            .map_err(|e| PlatformError::Invalid(format!("durability: {e}")))?;
        self.metrics.incr("wal.snapshots");
        self.ops_since_snapshot.store(0, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Fsync the WAL (graceful shutdown; per-record appends only flush
    /// to the OS).
    pub fn flush_wal(&self) -> io::Result<()> {
        match &self.durability {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Take the automatic snapshot if the interval has elapsed. Must be
    /// called with **no** state locks held.
    fn maybe_snapshot(&self) {
        let Some(every) = self.snapshot_every else {
            return;
        };
        if self.durability.is_none() || self.ops_since_snapshot.load(Ordering::Relaxed) < every {
            return;
        }
        if self
            .snapshotting
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        if let Err(e) = self.snapshot_now() {
            self.metrics.incr("wal.snapshot_errors");
            let _ = e;
        }
        self.snapshotting.store(false, Ordering::Release);
    }

    // ------------------------------------------------------------- users

    pub fn register_user(&self, nickname: &str, email: &str) -> PlatformResult<UserId> {
        let mut g = self.state.global.write();
        let id = g.users.register(nickname, email)?;
        self.log(&WalRecord::UserRegistered {
            id,
            nickname: nickname.to_string(),
            email: email.to_string(),
        })?;
        Ok(id)
    }

    pub fn issue_key(&self, user: UserId) -> PlatformResult<ContributorKey> {
        let mut g = self.state.global.write();
        let key = g.users.issue_key(user)?;
        self.log(&WalRecord::KeyIssued {
            user,
            key: key.clone(),
            counter: g.users.key_counter(),
        })?;
        Ok(key)
    }

    // ----------------------------------------------------------- catalogs

    pub fn add_dbms(&self, entry: DbmsEntry) -> PlatformResult<()> {
        let mut g = self.state.global.write();
        g.catalogs.add_dbms(entry.clone())?;
        self.log(&WalRecord::DbmsAdded { entry })
    }

    pub fn add_host(&self, entry: HostEntry) -> PlatformResult<()> {
        let mut g = self.state.global.write();
        g.catalogs.add_host(entry.clone())?;
        self.log(&WalRecord::HostAdded { entry })
    }

    pub fn dbms_labels(&self) -> Vec<String> {
        self.state
            .global
            .read()
            .catalogs
            .dbms_entries()
            .iter()
            .map(|d| d.label())
            .collect()
    }

    // ----------------------------------------------------------- projects

    pub fn create_project(
        &self,
        owner: UserId,
        title: &str,
        synopsis: &str,
        visibility: Visibility,
    ) -> PlatformResult<ProjectId> {
        self.state.global.read().users.get(owner)?;
        // The log callback runs under the shard-map write lock, so
        // project creations reach the WAL in id order.
        self.state.add_project_with(
            |id| Project::new(id, title, synopsis, owner, visibility),
            |p| {
                self.log(&WalRecord::ProjectCreated {
                    id: p.id,
                    owner,
                    title: title.to_string(),
                    synopsis: synopsis.to_string(),
                    visibility,
                })
            },
        )
    }

    fn with_shard<T>(
        &self,
        id: ProjectId,
        f: impl FnOnce(&mut ProjectShard) -> PlatformResult<T>,
    ) -> PlatformResult<T> {
        let shard = self.state.shard(id)?;
        let mut s = shard.write();
        f(&mut s)
    }

    pub fn invite(&self, project: ProjectId, owner: UserId, user: UserId) -> PlatformResult<()> {
        let shard = self.state.shard(project)?;
        // Lock order: global before shard.
        let g = self.state.global.read();
        g.users.get(user)?;
        let mut s = shard.write();
        s.project.invite(owner, user)?;
        self.log(&WalRecord::Invited { project, user })
    }

    /// Declare the DBMS/host targets of the project; public projects are
    /// checked against the catalogs (§4.2's publication rule). A failed
    /// check leaves the previous targets in place.
    pub fn set_targets(
        &self,
        project: ProjectId,
        actor: UserId,
        dbms_labels: Vec<String>,
        hosts: Vec<String>,
    ) -> PlatformResult<()> {
        let shard = self.state.shard(project)?;
        let g = self.state.global.read();
        let mut s = shard.write();
        s.project.require(actor, Role::Owner)?;
        let old = (
            std::mem::replace(&mut s.project.dbms_labels, dbms_labels.clone()),
            std::mem::replace(&mut s.project.hosts, hosts.clone()),
        );
        if let Err(e) = s.project.check_publication(&g.catalogs) {
            (s.project.dbms_labels, s.project.hosts) = old;
            return Err(e);
        }
        self.log(&WalRecord::TargetsSet {
            project,
            dbms_labels,
            hosts,
        })
    }

    pub fn comment(&self, project: ProjectId, author: UserId, text: &str) -> PlatformResult<()> {
        self.with_shard(project, |s| {
            s.project.comment(author, text)?;
            self.log(&WalRecord::CommentAdded {
                project,
                author,
                text: text.to_string(),
            })
        })
    }

    /// Vendor notice-and-takedown (§4.3): results stop being served.
    pub fn take_down(&self, project: ProjectId) -> PlatformResult<()> {
        self.with_shard(project, |s| {
            s.project.taken_down = true;
            self.log(&WalRecord::TakenDown { project })
        })
    }

    /// The role a user holds on a project.
    pub fn role_of(&self, project: ProjectId, user: UserId) -> PlatformResult<Role> {
        Ok(self.state.shard(project)?.read().project.role_of(user))
    }

    // -------------------------------------------------------- experiments

    #[allow(clippy::too_many_arguments)]
    pub fn add_experiment(
        &self,
        project: ProjectId,
        actor: UserId,
        title: &str,
        baseline_sql: &str,
        grammar: Option<sqalpel_grammar::Grammar>,
        template_cap: usize,
        pool_cap: usize,
    ) -> PlatformResult<ExperimentId> {
        self.with_shard(project, |s| {
            let id = s
                .project
                .add_experiment(actor, title, baseline_sql, grammar, template_cap, pool_cap)?;
            let exp = s.project.experiment(id)?;
            self.log(&WalRecord::ExperimentAdded {
                project,
                id,
                title: title.to_string(),
                baseline_sql: baseline_sql.to_string(),
                // The *resolved* grammar (hand-written or auto-converted),
                // rendered back to the DSL for replay.
                grammar: exp.pool.grammar().to_string(),
                template_cap: exp.pool.template_cap(),
                pool_cap: exp.pool.pool_cap(),
                dialect: exp.pool.dialect().map(str::to_string),
            })?;
            Ok(id)
        })
    }

    /// Seed the pool: baseline + `n_random` random-template queries.
    pub fn seed_pool(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        n_random: usize,
        seed: u64,
    ) -> PlatformResult<usize> {
        self.with_shard(project, |s| {
            s.project.require(actor, Role::Owner)?;
            let exp = s.project.experiment_mut(experiment)?;
            let before = exp.pool.entries().len();
            exp.pool.seed_baseline()?;
            let mut rng = sqalpel_grammar::seeded_rng(seed);
            let added = exp.pool.add_random(n_random, &mut rng)?;
            let count = added.len() + 1;
            let new_entries: Vec<PoolEntry> = exp.pool.entries()[before..].to_vec();
            if !new_entries.is_empty() {
                self.log(&WalRecord::PoolExtended {
                    project,
                    experiment,
                    entries: new_entries,
                })?;
            }
            Ok(count)
        })
    }

    /// Attach (or detach) a plan fingerprinter to an experiment's pool:
    /// from here on, morphed mutants whose canonical plan fingerprint the
    /// pool has already seen are pruned before they reach the task queue.
    ///
    /// The fingerprinter is an in-process closure and is **not** logged
    /// or restored: after recovery it must be re-attached. The dedup sets
    /// it fed are rebuilt from the persisted entries, so already-pruned
    /// duplicates stay pruned.
    pub fn set_pool_fingerprinter(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        f: Option<crate::pool::Fingerprinter>,
    ) -> PlatformResult<()> {
        self.with_shard(project, |s| {
            s.project.require(actor, Role::Owner)?;
            let exp = s.project.experiment_mut(experiment)?;
            exp.pool.set_fingerprinter(f);
            Ok(())
        })
    }

    /// Apply morphing steps; `strategy: None` uses the weighted walk.
    pub fn morph_pool(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        strategy: Option<Strategy>,
        steps: usize,
        seed: u64,
    ) -> PlatformResult<Vec<QueryId>> {
        self.with_shard(project, |s| {
            s.project.require(actor, Role::Owner)?;
            let exp = s.project.experiment_mut(experiment)?;
            let before = exp.pool.entries().len();
            let mut rng = sqalpel_grammar::seeded_rng(seed);
            let mut added = Vec::new();
            for _ in 0..steps {
                let id = match strategy {
                    Some(st) => exp.pool.morph(st, &mut rng)?,
                    None => exp.pool.morph_auto(&mut rng)?,
                };
                if let Some(id) = id {
                    added.push(id);
                }
            }
            // Log the physical entries (instantiated SQL), not the walk
            // that found them — replay needs no RNG.
            let new_entries: Vec<PoolEntry> = exp.pool.entries()[before..].to_vec();
            if !new_entries.is_empty() {
                self.log(&WalRecord::PoolExtended {
                    project,
                    experiment,
                    entries: new_entries,
                })?;
            }
            Ok(added)
        })
    }

    /// Enqueue every pool query for every declared target combination.
    /// Returns the number of tasks created. Enqueueing past the
    /// per-project quota is refused with `Throttled`.
    pub fn enqueue_experiment(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
    ) -> PlatformResult<usize> {
        let n = self.enqueue_experiment_locked(project, experiment, actor)?;
        // Notify outside the shard lock: a parked worker woken here will
        // immediately call request_task, which takes the same lock.
        if n > 0 {
            self.push.notify(&Notification::QueueReady { project });
        }
        Ok(n)
    }

    fn enqueue_experiment_locked(
        &self,
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
    ) -> PlatformResult<usize> {
        self.with_shard(project, |s| {
            s.project.require(actor, Role::Owner)?;
            let (entries, dbms_labels, hosts) = {
                let exp = s.project.experiment(experiment)?;
                (
                    exp.pool
                        .entries()
                        .iter()
                        .map(|e| (e.id, e.sql.clone()))
                        .collect::<Vec<_>>(),
                    s.project.dbms_labels.clone(),
                    s.project.hosts.clone(),
                )
            };
            // Quota check against the upper bound (dedup may admit
            // fewer): refuse before mutating anything.
            let sum = s.queue.summary();
            let adding = entries.len() * dbms_labels.len() * hosts.len();
            if let Err(e) = self
                .admission
                .check_quota(sum.queued + sum.running, adding)
            {
                self.metrics.incr("admission.throttled");
                return Err(e);
            }
            let mut created = Vec::new();
            for (qid, sql) in &entries {
                for d in &dbms_labels {
                    for h in &hosts {
                        if let Some(id) = s.queue.enqueue(
                            project,
                            experiment,
                            *qid,
                            sql.clone(),
                            d.clone(),
                            h.clone(),
                        ) {
                            created.push(s.queue.task(id).expect("just enqueued").clone());
                        }
                    }
                }
            }
            let n = created.len();
            if n > 0 {
                self.log(&WalRecord::TasksEnqueued {
                    project,
                    tasks: created,
                })?;
            }
            Ok(n)
        })
    }

    // ------------------------------------------------------- contribution

    /// The driver's "request a task" call: hand out a queued task matching
    /// the contributor's target, restricted to projects where the key's
    /// owner is (at least) a contributor.
    ///
    /// The claim is **idempotent**: if this key already holds a running
    /// task for the target (the response to an earlier claim was lost in
    /// transit and the client retried), that same task is handed out
    /// again instead of a second one.
    ///
    /// Hand-out is **fair across projects**: the sweep starts from a
    /// rotating cursor, so each call begins at a different shard.
    pub fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>> {
        self.request_task_claimed(key, dbms_label, host, None)
    }

    /// [`request_task`](Self::request_task) with an explicit claim nonce.
    ///
    /// The nonce disambiguates *which* lost claim a retry resumes: with
    /// `claim: None` the key gets any task it already holds for the
    /// target (the legacy idempotent rule — one outstanding claim per
    /// target). With `claim: Some(n)` only a held task handed out under
    /// nonce `n` (or under no nonce, e.g. after recovery) is re-handed
    /// out; otherwise the call checks out a *fresh* task, which is what
    /// lets a bulk client hold many tasks of the same target at once.
    pub fn request_task_claimed(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
        claim: Option<u64>,
    ) -> PlatformResult<Option<Task>> {
        let out = self.metrics.time("server.request_task_nanos", || {
            self.metrics.incr("server.request_task");
            let user = self
                .state
                .global
                .read()
                .users
                .resolve_key(key)
                .ok_or_else(|| PlatformError::AccessDenied("unknown contributor key".into()))?;
            // Idempotent re-hand-out of a claim whose response was lost.
            for (id, held_claim) in self.admission.held_with(key) {
                if let Some(n) = claim {
                    if held_claim.is_some() && held_claim != Some(n) {
                        continue;
                    }
                }
                let Ok(shard) = self.state.shard_of_task(id) else {
                    continue;
                };
                let s = shard.read();
                if let Ok(t) = s.queue.task(id) {
                    let held = matches!(
                        &t.state,
                        TaskState::Running { contributor } if contributor == key
                    );
                    if held && t.dbms_label == dbms_label && t.host == host {
                        self.metrics.incr("server.request_task.rehandout");
                        return Ok(Some(t.clone()));
                    }
                }
            }
            // Reserve the in-flight slot before touching any shard, so
            // the bound holds even with concurrent sweeps.
            if let Err(e) = self.admission.try_reserve(user) {
                self.metrics.incr("admission.throttled");
                return Err(e);
            }
            self.metrics.incr("admission.reserved");
            let shards = self.state.all_shards();
            if !shards.is_empty() {
                let start = self.state.next_cursor() % shards.len();
                for i in 0..shards.len() {
                    let shard = &shards[(start + i) % shards.len()];
                    let mut s = shard.write();
                    if s.project.role_of(user) < Role::Contributor || s.project.taken_down {
                        continue;
                    }
                    if let Some(task) = s.queue.checkout(key, dbms_label, host) {
                        if let Err(e) = self.log(&WalRecord::TaskClaimed {
                            task: task.id,
                            key: key.clone(),
                        }) {
                            // The claim never became durable: undo it so
                            // the task is immediately claimable again
                            // instead of stranded Running with no holder.
                            s.queue
                                .unclaim(task.id, key)
                                .expect("just checked out under this lock");
                            self.admission.cancel(user);
                            return Err(e);
                        }
                        self.admission.confirm(key, user, task.id, claim);
                        self.metrics.incr("shard.handouts");
                        return Ok(Some(task));
                    }
                }
            }
            self.admission.cancel(user);
            // Push-subscribed workers park on notifications and only poll
            // when woken, so their misses are raced hand-outs, not the
            // busy-wait `queue.empty_polls` measures.
            if self.push.is_subscribed(&key.0) {
                self.metrics.incr("queue.parked_polls");
            } else {
                self.metrics.incr("queue.empty_polls");
            }
            Ok(None)
        });
        self.maybe_snapshot();
        out
    }

    /// The driver's "report back" call.
    ///
    /// Reports are **idempotent per (task, contributor)**: if this key
    /// already filed a record for the task (a retry after a lost
    /// response), the original record's index is returned and nothing is
    /// double-counted. A report for a task that was reaped and re-claimed
    /// by someone else is still refused.
    pub fn report_result(
        &self,
        key: &ContributorKey,
        task_id: TaskId,
        outcome: RunOutcome,
    ) -> PlatformResult<usize> {
        let out = self.metrics.time("server.report_result_nanos", || {
            let shard = self.state.shard_of_task(task_id)?;
            let mut s = shard.write();
            let task = s.queue.task(task_id)?.clone();
            // The idempotency check applies only when this key does NOT hold
            // the task: a running claim means this is a fresh report (e.g. the
            // task failed, was requeued and re-claimed by the same key), not a
            // retry of an accepted one.
            let held_by_key = matches!(
                &task.state,
                TaskState::Running { contributor } if contributor == key
            );
            if !held_by_key {
                if let Some(existing) = s.results.index_of(task_id, &key.0) {
                    self.metrics.incr("server.report_result.duplicate");
                    return Ok(existing);
                }
                // Refused up front — the same typed errors `queue.complete`
                // would raise — so nothing is logged or mutated for a
                // report that cannot be accepted.
                return Err(match &task.state {
                    TaskState::Running { .. } => PlatformError::AccessDenied(format!(
                        "task #{} belongs to another contributor",
                        task_id.0
                    )),
                    other => PlatformError::Invalid(format!(
                        "task #{} is not running (state {other:?})",
                        task_id.0
                    )),
                });
            }
            let error = outcome.error.clone();
            let mut rec: ResultRecord = record(
                task_id,
                task.project,
                task.experiment,
                task.query,
                &task.dbms_label,
                &task.host,
                key,
                outcome.times_ms,
                outcome.rows,
                outcome.error,
            );
            rec.load_before = outcome.load_before;
            rec.load_after = outcome.load_after;
            rec.extras = outcome.extras;
            rec.fingerprint = outcome.fingerprint;
            rec.profile = outcome.profile;
            // Zone-map effectiveness across everything reported to this
            // server, visible at GET /v1/metrics.
            if let Some(profile) = &rec.profile {
                let (scanned, skipped) = profile.iter().fold((0, 0), |(a, b), op| {
                    (a + op.chunks_scanned, b + op.chunks_skipped)
                });
                if scanned > 0 {
                    self.metrics.add("scan.chunks_scanned", scanned);
                }
                if skipped > 0 {
                    self.metrics.add("scan.chunks_skipped", skipped);
                }
            }
            // One combined record: replay applies the queue completion
            // and the stored result atomically. Logged *before* the queue
            // mutation: if the append fails, the task stays Running and
            // the admission slot stays held, so the contributor's retry
            // can complete it once the log is writable again — in-memory,
            // on-disk and admission state never diverge.
            self.log(&WalRecord::ReportAccepted {
                task: task_id,
                key: key.clone(),
                error: error.clone(),
                record: rec.clone(),
            })?;
            s.queue
                .complete(task_id, key, error)
                .expect("validated above under this lock: task is held by this key");
            let idx = s.results.push(rec);
            let drained = experiment_drained(&s, task.experiment);
            drop(s);
            if self.admission.release(key, task_id) {
                self.metrics.incr("admission.released");
            }
            self.metrics.incr("shard.reports");
            self.metrics.incr("server.report_result.accepted");
            if drained {
                self.push.notify(&Notification::ExperimentFinished {
                    project: task.project,
                    experiment: task.experiment,
                });
            }
            Ok(idx)
        });
        self.maybe_snapshot();
        out
    }

    /// Accept a whole batch of reports from one contributor in a single
    /// group commit per shard. Returns the accepted record index of each
    /// report, in input order — duplicates (retries of an already-acked
    /// batch) resolve to their original indices.
    ///
    /// The batch is **all-or-nothing per shard**: every report is
    /// validated under the shard lock before anything is logged or
    /// mutated, and the fresh ones ride one
    /// [`WalRecord::ReportBatchAccepted`] append+flush — the group
    /// commit. A batch spanning projects commits per shard in first-
    /// appearance order; a later shard's refusal leaves earlier shards
    /// committed (their reports re-resolve as duplicates on retry).
    pub fn report_batch(
        &self,
        key: &ContributorKey,
        reports: &[(TaskId, RunOutcome)],
    ) -> PlatformResult<Vec<u64>> {
        let out = self.metrics.time("server.report_batch_nanos", || {
            let mut indices = vec![0u64; reports.len()];
            // Group input positions by owning project, preserving order.
            let mut groups: Vec<(ProjectId, Vec<usize>)> = Vec::new();
            for (pos, (task_id, _)) in reports.iter().enumerate() {
                let project = crate::shard::project_of_task(*task_id);
                match groups.iter_mut().find(|(p, _)| *p == project) {
                    Some((_, positions)) => positions.push(pos),
                    None => groups.push((project, vec![pos])),
                }
            }
            let mut finished: Vec<(ProjectId, ExperimentId)> = Vec::new();
            for (project, positions) in groups {
                let shard = self.state.shard(project)?;
                let mut s = shard.write();
                // Validate the whole group before mutating anything.
                let mut fresh: Vec<usize> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for &pos in &positions {
                    let (task_id, _) = &reports[pos];
                    if !seen.insert(task_id.0) {
                        return Err(PlatformError::Invalid(format!(
                            "task #{} appears twice in one batch",
                            task_id.0
                        )));
                    }
                    let task = s.queue.task(*task_id)?;
                    let held_by_key = matches!(
                        &task.state,
                        TaskState::Running { contributor } if contributor == key
                    );
                    if held_by_key {
                        fresh.push(pos);
                        continue;
                    }
                    if let Some(existing) = s.results.index_of(*task_id, &key.0) {
                        self.metrics.incr("server.report_result.duplicate");
                        indices[pos] = existing as u64;
                        continue;
                    }
                    return Err(match &task.state {
                        TaskState::Running { .. } => PlatformError::AccessDenied(format!(
                            "task #{} belongs to another contributor",
                            task_id.0
                        )),
                        other => PlatformError::Invalid(format!(
                            "task #{} is not running (state {other:?})",
                            task_id.0
                        )),
                    });
                }
                if fresh.is_empty() {
                    continue; // pure retry: everything resolved as duplicates
                }
                let mut items: Vec<(TaskId, Option<String>, ResultRecord)> =
                    Vec::with_capacity(fresh.len());
                let mut experiments: Vec<ExperimentId> = Vec::new();
                for &pos in &fresh {
                    let (task_id, outcome) = &reports[pos];
                    // Borrow, don't clone: the task's SQL text is dead
                    // weight here and a bulk batch holds hundreds.
                    let task = s.queue.task(*task_id).expect("validated above");
                    let outcome = outcome.clone();
                    let error = outcome.error.clone();
                    let mut rec: ResultRecord = record(
                        *task_id,
                        task.project,
                        task.experiment,
                        task.query,
                        &task.dbms_label,
                        &task.host,
                        key,
                        outcome.times_ms,
                        outcome.rows,
                        outcome.error,
                    );
                    rec.load_before = outcome.load_before;
                    rec.load_after = outcome.load_after;
                    rec.extras = outcome.extras;
                    rec.fingerprint = outcome.fingerprint;
                    rec.profile = outcome.profile;
                    if let Some(profile) = &rec.profile {
                        let (scanned, skipped) = profile.iter().fold((0, 0), |(a, b), op| {
                            (a + op.chunks_scanned, b + op.chunks_skipped)
                        });
                        if scanned > 0 {
                            self.metrics.add("scan.chunks_scanned", scanned);
                        }
                        if skipped > 0 {
                            self.metrics.add("scan.chunks_skipped", skipped);
                        }
                    }
                    if !experiments.contains(&task.experiment) {
                        experiments.push(task.experiment);
                    }
                    items.push((*task_id, error, rec));
                }
                // The group commit: every fresh report of this shard in
                // ONE framed append+flush, so the whole batch becomes
                // durable — and replays — atomically. Logged before the
                // queue mutations, same as the single-report path. The
                // record is built by move and destructured back, so the
                // batch is never deep-copied just to be logged.
                let group = WalRecord::ReportBatchAccepted {
                    key: key.clone(),
                    items,
                };
                self.log(&group)?;
                self.metrics.incr("wal.group_commits");
                let WalRecord::ReportBatchAccepted { items, .. } = group else {
                    unreachable!("built three lines up")
                };
                for (pos, (task_id, error, rec)) in fresh.iter().zip(items) {
                    s.queue
                        .complete(task_id, key, error)
                        .expect("validated above under this lock");
                    indices[*pos] = s.results.push(rec) as u64;
                }
                let ids: Vec<TaskId> = fresh.iter().map(|&pos| reports[pos].0).collect();
                let released = self.admission.release_batch(key, &ids);
                if released > 0 {
                    self.metrics.add("admission.released", released as u64);
                }
                self.metrics.add("shard.reports", fresh.len() as u64);
                self.metrics.add("server.report_batch.accepted", fresh.len() as u64);
                for experiment in experiments {
                    if experiment_drained(&s, experiment) {
                        finished.push((project, experiment));
                    }
                }
            }
            // Notify outside every shard lock.
            for (project, experiment) in finished {
                self.push.notify(&Notification::ExperimentFinished {
                    project,
                    experiment,
                });
            }
            Ok(indices)
        });
        self.maybe_snapshot();
        out
    }

    /// Reap stuck runs (moderator cron).
    pub fn reap_stuck(&self, timeout: Duration) -> Vec<TaskId> {
        let mut all = Vec::new();
        for shard in self.state.all_shards() {
            let mut s = shard.write();
            let reaped = s.queue.reap_stuck(timeout);
            if reaped.is_empty() {
                continue;
            }
            if self
                .log(&WalRecord::TasksReaped {
                    project: s.project.id,
                    tasks: reaped.clone(),
                })
                .is_err()
            {
                self.metrics.incr("wal.errors");
            }
            for &t in &reaped {
                if self.admission.release_any(t) {
                    self.metrics.incr("admission.released");
                }
            }
            all.extend(reaped);
        }
        all
    }

    pub fn requeue(&self, task: TaskId) -> PlatformResult<()> {
        let shard = self.state.shard_of_task(task)?;
        let project = {
            let mut s = shard.write();
            s.queue.requeue(task)?;
            self.log(&WalRecord::TaskRequeued { task })?;
            s.project.id
        };
        // The task is claimable again: wake parked workers (lock released
        // first — they will immediately request_task against this shard).
        self.push.notify(&Notification::QueueReady { project });
        Ok(())
    }

    /// Task counts aggregated over every shard.
    pub fn queue_summary(&self) -> QueueSummary {
        let mut total = QueueSummary::default();
        for shard in self.state.all_shards() {
            let s = shard.read().queue.summary();
            total.queued += s.queued;
            total.running += s.running;
            total.finished += s.finished;
            total.failed += s.failed;
            total.timed_out += s.timed_out;
        }
        total
    }

    // ------------------------------------------------------------ results

    /// Results of a project as seen by `viewer`: owners and contributors
    /// see everything, readers only non-hidden records, and taken-down
    /// projects serve nothing.
    pub fn results_for(
        &self,
        project: ProjectId,
        viewer: UserId,
    ) -> PlatformResult<Vec<ResultRecord>> {
        let shard = self.state.shard(project)?;
        let s = shard.read();
        let role = s.project.role_of(viewer);
        if role < Role::Reader {
            return Err(PlatformError::AccessDenied(format!(
                "project #{} is private",
                project.0
            )));
        }
        if s.project.taken_down {
            return Err(PlatformError::Publication(format!(
                "project #{} was taken down",
                project.0
            )));
        }
        Ok(s.results
            .all()
            .iter()
            .filter(|r| role >= Role::Contributor || !r.hidden)
            .cloned()
            .collect())
    }

    /// Hide or unhide one result. `index` is shard-local (the index
    /// `report_result` returned).
    pub fn hide_result(
        &self,
        project: ProjectId,
        actor: UserId,
        index: usize,
        hidden: bool,
    ) -> PlatformResult<()> {
        self.with_shard(project, |s| {
            s.project.require(actor, Role::Owner)?;
            if s.results.set_hidden(index, hidden) {
                self.log(&WalRecord::ResultHidden {
                    project,
                    index,
                    hidden,
                })
            } else {
                Err(PlatformError::Invalid(format!("no result #{index}")))
            }
        })
    }

    pub fn export_csv(&self, project: ProjectId, viewer: UserId) -> PlatformResult<String> {
        let records = self.results_for(project, viewer)?;
        let mut store = ResultStore::new();
        for r in records {
            store.push(r);
        }
        Ok(store.to_csv())
    }

    /// Results of a project keyed off a contributor key instead of a user
    /// id — the wire client's view, where the key is the only credential.
    pub fn results_for_key(
        &self,
        project: ProjectId,
        key: &ContributorKey,
    ) -> PlatformResult<Vec<ResultRecord>> {
        let viewer = self
            .state
            .global
            .read()
            .users
            .resolve_key(key)
            .ok_or_else(|| PlatformError::AccessDenied("unknown contributor key".into()))?;
        self.results_for(project, viewer)
    }

    /// Read-only access to a project for report rendering.
    pub fn with_project_view<T>(
        &self,
        project: ProjectId,
        viewer: UserId,
        f: impl FnOnce(&Project) -> T,
    ) -> PlatformResult<T> {
        let shard = self.state.shard(project)?;
        let s = shard.read();
        if s.project.role_of(viewer) < Role::Reader {
            return Err(PlatformError::AccessDenied(format!(
                "project #{} is private",
                project.0
            )));
        }
        Ok(f(&s.project))
    }
}

/// Whether an experiment has no claimable or in-flight task left in this
/// shard's queue — the `ExperimentFinished` trigger.
fn experiment_drained(s: &ProjectShard, experiment: ExperimentId) -> bool {
    !s.queue.tasks().iter().any(|t| {
        t.experiment == experiment
            && matches!(t.state, TaskState::Queued | TaskState::Running { .. })
    })
}

impl Platform for SqalpelServer {
    fn request_task(
        &self,
        key: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> PlatformResult<Option<Task>> {
        SqalpelServer::request_task(self, key, dbms_label, host)
    }

    fn report_result(
        &self,
        key: &ContributorKey,
        task_id: TaskId,
        outcome: RunOutcome,
    ) -> PlatformResult<usize> {
        SqalpelServer::report_result(self, key, task_id, outcome)
    }

    fn queue_summary(&self) -> PlatformResult<QueueSummary> {
        Ok(SqalpelServer::queue_summary(self))
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(SqalpelServer::metrics(self))
    }

    fn subscribe_push(&self, key: &ContributorKey) -> Option<Box<dyn PushWaiter>> {
        Some(Box::new(LocalWaiter::new(Arc::clone(&self.push), &key.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, EngineConnector, ExperimentDriver};
    use sqalpel_engine::{Database, RowStore};
    use std::sync::Arc;

    fn setup() -> (SqalpelServer, UserId, UserId, ProjectId, ExperimentId) {
        setup_on(SqalpelServer::new())
    }

    fn setup_on(server: SqalpelServer) -> (SqalpelServer, UserId, UserId, ProjectId, ExperimentId) {
        let owner = server.register_user("mlk", "mlk@cwi.nl").unwrap();
        let contrib = server.register_user("pk", "pk@monetdb.com").unwrap();
        let project = server
            .create_project(owner, "nation-study", "TPC-H nation micro-benchmark", Visibility::Public)
            .unwrap();
        server
            .set_targets(
                project,
                owner,
                vec!["rowstore-2.0".into()],
                vec!["bench-server".into()],
            )
            .unwrap();
        server.invite(project, owner, contrib).unwrap();
        let exp = server
            .add_experiment(
                project,
                owner,
                "nation filter",
                "select n_name, n_regionkey from nation where n_regionkey = 1 and n_name = 'BRAZIL'",
                None,
                1000,
                100,
            )
            .unwrap();
        server.seed_pool(project, exp, owner, 5, 42).unwrap();
        (server, owner, contrib, project, exp)
    }

    #[test]
    fn full_contribution_loop() {
        let (server, _owner, contrib, project, exp) = setup();
        let n = server.enqueue_experiment(project, exp, _owner).unwrap();
        assert!(n >= 2);
        let key = server.issue_key(contrib).unwrap();

        let db = Arc::new(Database::tpch(0.001, 42));
        let driver = ExperimentDriver::new(
            EngineConnector::new(Arc::new(RowStore::new(db))),
            DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 3").unwrap(),
        );
        let mut done = 0;
        while let Some(task) = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
        {
            let outcome = driver.run(&task.sql);
            server.report_result(&key, task.id, outcome).unwrap();
            done += 1;
        }
        assert_eq!(done, n);
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running, s.timed_out), (0, 0, 0));
        assert_eq!(s.finished + s.failed, n);
        let results = server.results_for(project, contrib).unwrap();
        assert_eq!(results.len(), n);
        assert!(results.iter().all(|r| r.times_ms.len() == 3 || r.error.is_some()));
    }

    #[test]
    fn strangers_cannot_request_tasks() {
        let (server, owner, _c, project, exp) = setup();
        server.enqueue_experiment(project, exp, owner).unwrap();
        let stranger = server.register_user("eve", "eve@x.io").unwrap();
        let key = server.issue_key(stranger).unwrap();
        // Reader role is not enough to contribute.
        assert!(server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .is_none());
        // Unknown keys are rejected outright.
        assert!(server
            .request_task(&ContributorKey("ck_fake".into()), "rowstore-2.0", "bench-server")
            .is_err());
    }

    #[test]
    fn private_projects_invisible_to_strangers() {
        let server = SqalpelServer::new();
        let owner = server.register_user("mlk", "a@b.io").unwrap();
        let stranger = server.register_user("eve", "e@x.io").unwrap();
        let project = server
            .create_project(owner, "secret", "private study", Visibility::Private)
            .unwrap();
        assert!(server.results_for(project, stranger).is_err());
        assert!(server
            .with_project_view(project, stranger, |p| p.title.clone())
            .is_err());
        assert!(server
            .with_project_view(project, owner, |p| p.title.clone())
            .is_ok());
    }

    #[test]
    fn hidden_results_invisible_to_readers() {
        let (server, owner, contrib, project, exp) = setup();
        server.enqueue_experiment(project, exp, owner).unwrap();
        let key = server.issue_key(contrib).unwrap();
        let db = Arc::new(Database::tpch(0.001, 42));
        let driver = ExperimentDriver::new(
            EngineConnector::new(Arc::new(RowStore::new(db))),
            DriverConfig::parse("dbms = rowstore-2.0").unwrap(),
        );
        let task = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .unwrap();
        let idx = server
            .report_result(&key, task.id, driver.run(&task.sql))
            .unwrap();
        server.hide_result(project, owner, idx, true).unwrap();

        let reader = server.register_user("reader", "r@x.io").unwrap();
        assert_eq!(server.results_for(project, reader).unwrap().len(), 0);
        // Contributors still see it.
        assert_eq!(server.results_for(project, contrib).unwrap().len(), 1);
    }

    #[test]
    fn takedown_stops_serving_results() {
        let (server, owner, _c, project, _exp) = setup();
        server.take_down(project).unwrap();
        assert!(matches!(
            server.results_for(project, owner),
            Err(PlatformError::Publication(_))
        ));
    }

    #[test]
    fn public_project_cannot_target_private_dbms() {
        let (server, owner, _c, project, _exp) = setup();
        server
            .add_dbms(DbmsEntry {
                name: "secretdb".into(),
                version: "9".into(),
                vendor: "acme".into(),
                settings: Default::default(),
                visibility: Visibility::Private,
            })
            .unwrap();
        let err = server
            .set_targets(project, owner, vec!["secretdb-9".into()], vec!["bench-server".into()])
            .unwrap_err();
        assert!(matches!(err, PlatformError::Publication(_)));
        // The failed call left the previous targets intact.
        let labels = server
            .with_project_view(project, owner, |p| p.dbms_labels.clone())
            .unwrap();
        assert_eq!(labels, vec!["rowstore-2.0".to_string()]);
    }

    #[test]
    fn morphing_extends_pool() {
        let (server, owner, _c, project, exp) = setup();
        let added = server
            .morph_pool(project, exp, owner, None, 20, 7)
            .unwrap();
        assert!(!added.is_empty());
        let n = server
            .with_project_view(project, owner, |p| {
                p.experiment(exp).unwrap().pool.len()
            })
            .unwrap();
        assert!(n >= 6 + added.len());
    }

    #[test]
    fn concurrent_contributors_drain_the_queue() {
        let (server, owner, contrib, project, exp) = setup();
        server.morph_pool(project, exp, owner, None, 10, 3).unwrap();
        let total = server.enqueue_experiment(project, exp, owner).unwrap();
        let db = Arc::new(Database::tpch(0.001, 42));

        let workers: Vec<_> = (0..4)
            .map(|_| {
                let key = server.issue_key(contrib).unwrap();
                let driver = ExperimentDriver::new(
                    EngineConnector::new(Arc::new(RowStore::new(Arc::clone(&db)))),
                    DriverConfig::parse(
                        "dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 2",
                    )
                    .unwrap(),
                );
                crate::workers::Worker::new(key, driver)
            })
            .collect();
        let report = crate::workers::run_worker_pool(&server, workers);

        assert_eq!(report.completed(), total);
        assert_eq!(report.rejected(), 0);
        assert!(report.workers.iter().all(|w| w.wall <= report.wall));
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running), (0, 0));
    }

    #[test]
    fn retried_claims_and_reports_are_idempotent() {
        let (server, owner, contrib, _project, exp) = setup();
        let n = server.enqueue_experiment(_project, exp, owner).unwrap();
        assert!(n >= 2);
        let key = server.issue_key(contrib).unwrap();

        // A claim whose response was "lost": the retry hands out the very
        // same task instead of a second one.
        let first = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .unwrap();
        let retry = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .unwrap();
        assert_eq!(retry.id, first.id);
        assert_eq!(server.queue_summary().running, 1);

        // A report whose response was "lost": the retry returns the same
        // record index and files nothing new.
        let db = Arc::new(Database::tpch(0.001, 42));
        let driver = ExperimentDriver::new(
            EngineConnector::new(Arc::new(RowStore::new(db))),
            DriverConfig::parse("dbms = rowstore-2.0\nrepetitions = 2").unwrap(),
        );
        let outcome = driver.run(&first.sql);
        let idx = server.report_result(&key, first.id, outcome.clone()).unwrap();
        let idx_retry = server.report_result(&key, first.id, outcome).unwrap();
        assert_eq!(idx, idx_retry);
        let results = server.results_for(_project, contrib).unwrap();
        assert_eq!(results.len(), 1, "no double-counted report");

        // A different key still cannot touch the completed task.
        let other = server.issue_key(contrib).unwrap();
        let late = RunOutcome {
            times_ms: vec![1.0],
            rows: 0,
            error: None,
            load_before: Default::default(),
            load_after: Default::default(),
            extras: serde_json::Value::Null,
            fingerprint: None,
            profile: None,
        };
        assert!(server.report_result(&other, first.id, late).is_err());
    }

    fn fake_outcome() -> RunOutcome {
        RunOutcome {
            times_ms: vec![1.0],
            rows: 1,
            error: None,
            load_before: Default::default(),
            load_after: Default::default(),
            extras: serde_json::Value::Null,
            fingerprint: None,
            profile: None,
        }
    }

    #[test]
    fn inflight_bound_throttles_request_task() {
        let (server, owner, contrib, project, exp) = setup_on(SqalpelServer::with_admission(
            AdmissionConfig {
                max_inflight_per_user: 1,
                max_queued_per_project: 100_000,
            },
        ));
        // Two targets so the second request is not an idempotent
        // re-hand-out of the first claim.
        server
            .set_targets(
                project,
                owner,
                vec!["rowstore-2.0".into(), "colstore-5.1".into()],
                vec!["bench-server".into()],
            )
            .unwrap();
        server.enqueue_experiment(project, exp, owner).unwrap();
        let key = server.issue_key(contrib).unwrap();

        let first = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .unwrap();
        // The held claim is re-handed out, not double-counted...
        let retry = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .unwrap();
        assert_eq!(retry.id, first.id);
        // ...but a second *distinct* hand-out exceeds the bound.
        assert!(matches!(
            server.request_task(&key, "colstore-5.1", "bench-server"),
            Err(PlatformError::Throttled(_))
        ));
        // Reporting releases the slot.
        server.report_result(&key, first.id, fake_outcome()).unwrap();
        assert!(server
            .request_task(&key, "colstore-5.1", "bench-server")
            .unwrap()
            .is_some());
    }

    #[test]
    fn project_quota_throttles_enqueue() {
        let (server, owner, _c, project, exp) = setup_on(SqalpelServer::with_admission(
            AdmissionConfig {
                max_inflight_per_user: 64,
                max_queued_per_project: 3,
            },
        ));
        // The seeded pool (6 entries × 1 target) exceeds a quota of 3.
        let err = server.enqueue_experiment(project, exp, owner).unwrap_err();
        assert!(matches!(err, PlatformError::Throttled(_)));
        assert_eq!(server.queue_summary().queued, 0, "refused before enqueueing");
    }

    #[test]
    fn handout_rotates_across_projects() {
        let (server, owner, contrib, p1, e1) = setup();
        // A second project with the same shape and membership.
        let p2 = server
            .create_project(owner, "second", "another study", Visibility::Public)
            .unwrap();
        server
            .set_targets(p2, owner, vec!["rowstore-2.0".into()], vec!["bench-server".into()])
            .unwrap();
        server.invite(p2, owner, contrib).unwrap();
        let e2 = server
            .add_experiment(p2, owner, "copy", "select n_name from nation", None, 1000, 100)
            .unwrap();
        server.seed_pool(p2, e2, owner, 5, 42).unwrap();
        server.enqueue_experiment(p1, e1, owner).unwrap();
        server.enqueue_experiment(p2, e2, owner).unwrap();

        let key = server.issue_key(contrib).unwrap();
        let mut projects_seen = std::collections::BTreeSet::new();
        for _ in 0..2 {
            let task = server
                .request_task(&key, "rowstore-2.0", "bench-server")
                .unwrap()
                .unwrap();
            projects_seen.insert(task.project);
            server.report_result(&key, task.id, fake_outcome()).unwrap();
        }
        assert_eq!(
            projects_seen.len(),
            2,
            "round-robin cursor alternates shards while both have work"
        );
    }

    #[test]
    fn durable_server_recovers_across_reopen() {
        let dir = std::env::temp_dir().join(format!("sqalpel-server-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let key;
        let held;
        let total;
        {
            let server = SqalpelServer::open(&dir).unwrap();
            assert!(server.recovered_fresh());
            let (server, owner, contrib, project, exp) = setup_on(server);
            total = server.enqueue_experiment(project, exp, owner).unwrap();
            key = server.issue_key(contrib).unwrap();
            held = server
                .request_task(&key, "rowstore-2.0", "bench-server")
                .unwrap()
                .unwrap();
            server
                .report_result(&key, held.id, fake_outcome())
                .unwrap();
            let second = server
                .request_task(&key, "rowstore-2.0", "bench-server")
                .unwrap()
                .unwrap();
            assert_ne!(second.id, held.id);
            // Crash: the server is dropped without snapshot or shutdown.
        }

        let server = SqalpelServer::open(&dir).unwrap();
        assert!(!server.recovered_fresh());
        let s = server.queue_summary();
        assert_eq!(
            (s.finished + s.failed, s.running, s.queued),
            (1, 1, total - 2),
            "one acked report, one open claim, the rest still queued"
        );
        // The open claim is re-handed out idempotently, and the admission
        // book knows it is held.
        let again = server
            .request_task(&key, "rowstore-2.0", "bench-server")
            .unwrap()
            .unwrap();
        assert!(matches!(&again.state, TaskState::Running { contributor } if contributor == &key));
        assert_eq!(server.queue_summary().running, 1);

        // A snapshot truncates the WAL; a third open recovers from it.
        server.snapshot_now().unwrap();
        drop(server);
        let server = SqalpelServer::open(&dir).unwrap();
        assert!(!server.recovered_fresh());
        assert_eq!(server.queue_summary().running, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression: a snapshot must hold the shard-map lock for its whole
    /// cut. Without it, a concurrent `create_project` can append its
    /// `ProjectCreated` record between the shard-list read and the WAL
    /// truncation — the snapshot then misses the project and the
    /// truncation drops its record, silently losing an acked creation.
    #[test]
    fn snapshot_racing_project_creation_loses_nothing() {
        let dir = std::env::temp_dir().join(format!(
            "sqalpel-server-snap-race-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let total = 50u64;
        let owner;
        {
            let server = SqalpelServer::open(&dir).unwrap();
            owner = server.register_user("mlk", "mlk@cwi.nl").unwrap();
            std::thread::scope(|sc| {
                sc.spawn(|| {
                    for _ in 0..40 {
                        server.snapshot_now().unwrap();
                    }
                });
                sc.spawn(|| {
                    for i in 0..total {
                        server
                            .create_project(owner, &format!("p{i}"), "s", Visibility::Public)
                            .unwrap();
                    }
                });
            });
        }
        let server = SqalpelServer::open(&dir).unwrap();
        for i in 1..=total {
            assert_eq!(
                server.role_of(ProjectId(i), owner).unwrap(),
                Role::Owner,
                "acked project #{i} survived the racing snapshots"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
