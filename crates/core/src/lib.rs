//! # sqalpel-core
//!
//! The sqalpel performance platform: everything around the grammar
//! machinery that the paper's SaaS provides — users and anonymous
//! contributor keys, the DBMS/host catalogs, projects with GitHub-style
//! access control, the query pool with its alter/expand/prune morphing
//! walk, the task queue with stuck-run reaping, the `sqalpel.py`-style
//! experiment driver, the raw results table with moderation, and the
//! analytics behind the paper's figures.
//!
//! ```
//! use sqalpel_core::{SqalpelServer, Visibility};
//!
//! let server = SqalpelServer::new();
//! let owner = server.register_user("mlk", "mlk@cwi.nl").unwrap();
//! let project = server
//!     .create_project(owner, "demo", "quickstart", Visibility::Public)
//!     .unwrap();
//! let exp = server
//!     .add_experiment(project, owner, "nation", 
//!         "select count(*) from nation where n_name = 'BRAZIL'",
//!         None, 1000, 100)
//!     .unwrap();
//! let seeded = server.seed_pool(project, exp, owner, 5, 42).unwrap();
//! assert!(seeded >= 1);
//! ```

pub mod admission;
pub mod analytics;
pub mod bootstrap;
pub mod catalog;
pub mod driver;
pub mod durability;
pub mod error;
pub mod metrics;
pub mod pool;
pub mod project;
pub mod push;
pub mod queue;
pub mod reports;
pub mod results;
pub mod server;
pub mod shard;
pub mod user;
pub mod wire;
pub mod workers;

pub use admission::{AdmissionConfig, AdmissionControl};
pub use bootstrap::{bootstrap_server, Bootstrap};
pub use durability::{recover, Durability, RecoveredState, WalRecord};
pub use catalog::{Catalogs, DbmsEntry, HostEntry, Visibility};
pub use driver::{
    Connector, DriverConfig, EngineConnector, ExperimentDriver, MockConnector, OperatorProfile,
    RemoteConnector, RunOutcome,
};
pub use error::{PlatformError, PlatformResult};
pub use metrics::{Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use pool::{Fingerprinter, Guidance, Origin, PoolEntry, QueryId, QueryPool, Strategy};
pub use project::{Experiment, ExperimentId, Project, ProjectId, Role};
pub use push::{LocalWaiter, Notification, PushHub, PushWaiter};
pub use queue::{QueueSummary, Task, TaskId, TaskQueue, TaskState};
pub use results::{LoadAvg, ResultRecord, ResultStore};
pub use server::{Platform, SqalpelServer};
pub use shard::{GlobalShard, ProjectShard, ShardedState};
pub use user::{ContributorKey, User, UserId, UserRegistry};
pub use wire::{
    CacheStatus, ErrorCode, ExecBackend, ExecOutcome, Proto, RetryPolicy, V2Config, V2Server,
    WireClient, WireClientBuilder, WireConfig, WireServer,
};
pub use workers::{run_worker_pool, run_worker_pool_with, PollPolicy, PoolReport, Worker, WorkerReport};
