//! User administration (paper §5.2).
//!
//! "A straightforward user administration is provided based on a unique
//! nickname and a valid email to reach out to its owner. Email addresses
//! are never exposed in the interface." Contributors run experiments under
//! a *contributor key* — "a separately supplied key to identify the source
//! of the results without disclosing the contributor's identity" (§3.3).

use crate::error::{PlatformError, PlatformResult};
use std::collections::HashMap;

/// A unique, opaque user id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

/// A registered user. The email is deliberately private: it is used for
/// "legal interaction with the registered user" only.
#[derive(Debug, Clone)]
pub struct User {
    pub id: UserId,
    pub nickname: String,
    email: String,
}

impl User {
    /// The email is only reachable through this explicitly-named accessor,
    /// never through display paths.
    pub fn email_for_legal_contact(&self) -> &str {
        &self.email
    }
}

/// An anonymous key under which results are contributed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContributorKey(pub String);

impl ContributorKey {
    /// Derive a stable, anonymous key for a user; the mapping back to the
    /// user is held only in the registry.
    fn derive(id: UserId, counter: u64) -> ContributorKey {
        // FNV-1a over the id/counter pair: stable, opaque, collision-free
        // enough for a registry that also checks uniqueness.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in id.0.to_le_bytes().into_iter().chain(counter.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        ContributorKey(format!("ck_{h:016x}"))
    }
}

/// The user registry.
#[derive(Debug, Default)]
pub struct UserRegistry {
    users: Vec<User>,
    by_nickname: HashMap<String, UserId>,
    keys: HashMap<ContributorKey, UserId>,
    key_counter: u64,
}

impl UserRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new user; nicknames are unique, emails must look valid.
    pub fn register(&mut self, nickname: &str, email: &str) -> PlatformResult<UserId> {
        if nickname.trim().is_empty() {
            return Err(PlatformError::Invalid("empty nickname".into()));
        }
        if self.by_nickname.contains_key(nickname) {
            return Err(PlatformError::Invalid(format!(
                "nickname {nickname:?} is taken"
            )));
        }
        let at = email.find('@');
        if !matches!(at, Some(i) if i > 0 && i + 1 < email.len() && email[i + 1..].contains('.')) {
            return Err(PlatformError::Invalid(format!("invalid email {email:?}")));
        }
        let id = UserId(self.users.len() as u64 + 1);
        self.users.push(User {
            id,
            nickname: nickname.to_string(),
            email: email.to_string(),
        });
        self.by_nickname.insert(nickname.to_string(), id);
        Ok(id)
    }

    pub fn get(&self, id: UserId) -> PlatformResult<&User> {
        self.users
            .get((id.0 - 1) as usize)
            .filter(|u| u.id == id)
            .ok_or(PlatformError::UnknownUser(id.0))
    }

    pub fn by_nickname(&self, nickname: &str) -> Option<&User> {
        self.by_nickname
            .get(nickname)
            .and_then(|id| self.get(*id).ok())
    }

    /// Issue a fresh anonymous contributor key for a user.
    pub fn issue_key(&mut self, id: UserId) -> PlatformResult<ContributorKey> {
        self.get(id)?;
        self.key_counter += 1;
        let key = ContributorKey::derive(id, self.key_counter);
        self.keys.insert(key.clone(), id);
        Ok(key)
    }

    /// Resolve a contributor key back to its owner (moderators only).
    pub fn resolve_key(&self, key: &ContributorKey) -> Option<UserId> {
        self.keys.get(key).copied()
    }

    pub fn len(&self) -> usize {
        self.users.len()
    }

    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// All users, for the snapshot writer. Emails still only leave
    /// through [`User::email_for_legal_contact`].
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// All issued keys with their owners, for the snapshot writer.
    pub fn keys(&self) -> impl Iterator<Item = (&ContributorKey, UserId)> {
        self.keys.iter().map(|(k, id)| (k, *id))
    }

    pub fn key_counter(&self) -> u64 {
        self.key_counter
    }

    /// Re-insert a user during recovery. Ids must arrive in registration
    /// order (snapshot/WAL order) so the dense id space stays dense.
    pub fn restore_user(&mut self, id: UserId, nickname: &str, email: &str) -> Result<(), String> {
        let expect = self.users.len() as u64 + 1;
        if id.0 != expect {
            return Err(format!(
                "user #{} restored out of order (expected #{expect})",
                id.0
            ));
        }
        self.users.push(User {
            id,
            nickname: nickname.to_string(),
            email: email.to_string(),
        });
        self.by_nickname.insert(nickname.to_string(), id);
        Ok(())
    }

    /// Re-insert an issued key during recovery. `counter` is the issue
    /// counter at derivation time; the registry counter advances past it
    /// so future keys never collide with replayed ones.
    pub fn restore_key(&mut self, key: ContributorKey, user: UserId, counter: u64) {
        self.keys.insert(key, user);
        self.key_counter = self.key_counter.max(counter);
    }

    /// Advance the issue counter during recovery (snapshots carry it as
    /// one global value rather than per key).
    pub fn restore_key_counter(&mut self, counter: u64) {
        self.key_counter = self.key_counter.max(counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = UserRegistry::new();
        let id = r.register("mlk", "mlk@cwi.nl").unwrap();
        assert_eq!(r.get(id).unwrap().nickname, "mlk");
        assert_eq!(r.by_nickname("mlk").unwrap().id, id);
        assert!(r.by_nickname("nobody").is_none());
    }

    #[test]
    fn duplicate_nickname_rejected() {
        let mut r = UserRegistry::new();
        r.register("mlk", "a@b.io").unwrap();
        assert!(r.register("mlk", "c@d.io").is_err());
    }

    #[test]
    fn bad_emails_rejected() {
        let mut r = UserRegistry::new();
        for bad in ["", "plain", "@x.com", "a@", "a@nodot"] {
            assert!(r.register("u", bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn email_not_in_debug_of_nickname_paths() {
        let mut r = UserRegistry::new();
        let id = r.register("mlk", "secret@cwi.nl").unwrap();
        let user = r.get(id).unwrap();
        // The only path to the email is the explicitly-named accessor.
        assert_eq!(user.email_for_legal_contact(), "secret@cwi.nl");
        assert_eq!(user.nickname, "mlk");
    }

    #[test]
    fn contributor_keys_are_anonymous_but_resolvable() {
        let mut r = UserRegistry::new();
        let id = r.register("mlk", "a@b.io").unwrap();
        let k1 = r.issue_key(id).unwrap();
        let k2 = r.issue_key(id).unwrap();
        assert_ne!(k1, k2, "keys are per-issue, not per-user");
        assert!(!k1.0.contains("mlk"));
        assert_eq!(r.resolve_key(&k1), Some(id));
        assert_eq!(r.resolve_key(&ContributorKey("ck_bogus".into())), None);
    }

    #[test]
    fn restore_rebuilds_registry_without_key_collisions() {
        let mut r = UserRegistry::new();
        let a = r.register("a", "a@b.io").unwrap();
        let b = r.register("b", "b@b.io").unwrap();
        let k1 = r.issue_key(a).unwrap();
        let k2 = r.issue_key(b).unwrap();

        let mut back = UserRegistry::new();
        for u in r.users() {
            back.restore_user(u.id, &u.nickname, u.email_for_legal_contact())
                .unwrap();
        }
        for (k, owner) in r.keys() {
            // Counter per key is unknown here; the max bound is what matters.
            back.restore_key(k.clone(), owner, r.key_counter());
        }
        assert_eq!(back.resolve_key(&k1), Some(a));
        assert_eq!(back.resolve_key(&k2), Some(b));
        assert_eq!(back.by_nickname("b").unwrap().id, b);
        assert_eq!(back.get(a).unwrap().email_for_legal_contact(), "a@b.io");
        // Fresh keys after recovery don't collide with replayed ones.
        let k3 = back.issue_key(a).unwrap();
        assert_ne!(k3, k1);
        assert_ne!(k3, k2);
        // Out-of-order restore is rejected.
        let mut bad = UserRegistry::new();
        assert!(bad.restore_user(UserId(2), "x", "x@y.io").is_err());
    }

    #[test]
    fn unknown_user_errors() {
        let r = UserRegistry::new();
        assert!(r.get(UserId(9)).is_err());
    }
}
