//! The execution queue (paper §5.5).
//!
//! "Each query is ran against a single DBMS + host combination. The
//! execution status is tracked in a queue, which enables killing queries
//! that got stuck or when the results of an experiment are not delivered
//! within a specified timeout interval."

use crate::error::{PlatformError, PlatformResult};
use crate::pool::QueryId;
use crate::project::{ExperimentId, ProjectId};
use crate::user::ContributorKey;
use std::collections::HashSet;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Lifecycle of a queued execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskState {
    Queued,
    /// Handed to a contributor; kept with the hand-out time so stuck runs
    /// can be reaped.
    Running { contributor: ContributorKey },
    Done,
    /// The contributor reported a failure.
    Failed(String),
    /// Reaped after exceeding the delivery timeout.
    TimedOut,
}

/// One (query, DBMS, host) execution.
#[derive(Debug, Clone)]
pub struct Task {
    pub id: TaskId,
    pub project: ProjectId,
    pub experiment: ExperimentId,
    pub query: QueryId,
    pub sql: String,
    pub dbms_label: String,
    pub host: String,
    pub state: TaskState,
    /// Set when the task is handed out.
    pub started: Option<Instant>,
}

/// The server-side task queue.
#[derive(Debug, Default)]
pub struct TaskQueue {
    tasks: Vec<Task>,
    /// Dedup: each (experiment, query, dbms, host) is queued once.
    seen: HashSet<(ProjectId, ExperimentId, QueryId, String, String)>,
}

impl TaskQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a query for one DBMS + host combination. Returns `None`
    /// when the combination was already queued.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        &mut self,
        project: ProjectId,
        experiment: ExperimentId,
        query: QueryId,
        sql: impl Into<String>,
        dbms_label: impl Into<String>,
        host: impl Into<String>,
    ) -> Option<TaskId> {
        let dbms_label = dbms_label.into();
        let host = host.into();
        let key = (project, experiment, query, dbms_label.clone(), host.clone());
        if !self.seen.insert(key) {
            return None;
        }
        let id = TaskId(self.tasks.len() as u64);
        self.tasks.push(Task {
            id,
            project,
            experiment,
            query,
            sql: sql.into(),
            dbms_label,
            host,
            state: TaskState::Queued,
            started: None,
        });
        Some(id)
    }

    /// Hand the next queued task for the given target to a contributor
    /// (the `sqalpel.py` interaction: "call the webserver, requesting a
    /// query from the pool").
    pub fn checkout(
        &mut self,
        contributor: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> Option<Task> {
        let task = self.tasks.iter_mut().find(|t| {
            t.state == TaskState::Queued && t.dbms_label == dbms_label && t.host == host
        })?;
        task.state = TaskState::Running {
            contributor: contributor.clone(),
        };
        task.started = Some(Instant::now());
        Some(task.clone())
    }

    /// Claim a specific queued task for a contributor (used by the server,
    /// which applies project-role filtering before choosing the task).
    pub fn claim(&mut self, id: TaskId, contributor: &ContributorKey) -> PlatformResult<Task> {
        let task = self
            .tasks
            .get_mut(id.0 as usize)
            .ok_or(PlatformError::UnknownTask(id.0))?;
        if task.state != TaskState::Queued {
            return Err(PlatformError::Invalid(format!(
                "task #{} is not queued",
                id.0
            )));
        }
        task.state = TaskState::Running {
            contributor: contributor.clone(),
        };
        task.started = Some(Instant::now());
        Ok(task.clone())
    }

    pub fn task(&self, id: TaskId) -> PlatformResult<&Task> {
        self.tasks
            .get(id.0 as usize)
            .ok_or(PlatformError::UnknownTask(id.0))
    }

    /// Mark a running task finished (successfully or not). Only the
    /// contributor holding the task may complete it.
    pub fn complete(
        &mut self,
        id: TaskId,
        contributor: &ContributorKey,
        error: Option<String>,
    ) -> PlatformResult<()> {
        let task = self
            .tasks
            .get_mut(id.0 as usize)
            .ok_or(PlatformError::UnknownTask(id.0))?;
        match &task.state {
            TaskState::Running { contributor: c } if c == contributor => {
                task.state = match error {
                    None => TaskState::Done,
                    Some(e) => TaskState::Failed(e),
                };
                Ok(())
            }
            TaskState::Running { .. } => Err(PlatformError::AccessDenied(format!(
                "task #{} belongs to another contributor",
                id.0
            ))),
            other => Err(PlatformError::Invalid(format!(
                "task #{} is not running (state {other:?})",
                id.0
            ))),
        }
    }

    /// Reap running tasks older than `timeout`: they return to the queue
    /// as `TimedOut` (visible for inspection) and a fresh `Queued` copy is
    /// NOT created — the moderator decides about re-runs.
    pub fn reap_stuck(&mut self, timeout: Duration) -> Vec<TaskId> {
        let now = Instant::now();
        let mut reaped = Vec::new();
        for task in &mut self.tasks {
            if let TaskState::Running { .. } = task.state {
                if let Some(started) = task.started {
                    if now.duration_since(started) >= timeout {
                        task.state = TaskState::TimedOut;
                        reaped.push(task.id);
                    }
                }
            }
        }
        reaped
    }

    /// Requeue a timed-out or failed task (moderator action).
    pub fn requeue(&mut self, id: TaskId) -> PlatformResult<()> {
        let task = self
            .tasks
            .get_mut(id.0 as usize)
            .ok_or(PlatformError::UnknownTask(id.0))?;
        match task.state {
            TaskState::TimedOut | TaskState::Failed(_) => {
                task.state = TaskState::Queued;
                task.started = None;
                Ok(())
            }
            _ => Err(PlatformError::Invalid(format!(
                "task #{} is not requeueable",
                id.0
            ))),
        }
    }

    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Count of tasks per state (queued, running, done, failed, timed out).
    pub fn summary(&self) -> (usize, usize, usize, usize, usize) {
        let mut s = (0, 0, 0, 0, 0);
        for t in &self.tasks {
            match t.state {
                TaskState::Queued => s.0 += 1,
                TaskState::Running { .. } => s.1 += 1,
                TaskState::Done => s.2 += 1,
                TaskState::Failed(_) => s.3 += 1,
                TaskState::TimedOut => s.4 += 1,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ContributorKey {
        ContributorKey(format!("ck_{n}"))
    }

    fn queue_with_two() -> TaskQueue {
        let mut q = TaskQueue::new();
        q.enqueue(
            ProjectId(1),
            ExperimentId(0),
            QueryId(0),
            "select 1 from t",
            "rowstore-2.0",
            "bench-server",
        )
        .unwrap();
        q.enqueue(
            ProjectId(1),
            ExperimentId(0),
            QueryId(1),
            "select 2 from t",
            "rowstore-2.0",
            "bench-server",
        )
        .unwrap();
        q
    }

    #[test]
    fn enqueue_dedups_combinations() {
        let mut q = queue_with_two();
        let dup = q.enqueue(
            ProjectId(1),
            ExperimentId(0),
            QueryId(0),
            "select 1 from t",
            "rowstore-2.0",
            "bench-server",
        );
        assert!(dup.is_none());
        // Same query, different target: allowed.
        assert!(q
            .enqueue(
                ProjectId(1),
                ExperimentId(0),
                QueryId(0),
                "select 1 from t",
                "colstore-5.1",
                "bench-server",
            )
            .is_some());
    }

    #[test]
    fn checkout_assigns_matching_target_only() {
        let mut q = queue_with_two();
        assert!(q.checkout(&key(1), "colstore-5.1", "bench-server").is_none());
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert_eq!(t.query, QueryId(0));
        let t2 = q.checkout(&key(2), "rowstore-2.0", "bench-server").unwrap();
        assert_eq!(t2.query, QueryId(1));
        assert!(q.checkout(&key(3), "rowstore-2.0", "bench-server").is_none());
    }

    #[test]
    fn complete_success_and_failure() {
        let mut q = queue_with_two();
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        q.complete(t.id, &key(1), None).unwrap();
        assert_eq!(q.task(t.id).unwrap().state, TaskState::Done);

        let t2 = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        q.complete(t2.id, &key(1), Some("syntax error".into()))
            .unwrap();
        assert!(matches!(
            q.task(t2.id).unwrap().state,
            TaskState::Failed(_)
        ));
        assert_eq!(q.summary(), (0, 0, 1, 1, 0));
    }

    #[test]
    fn foreign_contributor_cannot_complete() {
        let mut q = queue_with_two();
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert!(matches!(
            q.complete(t.id, &key(2), None),
            Err(PlatformError::AccessDenied(_))
        ));
    }

    #[test]
    fn completing_a_queued_task_is_invalid() {
        let mut q = queue_with_two();
        assert!(q.complete(TaskId(0), &key(1), None).is_err());
        assert!(q.complete(TaskId(99), &key(1), None).is_err());
    }

    #[test]
    fn stuck_tasks_are_reaped_and_requeueable() {
        let mut q = queue_with_two();
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        // Zero timeout: immediately stuck.
        let reaped = q.reap_stuck(Duration::ZERO);
        assert_eq!(reaped, vec![t.id]);
        assert_eq!(q.task(t.id).unwrap().state, TaskState::TimedOut);
        // A late completion attempt fails.
        assert!(q.complete(t.id, &key(1), None).is_err());
        // Moderator requeues.
        q.requeue(t.id).unwrap();
        assert_eq!(q.task(t.id).unwrap().state, TaskState::Queued);
        // Done tasks cannot be requeued.
        let t2 = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        q.complete(t2.id, &key(1), None).unwrap();
        assert!(q.requeue(t2.id).is_err());
    }

    #[test]
    fn reap_with_long_timeout_leaves_tasks_running() {
        let mut q = queue_with_two();
        q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert!(q.reap_stuck(Duration::from_secs(3600)).is_empty());
        assert_eq!(q.summary().1, 1);
    }
}
