//! The execution queue (paper §5.5).
//!
//! "Each query is ran against a single DBMS + host combination. The
//! execution status is tracked in a queue, which enables killing queries
//! that got stuck or when the results of an experiment are not delivered
//! within a specified timeout interval."
//!
//! Hand-out is served from an index keyed by `(dbms_label, host)` — the
//! target a contributor asks for — so `request_task` touches only the
//! tasks it could actually hand out instead of scanning the whole queue.
//! A second index tracks the running tasks per contributor key, which
//! makes re-handing a lost claim (idempotent retry) an O(1) lookup.

use crate::error::{PlatformError, PlatformResult};
use crate::pool::QueryId;
use crate::project::{ExperimentId, ProjectId};
use crate::user::ContributorKey;
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Lifecycle of a queued execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskState {
    Queued,
    /// Handed to a contributor; kept with the hand-out time so stuck runs
    /// can be reaped.
    Running { contributor: ContributorKey },
    Done,
    /// The contributor reported a failure.
    Failed(String),
    /// Reaped after exceeding the delivery timeout.
    TimedOut,
}

impl Serialize for TaskState {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        match self {
            TaskState::Queued => {
                m.insert("kind".into(), "queued".into());
            }
            TaskState::Running { contributor } => {
                m.insert("kind".into(), "running".into());
                m.insert("contributor".into(), contributor.0.clone().into());
            }
            TaskState::Done => {
                m.insert("kind".into(), "done".into());
            }
            TaskState::Failed(e) => {
                m.insert("kind".into(), "failed".into());
                m.insert("error".into(), e.clone().into());
            }
            TaskState::TimedOut => {
                m.insert("kind".into(), "timed_out".into());
            }
        }
        Value::Object(m)
    }
}

impl Deserialize for TaskState {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v["kind"].as_str().ok_or("task state: missing kind")? {
            "queued" => Ok(TaskState::Queued),
            "running" => Ok(TaskState::Running {
                contributor: ContributorKey(
                    v["contributor"]
                        .as_str()
                        .ok_or("running state: missing contributor")?
                        .to_string(),
                ),
            }),
            "done" => Ok(TaskState::Done),
            "failed" => Ok(TaskState::Failed(
                v["error"].as_str().ok_or("failed state: missing error")?.to_string(),
            )),
            "timed_out" => Ok(TaskState::TimedOut),
            other => Err(format!("unknown task state {other:?}")),
        }
    }
}

/// One (query, DBMS, host) execution.
#[derive(Debug, Clone)]
pub struct Task {
    pub id: TaskId,
    pub project: ProjectId,
    pub experiment: ExperimentId,
    pub query: QueryId,
    pub sql: String,
    pub dbms_label: String,
    pub host: String,
    pub state: TaskState,
    /// Set when the task is handed out. Server-side only (it feeds the
    /// stuck-run reaper); not carried on the wire.
    pub started: Option<Instant>,
}

impl Serialize for Task {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("id".into(), self.id.0.into());
        m.insert("project".into(), self.project.0.into());
        m.insert("experiment".into(), self.experiment.0.into());
        m.insert("query".into(), self.query.0.into());
        m.insert("sql".into(), self.sql.clone().into());
        m.insert("dbms_label".into(), self.dbms_label.clone().into());
        m.insert("host".into(), self.host.clone().into());
        m.insert("state".into(), self.state.to_value());
        Value::Object(m)
    }
}

impl Deserialize for Task {
    fn from_value(v: &Value) -> Result<Self, String> {
        let num = |k: &str| v[k].as_i64().map(|x| x as u64).ok_or(format!("task: missing {k}"));
        let text = |k: &str| {
            v[k].as_str()
                .map(str::to_string)
                .ok_or(format!("task: missing {k}"))
        };
        Ok(Task {
            id: TaskId(num("id")?),
            project: ProjectId(num("project")?),
            experiment: ExperimentId(num("experiment")?),
            query: QueryId(num("query")?),
            sql: text("sql")?,
            dbms_label: text("dbms_label")?,
            host: text("host")?,
            state: TaskState::from_value(&v["state"])?,
            started: None,
        })
    }
}

/// Named per-state task counts — the queue dashboard line, also served
/// verbatim as `GET /v1/queue/summary`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueSummary {
    pub queued: usize,
    pub running: usize,
    pub finished: usize,
    pub failed: usize,
    pub timed_out: usize,
}

impl QueueSummary {
    /// Every task ever enqueued.
    pub fn total(&self) -> usize {
        self.queued + self.running + self.finished + self.failed + self.timed_out
    }

    /// Tasks that reached a terminal state (an accepted report or a reap).
    pub fn terminal(&self) -> usize {
        self.finished + self.failed + self.timed_out
    }
}

impl Serialize for QueueSummary {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("queued".into(), self.queued.into());
        m.insert("running".into(), self.running.into());
        m.insert("finished".into(), self.finished.into());
        m.insert("failed".into(), self.failed.into());
        m.insert("timed_out".into(), self.timed_out.into());
        Value::Object(m)
    }
}

impl Deserialize for QueueSummary {
    fn from_value(v: &Value) -> Result<Self, String> {
        let num = |k: &str| {
            v[k].as_i64()
                .map(|x| x as usize)
                .ok_or(format!("queue summary: missing {k}"))
        };
        Ok(QueueSummary {
            queued: num("queued")?,
            running: num("running")?,
            finished: num("finished")?,
            failed: num("failed")?,
            timed_out: num("timed_out")?,
        })
    }
}

/// The server-side task queue.
#[derive(Debug, Default)]
pub struct TaskQueue {
    tasks: Vec<Task>,
    /// First task id this queue hands out. Per-project shards carve the
    /// id space by project (`project << 32`), so a task id alone names
    /// its owning shard; a standalone queue uses base 0.
    id_base: u64,
    /// Dedup: each (experiment, query, dbms, host) is queued once.
    seen: HashSet<(ProjectId, ExperimentId, QueryId, String, String)>,
    /// Hand-out index: queued task ids per (dbms_label, host), FIFO.
    /// Entries are discarded lazily — an id whose task is no longer
    /// `Queued` is skipped (and dropped) at pop time, so `claim` by id
    /// never has to search the deque.
    ready: HashMap<(String, String), VecDeque<TaskId>>,
    /// Running tasks per contributor, for idempotent claim retries.
    running: HashMap<ContributorKey, Vec<TaskId>>,
}

impl TaskQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// A queue whose ids start at `base` instead of 0.
    pub fn with_base(base: u64) -> Self {
        TaskQueue {
            id_base: base,
            ..Self::default()
        }
    }

    /// Slot of `id` in this queue, or `UnknownTask` if the id is outside
    /// the queue's allocated range.
    fn slot(&self, id: TaskId) -> PlatformResult<usize> {
        let idx = id.0.wrapping_sub(self.id_base) as usize;
        if id.0 < self.id_base || idx >= self.tasks.len() {
            return Err(PlatformError::UnknownTask(id.0));
        }
        Ok(idx)
    }

    /// Enqueue a query for one DBMS + host combination. Returns `None`
    /// when the combination was already queued.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        &mut self,
        project: ProjectId,
        experiment: ExperimentId,
        query: QueryId,
        sql: impl Into<String>,
        dbms_label: impl Into<String>,
        host: impl Into<String>,
    ) -> Option<TaskId> {
        let dbms_label = dbms_label.into();
        let host = host.into();
        let key = (project, experiment, query, dbms_label.clone(), host.clone());
        if !self.seen.insert(key) {
            return None;
        }
        let id = TaskId(self.id_base + self.tasks.len() as u64);
        self.ready
            .entry((dbms_label.clone(), host.clone()))
            .or_default()
            .push_back(id);
        self.tasks.push(Task {
            id,
            project,
            experiment,
            query,
            sql: sql.into(),
            dbms_label,
            host,
            state: TaskState::Queued,
            started: None,
        });
        Some(id)
    }

    fn mark_running(&mut self, idx: usize, contributor: &ContributorKey) -> Task {
        let task = &mut self.tasks[idx];
        task.state = TaskState::Running {
            contributor: contributor.clone(),
        };
        task.started = Some(Instant::now());
        self.running
            .entry(contributor.clone())
            .or_default()
            .push(task.id);
        task.clone()
    }

    /// Hand the next queued task for the given target to a contributor
    /// (the `sqalpel.py` interaction: "call the webserver, requesting a
    /// query from the pool").
    pub fn checkout(
        &mut self,
        contributor: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> Option<Task> {
        let id = self.pop_ready(dbms_label, host)?;
        let idx = self.slot(id).expect("ready index holds only own ids");
        Some(self.mark_running(idx, contributor))
    }

    /// Pop the oldest still-queued id from the target's ready deque,
    /// discarding stale entries along the way.
    fn pop_ready(&mut self, dbms_label: &str, host: &str) -> Option<TaskId> {
        let bucket = self
            .ready
            .get_mut(&(dbms_label.to_string(), host.to_string()))?;
        let base = self.id_base;
        while let Some(id) = bucket.pop_front() {
            if self.tasks[(id.0 - base) as usize].state == TaskState::Queued {
                return Some(id);
            }
        }
        None
    }

    /// Queued task ids for a target, oldest first. The server applies its
    /// project-role filter over these before claiming one; only tasks that
    /// could be handed out for this exact target are visited.
    pub fn queued_for(&self, dbms_label: &str, host: &str) -> Vec<TaskId> {
        match self.ready.get(&(dbms_label.to_string(), host.to_string())) {
            Some(bucket) => bucket
                .iter()
                .copied()
                .filter(|id| self.tasks[(id.0 - self.id_base) as usize].state == TaskState::Queued)
                .collect(),
            None => Vec::new(),
        }
    }

    /// The oldest task this contributor already holds for the target, if
    /// any — the idempotent answer to a retried claim whose original
    /// response was lost in transit.
    pub fn running_claim(
        &self,
        contributor: &ContributorKey,
        dbms_label: &str,
        host: &str,
    ) -> Option<&Task> {
        self.running.get(contributor)?.iter().find_map(|id| {
            let t = &self.tasks[(id.0 - self.id_base) as usize];
            let held = matches!(&t.state, TaskState::Running { contributor: c } if c == contributor);
            (held && t.dbms_label == dbms_label && t.host == host).then_some(t)
        })
    }

    /// Claim a specific queued task for a contributor (used by the server,
    /// which applies project-role filtering before choosing the task).
    pub fn claim(&mut self, id: TaskId, contributor: &ContributorKey) -> PlatformResult<Task> {
        let idx = self.slot(id)?;
        if self.tasks[idx].state != TaskState::Queued {
            return Err(PlatformError::Invalid(format!(
                "task #{} is not queued",
                id.0
            )));
        }
        Ok(self.mark_running(idx, contributor))
    }

    pub fn task(&self, id: TaskId) -> PlatformResult<&Task> {
        let idx = self.slot(id)?;
        Ok(&self.tasks[idx])
    }

    /// Undo a claim that could not be made durable: the task returns to
    /// the *head* of its ready queue as if it was never handed out. Only
    /// the contributor holding the claim may undo it.
    pub fn unclaim(&mut self, id: TaskId, contributor: &ContributorKey) -> PlatformResult<()> {
        let idx = self.slot(id)?;
        let task = &mut self.tasks[idx];
        match &task.state {
            TaskState::Running { contributor: c } if c == contributor => {
                task.state = TaskState::Queued;
                task.started = None;
                let target = (task.dbms_label.clone(), task.host.clone());
                self.ready.entry(target).or_default().push_front(id);
                self.drop_running(id, contributor);
                Ok(())
            }
            _ => Err(PlatformError::Invalid(format!(
                "task #{} is not held by this contributor",
                id.0
            ))),
        }
    }

    fn drop_running(&mut self, id: TaskId, contributor: &ContributorKey) {
        if let Some(held) = self.running.get_mut(contributor) {
            // swap_remove, not retain: a bulk contributor holds hundreds
            // of tasks, and completing each must not rewrite the whole
            // held list every time.
            if let Some(pos) = held.iter().position(|&t| t == id) {
                held.swap_remove(pos);
            }
            if held.is_empty() {
                self.running.remove(contributor);
            }
        }
    }

    /// Mark a running task finished (successfully or not). Only the
    /// contributor holding the task may complete it.
    pub fn complete(
        &mut self,
        id: TaskId,
        contributor: &ContributorKey,
        error: Option<String>,
    ) -> PlatformResult<()> {
        let idx = self.slot(id)?;
        let task = &mut self.tasks[idx];
        match &task.state {
            TaskState::Running { contributor: c } if c == contributor => {
                task.state = match error {
                    None => TaskState::Done,
                    Some(e) => TaskState::Failed(e),
                };
                self.drop_running(id, contributor);
                Ok(())
            }
            TaskState::Running { .. } => Err(PlatformError::AccessDenied(format!(
                "task #{} belongs to another contributor",
                id.0
            ))),
            other => Err(PlatformError::Invalid(format!(
                "task #{} is not running (state {other:?})",
                id.0
            ))),
        }
    }

    /// Reap running tasks older than `timeout`: they return to the queue
    /// as `TimedOut` (visible for inspection) and a fresh `Queued` copy is
    /// NOT created — the moderator decides about re-runs.
    pub fn reap_stuck(&mut self, timeout: Duration) -> Vec<TaskId> {
        let now = Instant::now();
        let mut reaped = Vec::new();
        for task in &mut self.tasks {
            if let TaskState::Running { contributor } = &task.state {
                if let Some(started) = task.started {
                    if now.duration_since(started) >= timeout {
                        let contributor = contributor.clone();
                        task.state = TaskState::TimedOut;
                        reaped.push(task.id);
                        let id = task.id;
                        if let Some(held) = self.running.get_mut(&contributor) {
                            held.retain(|&t| t != id);
                        }
                    }
                }
            }
        }
        self.running.retain(|_, held| !held.is_empty());
        reaped
    }

    /// Requeue a timed-out or failed task (moderator action).
    pub fn requeue(&mut self, id: TaskId) -> PlatformResult<()> {
        let idx = self.slot(id)?;
        let task = &mut self.tasks[idx];
        match task.state {
            TaskState::TimedOut | TaskState::Failed(_) => {
                task.state = TaskState::Queued;
                task.started = None;
                let target = (task.dbms_label.clone(), task.host.clone());
                self.ready.entry(target).or_default().push_back(id);
                Ok(())
            }
            _ => Err(PlatformError::Invalid(format!(
                "task #{} is not requeueable",
                id.0
            ))),
        }
    }

    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    pub fn id_base(&self) -> u64 {
        self.id_base
    }

    /// Re-insert a task during recovery. Tasks must arrive in id order
    /// (snapshot/WAL order). A `Running` task restarts its hand-out clock
    /// — the reaper measures from recovery, not from the original claim,
    /// which `started` being server-side state makes unavoidable.
    pub fn restore_task(&mut self, mut task: Task) -> Result<(), String> {
        let expect = self.id_base + self.tasks.len() as u64;
        if task.id.0 != expect {
            return Err(format!(
                "task #{} restored out of order (expected #{expect})",
                task.id.0
            ));
        }
        self.seen.insert((
            task.project,
            task.experiment,
            task.query,
            task.dbms_label.clone(),
            task.host.clone(),
        ));
        match &task.state {
            TaskState::Queued => {
                self.ready
                    .entry((task.dbms_label.clone(), task.host.clone()))
                    .or_default()
                    .push_back(task.id);
                task.started = None;
            }
            TaskState::Running { contributor } => {
                self.running
                    .entry(contributor.clone())
                    .or_default()
                    .push(task.id);
                task.started = Some(Instant::now());
            }
            _ => task.started = None,
        }
        self.tasks.push(task);
        Ok(())
    }

    /// Replay of a reap record: force a running task to `TimedOut`
    /// without consulting the (not replayable) hand-out clock.
    pub fn restore_timeout(&mut self, id: TaskId) -> PlatformResult<()> {
        let idx = self.slot(id)?;
        let task = &mut self.tasks[idx];
        if let TaskState::Running { contributor } = task.state.clone() {
            task.state = TaskState::TimedOut;
            task.started = None;
            self.drop_running(id, &contributor);
        }
        Ok(())
    }

    /// Count of tasks per state.
    pub fn summary(&self) -> QueueSummary {
        let mut s = QueueSummary::default();
        for t in &self.tasks {
            match t.state {
                TaskState::Queued => s.queued += 1,
                TaskState::Running { .. } => s.running += 1,
                TaskState::Done => s.finished += 1,
                TaskState::Failed(_) => s.failed += 1,
                TaskState::TimedOut => s.timed_out += 1,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ContributorKey {
        ContributorKey(format!("ck_{n}"))
    }

    fn queue_with_two() -> TaskQueue {
        let mut q = TaskQueue::new();
        q.enqueue(
            ProjectId(1),
            ExperimentId(0),
            QueryId(0),
            "select 1 from t",
            "rowstore-2.0",
            "bench-server",
        )
        .unwrap();
        q.enqueue(
            ProjectId(1),
            ExperimentId(0),
            QueryId(1),
            "select 2 from t",
            "rowstore-2.0",
            "bench-server",
        )
        .unwrap();
        q
    }

    #[test]
    fn enqueue_dedups_combinations() {
        let mut q = queue_with_two();
        let dup = q.enqueue(
            ProjectId(1),
            ExperimentId(0),
            QueryId(0),
            "select 1 from t",
            "rowstore-2.0",
            "bench-server",
        );
        assert!(dup.is_none());
        // Same query, different target: allowed.
        assert!(q
            .enqueue(
                ProjectId(1),
                ExperimentId(0),
                QueryId(0),
                "select 1 from t",
                "colstore-5.1",
                "bench-server",
            )
            .is_some());
    }

    #[test]
    fn checkout_assigns_matching_target_only() {
        let mut q = queue_with_two();
        assert!(q.checkout(&key(1), "colstore-5.1", "bench-server").is_none());
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert_eq!(t.query, QueryId(0));
        let t2 = q.checkout(&key(2), "rowstore-2.0", "bench-server").unwrap();
        assert_eq!(t2.query, QueryId(1));
        assert!(q.checkout(&key(3), "rowstore-2.0", "bench-server").is_none());
    }

    #[test]
    fn ready_index_tracks_queued_tasks() {
        let mut q = queue_with_two();
        assert_eq!(q.queued_for("rowstore-2.0", "bench-server").len(), 2);
        assert!(q.queued_for("colstore-5.1", "bench-server").is_empty());
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert_eq!(q.queued_for("rowstore-2.0", "bench-server"), vec![TaskId(1)]);
        // Claim by id (the server path) leaves a stale index entry that a
        // later checkout silently discards.
        q.claim(TaskId(1), &key(2)).unwrap();
        assert!(q.queued_for("rowstore-2.0", "bench-server").is_empty());
        assert!(q.checkout(&key(3), "rowstore-2.0", "bench-server").is_none());
        // Completion + requeue puts the id back.
        q.complete(t.id, &key(1), Some("boom".into())).unwrap();
        q.requeue(t.id).unwrap();
        assert_eq!(q.queued_for("rowstore-2.0", "bench-server"), vec![t.id]);
    }

    #[test]
    fn running_claim_returns_held_task() {
        let mut q = queue_with_two();
        assert!(q.running_claim(&key(1), "rowstore-2.0", "bench-server").is_none());
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        let held = q.running_claim(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert_eq!(held.id, t.id);
        // Wrong target or wrong key: no re-claim.
        assert!(q.running_claim(&key(1), "colstore-5.1", "bench-server").is_none());
        assert!(q.running_claim(&key(2), "rowstore-2.0", "bench-server").is_none());
        // Completion clears the hold.
        q.complete(t.id, &key(1), None).unwrap();
        assert!(q.running_claim(&key(1), "rowstore-2.0", "bench-server").is_none());
    }

    #[test]
    fn complete_success_and_failure() {
        let mut q = queue_with_two();
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        q.complete(t.id, &key(1), None).unwrap();
        assert_eq!(q.task(t.id).unwrap().state, TaskState::Done);

        let t2 = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        q.complete(t2.id, &key(1), Some("syntax error".into()))
            .unwrap();
        assert!(matches!(
            q.task(t2.id).unwrap().state,
            TaskState::Failed(_)
        ));
        assert_eq!(
            q.summary(),
            QueueSummary { queued: 0, running: 0, finished: 1, failed: 1, timed_out: 0 }
        );
    }

    #[test]
    fn foreign_contributor_cannot_complete() {
        let mut q = queue_with_two();
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert!(matches!(
            q.complete(t.id, &key(2), None),
            Err(PlatformError::AccessDenied(_))
        ));
    }

    #[test]
    fn completing_a_queued_task_is_invalid() {
        let mut q = queue_with_two();
        assert!(q.complete(TaskId(0), &key(1), None).is_err());
        assert!(q.complete(TaskId(99), &key(1), None).is_err());
    }

    #[test]
    fn unclaim_returns_task_to_queue_head() {
        let mut q = queue_with_two();
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert_eq!(q.summary().running, 1);
        q.unclaim(t.id, &key(1)).unwrap();
        assert_eq!(
            q.summary(),
            QueueSummary { queued: 2, ..Default::default() }
        );
        assert!(q.running_claim(&key(1), "rowstore-2.0", "bench-server").is_none());
        // Head of the line again: the next checkout hands out the same task.
        let again = q.checkout(&key(2), "rowstore-2.0", "bench-server").unwrap();
        assert_eq!(again.id, t.id);
        // Only the holder may unclaim, and only while the task runs.
        assert!(q.unclaim(again.id, &key(1)).is_err());
        q.complete(again.id, &key(2), None).unwrap();
        assert!(q.unclaim(again.id, &key(2)).is_err());
    }

    #[test]
    fn stuck_tasks_are_reaped_and_requeueable() {
        let mut q = queue_with_two();
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        // Zero timeout: immediately stuck.
        let reaped = q.reap_stuck(Duration::ZERO);
        assert_eq!(reaped, vec![t.id]);
        assert_eq!(q.task(t.id).unwrap().state, TaskState::TimedOut);
        // The reaped task is no longer held, so no idempotent re-claim.
        assert!(q.running_claim(&key(1), "rowstore-2.0", "bench-server").is_none());
        // A late completion attempt fails.
        assert!(q.complete(t.id, &key(1), None).is_err());
        // Moderator requeues.
        q.requeue(t.id).unwrap();
        assert_eq!(q.task(t.id).unwrap().state, TaskState::Queued);
        // Done tasks cannot be requeued.
        let t2 = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        q.complete(t2.id, &key(1), None).unwrap();
        assert!(q.requeue(t2.id).is_err());
    }

    #[test]
    fn reap_with_long_timeout_leaves_tasks_running() {
        let mut q = queue_with_two();
        q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert!(q.reap_stuck(Duration::from_secs(3600)).is_empty());
        assert_eq!(q.summary().running, 1);
    }

    #[test]
    fn based_queue_allocates_offset_ids_and_rejects_foreign_ids() {
        let base = 7u64 << 32;
        let mut q = TaskQueue::with_base(base);
        let id = q
            .enqueue(
                ProjectId(7),
                ExperimentId(0),
                QueryId(0),
                "select 1 from t",
                "rowstore-2.0",
                "bench-server",
            )
            .unwrap();
        assert_eq!(id, TaskId(base));
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        assert_eq!(t.id, id);
        // Ids below the base or past the end are unknown, not a panic.
        assert!(matches!(q.task(TaskId(0)), Err(PlatformError::UnknownTask(0))));
        assert!(q.task(TaskId(base + 1)).is_err());
        assert!(q.complete(TaskId(3), &key(1), None).is_err());
        q.complete(id, &key(1), None).unwrap();
        assert_eq!(q.task(id).unwrap().state, TaskState::Done);
    }

    #[test]
    fn restore_rebuilds_indexes_and_orders() {
        let mut q = queue_with_two();
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        let mut rebuilt = TaskQueue::new();
        for task in q.tasks() {
            rebuilt.restore_task(task.clone()).unwrap();
        }
        // The running hold and the ready index both survive the rebuild.
        assert_eq!(
            rebuilt
                .running_claim(&key(1), "rowstore-2.0", "bench-server")
                .unwrap()
                .id,
            t.id
        );
        assert_eq!(rebuilt.queued_for("rowstore-2.0", "bench-server"), vec![TaskId(1)]);
        assert_eq!(rebuilt.summary(), q.summary());
        // Out-of-order restore is a corrupt snapshot, reported typed.
        let mut bad = TaskQueue::new();
        assert!(bad.restore_task(q.task(TaskId(1)).unwrap().clone()).is_err());
        // Reap replay forces TimedOut without a clock.
        rebuilt.restore_timeout(t.id).unwrap();
        assert_eq!(rebuilt.task(t.id).unwrap().state, TaskState::TimedOut);
        assert!(rebuilt
            .running_claim(&key(1), "rowstore-2.0", "bench-server")
            .is_none());
    }

    #[test]
    fn task_and_summary_round_trip() {
        let mut q = queue_with_two();
        let t = q.checkout(&key(1), "rowstore-2.0", "bench-server").unwrap();
        let text = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&text).unwrap();
        assert_eq!(back.id, t.id);
        assert_eq!(back.sql, t.sql);
        assert_eq!(back.state, t.state);
        assert!(back.started.is_none(), "hand-out time is server-side only");

        for state in [
            TaskState::Queued,
            TaskState::Done,
            TaskState::Failed("x, y".into()),
            TaskState::TimedOut,
        ] {
            let text = serde_json::to_string(&state).unwrap();
            let back: TaskState = serde_json::from_str(&text).unwrap();
            assert_eq!(back, state);
        }

        let s = q.summary();
        let text = serde_json::to_string(&s).unwrap();
        let back: QueueSummary = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(s.total(), 2);
        assert_eq!(s.terminal(), 0);
    }
}
