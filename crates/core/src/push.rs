//! Server-push notifications: the platform's "work is ready" signal.
//!
//! The contributor loop used to learn about new work only by polling
//! `request_task` and eating empty responses with jittered backoff. The
//! [`PushHub`] inverts that: a contributor *subscribes* (in-process via
//! [`crate::Platform::subscribe_push`], over the wire via the v2
//! `Subscribe` frame) and the server delivers a [`Notification`] the
//! moment the queue changes — `QueueReady` when tasks are enqueued or
//! requeued, `ExperimentFinished` when an experiment's last task goes
//! terminal. Subscribed workers park on the notification instead of
//! empty-polling.
//!
//! Delivery semantics: every notification is fanned out to **every**
//! subscription live at publish time, exactly once per subscription —
//! no dedup, no coalescing — and never to subscriptions that were
//! already closed. Notifications are a *hint*, not a hand-out: a woken
//! worker still calls `request_task` and may lose the race for the
//! task; correctness never depends on a notification arriving.

use crate::error::PlatformResult;
use crate::project::{ExperimentId, ProjectId};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One unsolicited server-to-contributor signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notification {
    /// Tasks were enqueued or requeued on this project's queue.
    QueueReady { project: ProjectId },
    /// The experiment's last outstanding task reached a terminal state.
    ExperimentFinished {
        project: ProjectId,
        experiment: ExperimentId,
    },
}

struct Sub {
    pending: Vec<Notification>,
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    subs: HashMap<u64, Sub>,
    /// Live subscription count per contributor key string, so the
    /// hand-out path can tell a push-parked worker from a poller.
    by_key: HashMap<String, usize>,
    /// Which key each subscription was opened under (for unsubscribe).
    key_of: HashMap<u64, String>,
}

/// Fan-out hub for [`Notification`]s. One per server; subscriptions are
/// cheap (a vec of pending notifications) and torn down explicitly by
/// [`PushHub::unsubscribe`] — a wire connection's death sweep or a
/// [`LocalWaiter`]'s drop.
///
/// Uses `std::sync` (not `parking_lot`) because in-process waiters park
/// on a [`Condvar`].
#[derive(Default)]
pub struct PushHub {
    inner: Mutex<Inner>,
    wake: Condvar,
}

impl PushHub {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a subscription under a contributor key. Returns the
    /// subscription id used by [`drain`](PushHub::drain) /
    /// [`wait`](PushHub::wait) / [`unsubscribe`](PushHub::unsubscribe).
    pub fn subscribe(&self, key: &str) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.next_id += 1;
        let id = inner.next_id;
        inner.subs.insert(id, Sub { pending: Vec::new() });
        *inner.by_key.entry(key.to_string()).or_insert(0) += 1;
        inner.key_of.insert(id, key.to_string());
        id
    }

    /// Close a subscription; its undrained notifications are dropped.
    /// Idempotent.
    pub fn unsubscribe(&self, id: u64) {
        let mut inner = self.inner.lock().unwrap();
        if inner.subs.remove(&id).is_none() {
            return;
        }
        if let Some(key) = inner.key_of.remove(&id) {
            if let Some(n) = inner.by_key.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    inner.by_key.remove(&key);
                }
            }
        }
    }

    /// Whether any live subscription was opened under this key.
    pub fn is_subscribed(&self, key: &str) -> bool {
        self.inner.lock().unwrap().by_key.contains_key(key)
    }

    /// Live subscription count (tests / introspection).
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().unwrap().subs.len()
    }

    /// Publish a notification to every live subscription — one copy
    /// each, in publish order.
    pub fn notify(&self, n: &Notification) {
        let mut inner = self.inner.lock().unwrap();
        for sub in inner.subs.values_mut() {
            sub.pending.push(n.clone());
        }
        drop(inner);
        self.wake.notify_all();
    }

    /// Take every pending notification for a subscription without
    /// blocking (the wire server's per-sweep drain). Unknown ids drain
    /// empty.
    pub fn drain(&self, id: u64) -> Vec<Notification> {
        let mut inner = self.inner.lock().unwrap();
        match inner.subs.get_mut(&id) {
            Some(sub) => std::mem::take(&mut sub.pending),
            None => Vec::new(),
        }
    }

    /// Block until the subscription has a notification (popping the
    /// oldest) or the timeout elapses (`None`). Returns `None`
    /// immediately for a closed subscription.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<Notification> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.subs.get_mut(&id) {
                None => return None,
                Some(sub) if !sub.pending.is_empty() => return Some(sub.pending.remove(0)),
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, result) = self.wake.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
            if result.timed_out() {
                // One last look under the lock before giving up.
                return match inner.subs.get_mut(&id) {
                    Some(sub) if !sub.pending.is_empty() => Some(sub.pending.remove(0)),
                    _ => None,
                };
            }
        }
    }
}

/// A parked contributor's handle on the push channel, abstracted over
/// the transport: in-process it wraps the server's [`PushHub`]
/// ([`LocalWaiter`]), over the wire it blocks on a dedicated subscribed
/// v2 connection.
pub trait PushWaiter: Send {
    /// Block until a notification arrives or the timeout elapses
    /// (`Ok(None)`). Errors mean the channel itself broke (remote
    /// connection torn down).
    fn wait(&mut self, timeout: Duration) -> PlatformResult<Option<Notification>>;
}

/// [`PushWaiter`] over an in-process [`PushHub`] subscription;
/// unsubscribes on drop.
pub struct LocalWaiter {
    hub: Arc<PushHub>,
    id: u64,
}

impl LocalWaiter {
    pub fn new(hub: Arc<PushHub>, key: &str) -> Self {
        let id = hub.subscribe(key);
        LocalWaiter { hub, id }
    }
}

impl PushWaiter for LocalWaiter {
    fn wait(&mut self, timeout: Duration) -> PlatformResult<Option<Notification>> {
        Ok(self.hub.wait(self.id, timeout))
    }
}

impl Drop for LocalWaiter {
    fn drop(&mut self) {
        self.hub.unsubscribe(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_is_exactly_once_per_live_subscription() {
        let hub = PushHub::new();
        let a = hub.subscribe("ck_a");
        let b = hub.subscribe("ck_a");
        let n = Notification::QueueReady { project: ProjectId(1) };
        hub.notify(&n);
        hub.unsubscribe(b);
        let late = hub.subscribe("ck_b");
        hub.notify(&n);
        assert_eq!(hub.drain(a).len(), 2, "live for both publishes");
        assert_eq!(hub.drain(b).len(), 0, "closed subs drop pending");
        assert_eq!(hub.drain(late).len(), 1, "only post-subscribe publishes");
        assert!(hub.is_subscribed("ck_a"));
        hub.unsubscribe(a);
        assert!(!hub.is_subscribed("ck_a"));
        assert!(hub.is_subscribed("ck_b"));
    }

    #[test]
    fn wait_parks_until_notified_and_times_out_clean() {
        let hub = Arc::new(PushHub::new());
        let id = hub.subscribe("ck_w");
        assert_eq!(hub.wait(id, Duration::from_millis(5)), None);
        let h2 = Arc::clone(&hub);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            h2.notify(&Notification::QueueReady { project: ProjectId(7) });
        });
        let got = hub.wait(id, Duration::from_secs(5));
        t.join().unwrap();
        assert_eq!(got, Some(Notification::QueueReady { project: ProjectId(7) }));
        assert_eq!(hub.wait(999, Duration::from_millis(1)), None, "unknown id");
    }
}
