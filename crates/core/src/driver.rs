//! The experiment driver — the Rust analogue of `sqalpel.py` (§3.3, §5.5).
//!
//! "This small Python program contains the logic to call the web-server,
//! requesting a query from the pool and to report back the performance
//! results. … The experiment driver is locally controlled using a
//! configuration file. … By default each experiment is run five times and
//! the wall clock time for each step is reported. When available, the
//! system load at the beginning and end of the experimental run is kept
//! around."
//!
//! The JDBC role is played by the [`Connector`] trait: anything that can
//! execute SQL can contribute results. [`EngineConnector`] adapts the
//! in-repo engines; [`MockConnector`] scripts latencies and failures for
//! queue/driver testing.

use crate::results::LoadAvg;
use serde::{Deserialize, Serialize, Value};
use sqalpel_engine::Dbms;
use std::sync::Arc;
use std::time::Instant;

/// A client-side database connection (the JDBC analogue).
pub trait Connector: Send + Sync {
    /// `name-version` of the connected system.
    fn label(&self) -> String;
    /// Execute one query; returns the number of result rows.
    fn execute(&self, sql: &str) -> Result<usize, String>;
    /// Canonical logical-plan fingerprint of the query, for systems whose
    /// EXPLAIN exposes one. Reported alongside the timings so the server
    /// can group plan-equivalent queries.
    fn fingerprint(&self, sql: &str) -> Option<u64> {
        let _ = sql;
        None
    }
    /// Per-operator profile (EXPLAIN ANALYZE), for systems that expose
    /// one. Runs the query once more with the profiler on, so the driver
    /// only calls it *after* the timed repetitions.
    fn profile(&self, sql: &str) -> Option<Vec<OperatorProfile>> {
        let _ = sql;
        None
    }
}

/// One operator's row of an executed profile — the wire-facing mirror of
/// `sqalpel_engine::OpProfile`, flattened so the platform crate owns its
/// own serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorProfile {
    /// Operator label, e.g. `"scan lineitem"`, `"join inner"`.
    pub op: String,
    pub rows_in: u64,
    pub rows_out: u64,
    pub batches: u64,
    pub nanos: u64,
    /// Storage chunks a scan materialized / skipped via zone maps. Zero
    /// for non-scan operators and engines without chunked storage.
    pub chunks_scanned: u64,
    pub chunks_skipped: u64,
}

impl Serialize for OperatorProfile {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("op".into(), self.op.clone().into());
        m.insert("rows_in".into(), self.rows_in.into());
        m.insert("rows_out".into(), self.rows_out.into());
        m.insert("batches".into(), self.batches.into());
        m.insert("nanos".into(), self.nanos.into());
        m.insert("chunks_scanned".into(), self.chunks_scanned.into());
        m.insert("chunks_skipped".into(), self.chunks_skipped.into());
        Value::Object(m)
    }
}

impl Deserialize for OperatorProfile {
    fn from_value(v: &Value) -> Result<Self, String> {
        let num = |k: &str| -> Result<u64, String> {
            v[k].as_i64()
                .map(|n| n as u64)
                .ok_or_else(|| format!("operator profile: missing {k}"))
        };
        Ok(OperatorProfile {
            op: v["op"]
                .as_str()
                .ok_or("operator profile: missing op")?
                .to_string(),
            rows_in: num("rows_in")?,
            rows_out: num("rows_out")?,
            batches: num("batches")?,
            nanos: num("nanos")?,
            // Absent in payloads recorded before chunked storage existed.
            chunks_scanned: v["chunks_scanned"].as_i64().unwrap_or(0) as u64,
            chunks_skipped: v["chunks_skipped"].as_i64().unwrap_or(0) as u64,
        })
    }
}

/// Connector over an in-repo engine.
pub struct EngineConnector {
    dbms: Arc<dyn Dbms>,
}

impl EngineConnector {
    pub fn new(dbms: Arc<dyn Dbms>) -> Self {
        EngineConnector { dbms }
    }
}

impl Connector for EngineConnector {
    fn label(&self) -> String {
        self.dbms.label()
    }

    fn execute(&self, sql: &str) -> Result<usize, String> {
        self.dbms
            .execute(sql)
            .map(|rs| rs.row_count())
            .map_err(|e| e.to_string())
    }

    fn fingerprint(&self, sql: &str) -> Option<u64> {
        self.dbms.explain(sql).ok().map(|e| e.fingerprint)
    }

    fn profile(&self, sql: &str) -> Option<Vec<OperatorProfile>> {
        let plan = self.dbms.explain_analyze(sql).ok()?;
        Some(
            plan.ops
                .into_iter()
                .map(|o| OperatorProfile {
                    op: o.op,
                    rows_in: o.metrics.rows_in,
                    rows_out: o.metrics.rows_out,
                    batches: o.metrics.batches,
                    nanos: o.metrics.nanos,
                    chunks_scanned: o.metrics.chunks_scanned,
                    chunks_skipped: o.metrics.chunks_skipped,
                })
                .collect(),
        )
    }
}

/// A scriptable connector for failure-injection tests: queries matching a
/// failure pattern error; everything else spins for a configured number of
/// iterations (deterministic "latency") and returns a fixed row count.
pub struct MockConnector {
    pub label: String,
    pub fail_pattern: Option<String>,
    pub spin: u64,
    pub rows: usize,
}

impl Connector for MockConnector {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn execute(&self, sql: &str) -> Result<usize, String> {
        if let Some(pat) = &self.fail_pattern {
            if sql.contains(pat.as_str()) {
                return Err(format!("injected failure on pattern {pat:?}"));
            }
        }
        let mut acc = 0u64;
        for i in 0..self.spin {
            acc = acc.wrapping_add(i ^ (acc << 1));
        }
        std::hint::black_box(acc);
        Ok(self.rows)
    }
}

/// Simulates the paper's actual deployment: the contributor's driver talks
/// to a *remote* DBMS, so each execution is dominated by waiting (network
/// round-trip + server-side run time), not local compute. Every call
/// sleeps for the configured latency and reports a fixed row count —
/// which is why multi-worker dispatch pays off even on a single core.
pub struct RemoteConnector {
    pub label: String,
    pub latency: std::time::Duration,
    pub rows: usize,
}

impl Connector for RemoteConnector {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn execute(&self, _sql: &str) -> Result<usize, String> {
        std::thread::sleep(self.latency);
        Ok(self.rows)
    }
}

/// Driver configuration — the contents of the paper's config file:
/// "It specifies the DBMS and host used in the experimental run and the
/// project contributed to", plus the anonymous key.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    pub dbms_label: String,
    pub host: String,
    /// Repetitions per query; the paper's default is five.
    pub repetitions: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            dbms_label: String::new(),
            host: "localhost".into(),
            repetitions: 5,
        }
    }
}

impl DriverConfig {
    /// Parse a minimal `key = value` configuration file (the paper's
    /// driver is "locally controlled using a configuration file").
    pub fn parse(text: &str) -> Result<DriverConfig, String> {
        let mut cfg = DriverConfig::default();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", no + 1))?;
            let (k, v) = (k.trim(), v.trim());
            match k {
                "dbms" => cfg.dbms_label = v.to_string(),
                "host" => cfg.host = v.to_string(),
                "repetitions" => {
                    cfg.repetitions = v
                        .parse()
                        .map_err(|e| format!("line {}: bad repetitions: {e}", no + 1))?;
                }
                other => return Err(format!("line {}: unknown key {other:?}", no + 1)),
            }
        }
        if cfg.dbms_label.is_empty() {
            return Err("missing dbms".into());
        }
        Ok(cfg)
    }
}

/// The outcome of running one task locally.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub times_ms: Vec<f64>,
    pub rows: usize,
    pub error: Option<String>,
    pub load_before: LoadAvg,
    pub load_after: LoadAvg,
    pub extras: serde_json::Value,
    /// Plan fingerprint from the connector, when available.
    pub fingerprint: Option<u64>,
    /// Per-operator profile from the connector's EXPLAIN ANALYZE, when
    /// available. Collected outside the timed repetitions.
    pub profile: Option<Vec<OperatorProfile>>,
}

impl Serialize for RunOutcome {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("times_ms".into(), self.times_ms.clone().into());
        m.insert("rows".into(), self.rows.into());
        m.insert(
            "error".into(),
            match &self.error {
                Some(e) => e.clone().into(),
                None => Value::Null,
            },
        );
        m.insert("load_before".into(), self.load_before.to_value());
        m.insert("load_after".into(), self.load_after.to_value());
        m.insert("extras".into(), self.extras.clone());
        m.insert(
            "fingerprint".into(),
            match self.fingerprint {
                Some(fp) => Value::from(format!("{fp:016x}")),
                None => Value::Null,
            },
        );
        m.insert(
            "profile".into(),
            match &self.profile {
                Some(ops) => Value::Array(ops.iter().map(|o| o.to_value()).collect()),
                None => Value::Null,
            },
        );
        Value::Object(m)
    }
}

impl Deserialize for RunOutcome {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(RunOutcome {
            times_ms: v["times_ms"]
                .as_array()
                .ok_or("run outcome: missing times_ms")?
                .iter()
                .map(|t| t.as_f64().ok_or("non-numeric time".to_string()))
                .collect::<Result<_, _>>()?,
            rows: v["rows"].as_i64().ok_or("run outcome: missing rows")? as usize,
            error: match &v["error"] {
                Value::Null => None,
                e => Some(e.as_str().ok_or("run outcome: error must be a string")?.to_string()),
            },
            load_before: LoadAvg::from_value(&v["load_before"])?,
            load_after: LoadAvg::from_value(&v["load_after"])?,
            extras: v["extras"].clone(),
            fingerprint: v["fingerprint"]
                .as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok()),
            // Absent-tolerant: outcomes serialized before profiles
            // existed deserialize to None.
            profile: match &v["profile"] {
                Value::Array(ops) => Some(
                    ops.iter()
                        .map(OperatorProfile::from_value)
                        .collect::<Result<_, _>>()?,
                ),
                _ => None,
            },
        })
    }
}

/// The local experiment driver.
pub struct ExperimentDriver<C: Connector> {
    connector: C,
    config: DriverConfig,
}

impl<C: Connector> ExperimentDriver<C> {
    pub fn new(connector: C, config: DriverConfig) -> Self {
        ExperimentDriver { connector, config }
    }

    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Run one query the configured number of times, wall-clock timing
    /// each repetition. An error on any repetition aborts the run and is
    /// reported (error runs are data, not noise).
    pub fn run(&self, sql: &str) -> RunOutcome {
        let load_before = read_loadavg();
        let fingerprint = self.connector.fingerprint(sql);
        let mut times_ms = Vec::with_capacity(self.config.repetitions);
        let mut rows = 0;
        let mut error = None;
        for _ in 0..self.config.repetitions.max(1) {
            let t0 = Instant::now();
            match self.connector.execute(sql) {
                Ok(n) => {
                    times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    rows = n;
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        // Profile after the timed loop so the profiler run never
        // pollutes the reported wall-clock times.
        let profile = if error.is_none() {
            self.connector.profile(sql)
        } else {
            None
        };
        let load_after = read_loadavg();
        let extras = serde_json::json!({
            "driver": "sqalpel-rs",
            "connector": self.connector.label(),
            "host": self.config.host,
            "repetitions": self.config.repetitions,
        });
        RunOutcome {
            times_ms,
            rows,
            error,
            load_before,
            load_after,
            extras,
            fingerprint,
            profile,
        }
    }
}

/// Read `/proc/loadavg` when available (Linux); zeros elsewhere.
pub fn read_loadavg() -> LoadAvg {
    if let Ok(text) = std::fs::read_to_string("/proc/loadavg") {
        let mut parts = text.split_whitespace();
        let mut next = || parts.next().and_then(|p| p.parse().ok()).unwrap_or(0.0);
        return LoadAvg {
            one: next(),
            five: next(),
            fifteen: next(),
        };
    }
    LoadAvg::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqalpel_engine::{Database, RowStore};

    #[test]
    fn config_parsing() {
        let cfg = DriverConfig::parse(
            "# sqalpel driver config\ndbms = rowstore-2.0\nhost = bench-server\nrepetitions = 3\n",
        )
        .unwrap();
        assert_eq!(cfg.dbms_label, "rowstore-2.0");
        assert_eq!(cfg.host, "bench-server");
        assert_eq!(cfg.repetitions, 3);
    }

    #[test]
    fn config_defaults_and_errors() {
        assert!(DriverConfig::parse("").is_err()); // missing dbms
        assert!(DriverConfig::parse("dbms rowstore").is_err());
        assert!(DriverConfig::parse("dbms = x\nrepetitions = lots").is_err());
        assert!(DriverConfig::parse("dbms = x\nbogus = 1").is_err());
        let cfg = DriverConfig::parse("dbms = x").unwrap();
        assert_eq!(cfg.repetitions, 5); // the paper's default
    }

    #[test]
    fn driver_times_five_repetitions() {
        let db = std::sync::Arc::new(Database::tpch(0.001, 42));
        let connector = EngineConnector::new(std::sync::Arc::new(RowStore::new(db)));
        let driver = ExperimentDriver::new(
            connector,
            DriverConfig::parse("dbms = rowstore-2.0").unwrap(),
        );
        let outcome = driver.run("select count(*) from nation");
        assert_eq!(outcome.times_ms.len(), 5);
        assert!(outcome.times_ms.iter().all(|&t| t >= 0.0));
        assert_eq!(outcome.rows, 1);
        assert!(outcome.error.is_none());
        assert_eq!(outcome.extras["connector"], "rowstore-2.0");
        // The engine connector fingerprints via EXPLAIN.
        assert!(outcome.fingerprint.is_some());
    }

    #[test]
    fn driver_reports_errors() {
        let db = std::sync::Arc::new(Database::tpch(0.001, 42));
        let connector = EngineConnector::new(std::sync::Arc::new(RowStore::new(db)));
        let driver = ExperimentDriver::new(
            connector,
            DriverConfig::parse("dbms = rowstore-2.0").unwrap(),
        );
        let outcome = driver.run("select bogus from nowhere");
        assert!(outcome.error.is_some());
        assert!(outcome.times_ms.is_empty());
    }

    #[test]
    fn run_outcome_round_trips() {
        let outcome = RunOutcome {
            times_ms: vec![1.25, 2.5],
            rows: 9,
            error: None,
            load_before: LoadAvg { one: 0.5, five: 0.25, fifteen: 0.125 },
            load_after: LoadAvg::default(),
            extras: serde_json::json!({"connector": "mockdb-1.0"}),
            fingerprint: Some(0x1234_5678_9abc_def0),
            profile: Some(vec![OperatorProfile {
                op: "scan nation".into(),
                rows_in: 25,
                rows_out: 25,
                batches: 1,
                nanos: 12_345,
                chunks_scanned: 1,
                chunks_skipped: 0,
            }]),
        };
        let text = serde_json::to_string(&outcome).unwrap();
        let back: RunOutcome = serde_json::from_str(&text).unwrap();
        assert_eq!(back.times_ms, outcome.times_ms);
        assert_eq!(back.rows, 9);
        assert_eq!(back.error, None);
        assert_eq!(back.load_before, outcome.load_before);
        assert_eq!(back.extras["connector"], "mockdb-1.0");
        assert_eq!(back.fingerprint, Some(0x1234_5678_9abc_def0));
        assert_eq!(back.profile, outcome.profile);

        // Pre-profile payloads (no "profile" member) deserialize to None.
        let legacy: RunOutcome = serde_json::from_str(
            &text.replace("\"profile\":[", "\"ignored\":["),
        )
        .unwrap();
        assert_eq!(legacy.profile, None);

        let failed = RunOutcome { error: Some("boom".into()), ..outcome };
        let back: RunOutcome =
            serde_json::from_str(&serde_json::to_string(&failed).unwrap()).unwrap();
        assert_eq!(back.error.as_deref(), Some("boom"));
    }

    #[test]
    fn mock_connector_injects_failures() {
        let mock = MockConnector {
            label: "mockdb-1.0".into(),
            fail_pattern: Some("n_comment".into()),
            spin: 100,
            rows: 7,
        };
        assert_eq!(mock.execute("select n_name from nation"), Ok(7));
        assert!(mock.execute("select n_comment from nation").is_err());
    }

    #[test]
    fn loadavg_reads_on_linux() {
        let load = read_loadavg();
        // On Linux the values are finite and non-negative; elsewhere zero.
        assert!(load.one >= 0.0 && load.five >= 0.0 && load.fifteen >= 0.0);
    }
}
