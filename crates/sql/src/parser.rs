//! Recursive-descent SQL parser.
//!
//! Entry point: [`parse_query`] (or [`Parser::new`] + [`Parser::query`] for
//! streaming use). Operator precedence, lowest to highest:
//! `OR` < `AND` < `NOT` < comparisons / `IS` / `IN` / `BETWEEN` / `LIKE`
//! < `+ - ||` < `* / %` < unary minus < primary.

use crate::ast::*;
use crate::error::{ParseError, ParseResult, Pos};
use crate::lexer::Lexer;
use crate::token::{is_reserved, Spanned, Token};

/// Parse a single SQL query (a trailing `;` is allowed).
pub fn parse_query(src: &str) -> ParseResult<Query> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    p.accept(&Token::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

/// Parse an expression in isolation (used by tests and the grammar
/// converter when re-validating snippets).
pub fn parse_expr(src: &str) -> ParseResult<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

pub struct Parser {
    tokens: Vec<Spanned>,
    idx: usize,
}

impl Parser {
    pub fn new(src: &str) -> ParseResult<Self> {
        Ok(Parser {
            tokens: Lexer::tokenize(src)?,
            idx: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.idx.min(self.tokens.len() - 1)].token
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        &self.tokens[(self.idx + n).min(self.tokens.len() - 1)].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.idx.min(self.tokens.len() - 1)].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.idx.min(self.tokens.len() - 1)].token.clone();
        if self.idx < self.tokens.len() - 1 {
            self.idx += 1;
        }
        t
    }

    /// Consume the token if it matches; return whether it did.
    fn accept(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consume the keyword if present; return whether it was.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> ParseResult<()> {
        if self.accept(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> ParseResult<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {}, found {}", kw.to_uppercase(), self.peek())))
        }
    }

    fn expect_eof(&mut self) -> ParseResult<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {}", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos(), msg)
    }

    fn identifier(&mut self, what: &str) -> ParseResult<String> {
        match self.peek() {
            Token::Word(w) if !is_reserved(w) => {
                let w = w.clone();
                self.bump();
                Ok(w)
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    // ---------------------------------------------------------------- query

    pub fn query(&mut self) -> ParseResult<Query> {
        let mut ctes = Vec::new();
        if self.accept_kw("with") {
            loop {
                let name = self.identifier("CTE name")?;
                self.expect_kw("as")?;
                self.expect(&Token::LParen)?;
                let query = self.query()?;
                self.expect(&Token::RParen)?;
                ctes.push(Cte { name, query });
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.select()?;
        let mut order_by = Vec::new();
        if self.accept_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.accept_kw("desc") {
                    true
                } else {
                    self.accept_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_kw("limit") {
            match self.bump() {
                Token::Integer(n) if n >= 0 => Some(n as u64),
                other => return Err(self.err(format!("expected LIMIT count, found {other}"))),
            }
        } else {
            None
        };
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
        })
    }

    fn select(&mut self) -> ParseResult<Select> {
        self.expect_kw("select")?;
        let distinct = self.accept_kw("distinct");
        self.accept_kw("all");
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.accept_kw("from") {
            loop {
                from.push(self.table_ref()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let selection = if self.accept_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.accept_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> ParseResult<SelectItem> {
        if self.accept(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.expr()?;
        let alias = if self.accept_kw("as") {
            Some(self.identifier("alias")?)
        } else {
            match self.peek() {
                Token::Word(w) if !is_reserved(w) => {
                    let w = w.clone();
                    self.bump();
                    Some(w)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ----------------------------------------------------------- table refs

    fn table_ref(&mut self) -> ParseResult<TableRef> {
        let mut left = self.table_primary()?;
        loop {
            let kind = if self.accept_kw("left") {
                self.accept_kw("outer");
                self.expect_kw("join")?;
                JoinKind::LeftOuter
            } else if self.peek().is_keyword("inner")
                || self.peek().is_keyword("join")
            {
                self.accept_kw("inner");
                self.expect_kw("join")?;
                JoinKind::Inner
            } else {
                return Ok(left);
            };
            let right = self.table_primary()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    fn table_primary(&mut self) -> ParseResult<TableRef> {
        if self.accept(&Token::LParen) {
            let query = self.query()?;
            self.expect(&Token::RParen)?;
            self.accept_kw("as");
            let alias = self.identifier("derived-table alias")?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.identifier("table name")?;
        let alias = if self.accept_kw("as") {
            Some(self.identifier("alias")?)
        } else {
            match self.peek() {
                Token::Word(w) if !is_reserved(w) => {
                    let w = w.clone();
                    self.bump();
                    Some(w)
                }
                _ => None,
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    // ---------------------------------------------------------- expressions

    pub fn expr(&mut self) -> ParseResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> ParseResult<Expr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("or") {
            let right = self.and_expr()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> ParseResult<Expr> {
        let mut left = self.not_expr()?;
        while self.accept_kw("and") {
            let right = self.not_expr()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> ParseResult<Expr> {
        if self.accept_kw("not") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> ParseResult<Expr> {
        let left = self.additive()?;
        // Postfix predicate forms: IS [NOT] NULL, [NOT] BETWEEN/IN/LIKE.
        if self.accept_kw("is") {
            let negated = self.accept_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek().is_keyword("not")
            && (self.peek_ahead(1).is_keyword("between")
                || self.peek_ahead(1).is_keyword("in")
                || self.peek_ahead(1).is_keyword("like"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.accept_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.accept_kw("in") {
            self.expect(&Token::LParen)?;
            if self.peek().is_keyword("select") || self.peek().is_keyword("with") {
                let query = self.query()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    negated,
                    query: Box::new(query),
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                negated,
                list,
            });
        }
        if self.accept_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                negated,
                pattern: Box::new(pattern),
            });
        }
        if negated {
            return Err(self.err("expected BETWEEN, IN or LIKE after NOT"));
        }
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::NotEq => BinOp::NotEq,
            Token::Lt => BinOp::Lt,
            Token::LtEq => BinOp::LtEq,
            Token::Gt => BinOp::Gt,
            Token::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn additive(&mut self) -> ParseResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Plus,
                Token::Minus => BinOp::Minus,
                Token::Concat => BinOp::Concat,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn multiplicative(&mut self) -> ParseResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn unary(&mut self) -> ParseResult<Expr> {
        if self.accept(&Token::Minus) {
            // Fold a minus directly into a numeric literal so that the
            // canonical printer round-trips (`-1` parses back to the
            // negative literal it was printed from).
            match self.peek().clone() {
                Token::Integer(n) => {
                    self.bump();
                    return Ok(Expr::int(-n));
                }
                Token::Decimal(d) => {
                    self.bump();
                    return Ok(Expr::dec(-d));
                }
                _ => {}
            }
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.accept(&Token::Plus);
        self.primary()
    }

    fn primary(&mut self) -> ParseResult<Expr> {
        match self.peek().clone() {
            Token::Integer(n) => {
                self.bump();
                Ok(Expr::int(n))
            }
            Token::Decimal(d) => {
                self.bump();
                Ok(Expr::dec(d))
            }
            Token::String(s) => {
                self.bump();
                Ok(Expr::str(s))
            }
            Token::LParen => {
                self.bump();
                if self.peek().is_keyword("select") || self.peek().is_keyword("with") {
                    let q = self.query()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Subquery(Box::new(q)))
                } else {
                    let e = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(e)
                }
            }
            Token::Word(w) => self.word_primary(&w),
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    fn word_primary(&mut self, w: &str) -> ParseResult<Expr> {
        // Typed literals and special forms first.
        if w.eq_ignore_ascii_case("date") {
            if let Token::String(_) = self.peek_ahead(1) {
                self.bump();
                if let Token::String(s) = self.bump() {
                    return Ok(Expr::date(s));
                }
                unreachable!("peeked string");
            }
        }
        if w.eq_ignore_ascii_case("interval") {
            self.bump();
            let value = match self.bump() {
                Token::String(s) => s
                    .trim()
                    .parse::<i64>()
                    .map_err(|e| self.err(format!("bad interval value: {e}")))?,
                Token::Integer(n) => n,
                other => return Err(self.err(format!("expected interval value, found {other}"))),
            };
            let unit = self.interval_unit()?;
            return Ok(Expr::Literal(Literal::Interval { value, unit }));
        }
        if w.eq_ignore_ascii_case("null") {
            self.bump();
            return Ok(Expr::Literal(Literal::Null));
        }
        if w.eq_ignore_ascii_case("case") {
            return self.case_expr();
        }
        if w.eq_ignore_ascii_case("exists") {
            self.bump();
            self.expect(&Token::LParen)?;
            let q = self.query()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Exists {
                negated: false,
                query: Box::new(q),
            });
        }
        if w.eq_ignore_ascii_case("extract") && self.peek_ahead(1) == &Token::LParen {
            self.bump();
            self.bump();
            let field = self.interval_unit()?;
            self.expect_kw("from")?;
            let e = self.expr()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Extract {
                field,
                expr: Box::new(e),
            });
        }
        if w.eq_ignore_ascii_case("substring") && self.peek_ahead(1) == &Token::LParen {
            self.bump();
            self.bump();
            let e = self.expr()?;
            let (start, length) = if self.accept_kw("from") {
                let s = self.expr()?;
                let l = if self.accept_kw("for") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                (s, l)
            } else {
                self.expect(&Token::Comma)?;
                let s = self.expr()?;
                let l = if self.accept(&Token::Comma) {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                (s, l)
            };
            self.expect(&Token::RParen)?;
            return Ok(Expr::Substring {
                expr: Box::new(e),
                start: Box::new(start),
                length,
            });
        }
        // Function call?
        if self.peek_ahead(1) == &Token::LParen && !is_reserved(w) {
            let name = w.to_string();
            self.bump();
            self.bump();
            let distinct = self.accept_kw("distinct");
            let mut args = Vec::new();
            if !self.accept(&Token::RParen) {
                loop {
                    if self.accept(&Token::Star) {
                        args.push(Expr::Wildcard);
                    } else {
                        args.push(self.expr()?);
                    }
                    if !self.accept(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            return Ok(Expr::Function {
                name,
                distinct,
                args,
            });
        }
        if is_reserved(w) {
            return Err(self.err(format!("unexpected keyword {}", w.to_uppercase())));
        }
        // Column reference, possibly qualified.
        let first = w.to_string();
        self.bump();
        if self.peek() == &Token::Period {
            self.bump();
            let col = self.identifier("column name")?;
            return Ok(Expr::Column(ColumnRef::qualified(first, col)));
        }
        Ok(Expr::Column(ColumnRef::bare(first)))
    }

    fn interval_unit(&mut self) -> ParseResult<IntervalUnit> {
        match self.bump() {
            Token::Word(u) if u.eq_ignore_ascii_case("day") => Ok(IntervalUnit::Day),
            Token::Word(u) if u.eq_ignore_ascii_case("month") => Ok(IntervalUnit::Month),
            Token::Word(u) if u.eq_ignore_ascii_case("year") => Ok(IntervalUnit::Year),
            other => Err(self.err(format!("expected interval unit, found {other}"))),
        }
    }

    fn case_expr(&mut self) -> ParseResult<Expr> {
        self.bump(); // CASE
        let operand = if self.peek().is_keyword("when") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.accept_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let result = self.expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_branch = if self.accept_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_branch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("SELECT n_name FROM nation WHERE n_name = 'BRAZIL'").unwrap();
        assert_eq!(q.body.items.len(), 1);
        assert_eq!(q.body.from, vec![TableRef::table("nation")]);
        assert!(q.body.selection.is_some());
    }

    #[test]
    fn count_star() {
        let q = parse_query("select count(*) from nation").unwrap();
        match &q.body.items[0] {
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Function { name, args, .. } => {
                    assert_eq!(name, "count");
                    assert_eq!(args, &vec![Expr::Wildcard]);
                }
                other => panic!("expected function, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates_group_order_limit() {
        let q = parse_query(
            "select l_returnflag, sum(l_quantity) as sum_qty from lineitem \
             group by l_returnflag having sum(l_quantity) > 100 \
             order by l_returnflag desc limit 10",
        )
        .unwrap();
        assert_eq!(q.body.group_by.len(), 1);
        assert!(q.body.having.is_some());
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn date_and_interval_arithmetic() {
        let e =
            parse_expr("l_shipdate < date '1994-01-01' + interval '1' year").unwrap();
        match e {
            Expr::Binary { op: BinOp::Lt, right, .. } => match *right {
                Expr::Binary { op: BinOp::Plus, left, right } => {
                    assert_eq!(*left, Expr::date("1994-01-01"));
                    assert_eq!(
                        *right,
                        Expr::Literal(Literal::Interval {
                            value: 1,
                            unit: IntervalUnit::Year
                        })
                    );
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_and_or() {
        let e = parse_expr("a = 1 or b = 2 and c = 3").unwrap();
        // OR at top, AND binds tighter.
        match e {
            Expr::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary { op: BinOp::Plus, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_in_like_not() {
        let e = parse_expr(
            "l_discount between 0.05 and 0.07 and p_size in (1, 2, 3) \
             and p_type not like '%BRASS' and o_comment is not null",
        )
        .unwrap();
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 4);
        assert!(matches!(parts[0], Expr::Between { negated: false, .. }));
        assert!(matches!(parts[1], Expr::InList { list, .. } if list.len() == 3));
        assert!(matches!(parts[2], Expr::Like { negated: true, .. }));
        assert!(matches!(parts[3], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn exists_and_in_subquery() {
        let q = parse_query(
            "select o_orderpriority from orders where exists (select * from lineitem \
             where l_orderkey = o_orderkey) and o_orderkey not in (select l_orderkey from lineitem)",
        )
        .unwrap();
        let sel = q.body.selection.unwrap();
        let parts = sel.conjuncts();
        assert!(matches!(parts[0], Expr::Exists { negated: false, .. }));
        assert!(matches!(parts[1], Expr::InSubquery { negated: true, .. }));
    }

    #[test]
    fn not_exists_via_unary_not() {
        let e = parse_expr("not exists (select * from nation)").unwrap();
        assert!(matches!(e, Expr::Unary { op: UnaryOp::Not, .. }));
    }

    #[test]
    fn scalar_subquery() {
        let e = parse_expr("ps_supplycost = (select min(ps_supplycost) from partsupp)").unwrap();
        match e {
            Expr::Binary { right, .. } => assert!(matches!(*right, Expr::Subquery(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn derived_table() {
        let q = parse_query(
            "select avg(c_count) from (select count(o_orderkey) as c_count from orders \
             group by o_custkey) as c_orders",
        )
        .unwrap();
        assert!(matches!(&q.body.from[0], TableRef::Subquery { alias, .. } if alias == "c_orders"));
    }

    #[test]
    fn left_outer_join() {
        let q = parse_query(
            "select c_custkey from customer left outer join orders \
             on c_custkey = o_custkey and o_comment not like '%special%'",
        )
        .unwrap();
        assert!(matches!(
            &q.body.from[0],
            TableRef::Join { kind: JoinKind::LeftOuter, .. }
        ));
    }

    #[test]
    fn case_searched_and_simple() {
        let e = parse_expr(
            "sum(case when nation = 'BRAZIL' then volume else 0 end) / sum(volume)",
        )
        .unwrap();
        assert!(e.contains_aggregate());
        let simple = parse_expr("case x when 1 then 'a' else 'b' end").unwrap();
        assert!(matches!(simple, Expr::Case { operand: Some(_), .. }));
    }

    #[test]
    fn extract_and_substring() {
        let e = parse_expr("extract(year from l_shipdate)").unwrap();
        assert!(matches!(e, Expr::Extract { field: IntervalUnit::Year, .. }));
        let s = parse_expr("substring(c_phone from 1 for 2)").unwrap();
        assert!(matches!(s, Expr::Substring { length: Some(_), .. }));
        let s2 = parse_expr("substring(c_phone, 1, 2)").unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn with_clause() {
        let q = parse_query(
            "with revenue as (select l_suppkey as supplier_no, \
             sum(l_extendedprice * (1 - l_discount)) as total_revenue from lineitem \
             group by l_suppkey) select s_suppkey from supplier, revenue \
             where s_suppkey = supplier_no",
        )
        .unwrap();
        assert_eq!(q.ctes.len(), 1);
        assert_eq!(q.ctes[0].name, "revenue");
    }

    #[test]
    fn aliases_with_and_without_as() {
        let q = parse_query("select l.l_tax t from lineitem as l").unwrap();
        match &q.body.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("t")),
            other => panic!("{other:?}"),
        }
        assert_eq!(q.body.from[0], TableRef::aliased("lineitem", "l"));
    }

    #[test]
    fn count_distinct() {
        let e = parse_expr("count(distinct ps_suppkey)").unwrap();
        assert!(matches!(e, Expr::Function { distinct: true, .. }));
    }

    #[test]
    fn unary_minus_folds_into_literals() {
        let e = parse_expr("-5 + 3").unwrap();
        match e {
            Expr::Binary { left, op: BinOp::Plus, .. } => {
                assert_eq!(*left, Expr::int(-5));
            }
            other => panic!("{other:?}"),
        }
        // Non-literal operands keep the unary node.
        assert!(matches!(
            parse_expr("-x").unwrap(),
            Expr::Unary { op: UnaryOp::Neg, .. }
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("select 1 from nation nonsense nonsense").is_err());
        assert!(parse_query("select from").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_query("select 1 from").unwrap_err();
        assert!(err.pos.line >= 1);
    }

    #[test]
    fn keywords_cannot_be_table_names() {
        assert!(parse_query("select 1 from select").is_err());
    }
}
