//! SQL tokens and keyword classification.

use crate::error::Pos;
use std::fmt;

/// A lexical token produced by [`crate::lexer::Lexer`].
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword; keywords are recognized by the parser via
    /// [`Token::is_keyword`] so that non-reserved words stay usable as names.
    Word(String),
    /// Integer literal, e.g. `42`.
    Integer(i64),
    /// Decimal literal, e.g. `0.05`.
    Decimal(f64),
    /// Single-quoted string literal with quotes removed and `''` unescaped.
    String(String),
    LParen,
    RParen,
    Comma,
    Semicolon,
    Period,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||` string concatenation.
    Concat,
    /// End of input marker.
    Eof,
}

impl Token {
    /// True when this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        match self {
            Token::Word(w) => w.eq_ignore_ascii_case(kw),
            _ => false,
        }
    }

    /// The identifier text, if this token is a word.
    pub fn word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::Integer(i) => write!(f, "{i}"),
            Token::Decimal(d) => write!(f, "{d}"),
            Token::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Semicolon => f.write_str(";"),
            Token::Period => f.write_str("."),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Concat => f.write_str("||"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token together with the position where it started.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub pos: Pos,
}

/// Reserved words that may not be used as bare column/table names.
///
/// Deliberately short: TPC-H schemas use many words (`comment`, `date`
/// appears as a type/name) that heavier dialects reserve.
pub const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "by", "having", "limit",
    "and", "or", "not", "in", "exists", "between", "like", "is", "null",
    "case", "when", "then", "else", "end", "as", "asc", "desc", "distinct",
    "union", "all", "join", "inner", "left", "right", "outer", "on",
];

/// True when `word` is reserved and therefore cannot be an identifier.
pub fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let t = Token::Word("SeLeCt".into());
        assert!(t.is_keyword("select"));
        assert!(t.is_keyword("SELECT"));
        assert!(!t.is_keyword("from"));
    }

    #[test]
    fn non_words_are_not_keywords() {
        assert!(!Token::Integer(5).is_keyword("select"));
        assert!(!Token::Eof.is_keyword("select"));
    }

    #[test]
    fn reserved_words() {
        assert!(is_reserved("SELECT"));
        assert!(is_reserved("between"));
        assert!(!is_reserved("nation"));
        assert!(!is_reserved("comment"));
    }

    #[test]
    fn string_display_escapes_quotes() {
        assert_eq!(Token::String("O'Neil".into()).to_string(), "'O''Neil'");
    }
}
