//! Abstract syntax tree for the analytic SQL subset understood by sqalpel.
//!
//! The subset covers all 22 TPC-H queries (including their `WITH` / view-free
//! rewrites), the SSB queries and ad-hoc single-table queries: `SELECT`
//! with expressions and aggregates, comma joins and `[LEFT] [OUTER] JOIN ..
//! ON`, `WHERE` with the full predicate language (comparisons, `BETWEEN`,
//! `IN` lists and subqueries, `EXISTS`, `LIKE`, `IS NULL`, boolean
//! operators), scalar subqueries, `CASE`, `EXTRACT`, `SUBSTRING`, `GROUP
//! BY` / `HAVING`, `ORDER BY` and `LIMIT`.

use std::fmt;

/// A full query: optional CTEs, a select body, ordering and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `WITH name AS (query), ...` common table expressions.
    pub ctes: Vec<Cte>,
    pub body: Select,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

impl Query {
    /// A query with just a body and no CTEs/ordering/limit.
    pub fn simple(body: Select) -> Self {
        Query {
            ctes: Vec::new(),
            body,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// One `WITH` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    pub query: Query,
}

/// The `SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...` core.
#[derive(Debug, Clone, PartialEq)]
#[derive(Default)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}


/// A single projection-list element.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

impl SelectItem {
    pub fn expr(expr: Expr) -> Self {
        SelectItem::Expr { expr, alias: None }
    }

    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem::Expr {
            expr,
            alias: Some(alias.into()),
        }
    }
}

/// One element of the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `name [alias]`
    Table { name: String, alias: Option<String> },
    /// `(query) alias` — a derived table.
    Subquery { query: Box<Query>, alias: String },
    /// `left [LEFT OUTER] JOIN right ON condition`
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Expr,
    },
}

impl TableRef {
    pub fn table(name: impl Into<String>) -> Self {
        TableRef::Table {
            name: name.into(),
            alias: None,
        }
    }

    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef::Table {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }

    /// The name this relation is referred to by: the alias when present,
    /// the base table name otherwise.
    pub fn binding(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
}

/// `ORDER BY` element.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Binary operators, both arithmetic and boolean/comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Plus,
    Minus,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinOp {
    /// Render as SQL.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Plus => "+",
            BinOp::Minus => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Concat => "||",
        }
    }

    /// True for comparison operators that yield booleans from scalars.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Interval units used in date arithmetic (`interval '3' month`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntervalUnit {
    Day,
    Month,
    Year,
}

impl IntervalUnit {
    pub fn sql(self) -> &'static str {
        match self {
            IntervalUnit::Day => "day",
            IntervalUnit::Month => "month",
            IntervalUnit::Year => "year",
        }
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Integer(i64),
    Decimal(f64),
    String(String),
    /// `date 'YYYY-MM-DD'`, kept textual; the engine parses it to days.
    Date(String),
    /// `interval 'n' unit`
    Interval { value: i64, unit: IntervalUnit },
    Null,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// Scalar and boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    Literal(Literal),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    Between {
        expr: Box<Expr>,
        negated: bool,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    InList {
        expr: Box<Expr>,
        negated: bool,
        list: Vec<Expr>,
    },
    InSubquery {
        expr: Box<Expr>,
        negated: bool,
        query: Box<Query>,
    },
    Exists {
        negated: bool,
        query: Box<Query>,
    },
    Like {
        expr: Box<Expr>,
        negated: bool,
        pattern: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Case {
        /// `CASE operand WHEN v THEN r ...` — `None` for searched CASE.
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
    /// Function call: aggregates (`sum`, `avg`, `min`, `max`, `count`)
    /// and scalars (`substring`, ...). `count(*)` is `Function` with a
    /// single [`Expr::Wildcard`] argument.
    Function {
        name: String,
        distinct: bool,
        args: Vec<Expr>,
    },
    /// `EXTRACT(field FROM expr)`
    Extract {
        field: IntervalUnit,
        expr: Box<Expr>,
    },
    /// `SUBSTRING(expr FROM start [FOR length])`
    Substring {
        expr: Box<Expr>,
        start: Box<Expr>,
        length: Option<Box<Expr>>,
    },
    /// Scalar subquery `(select ...)`.
    Subquery(Box<Query>),
    /// `*` inside `count(*)`.
    Wildcard,
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Column(ColumnRef::bare(name))
    }

    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Self {
        Expr::Column(ColumnRef::qualified(table, name))
    }

    pub fn int(v: i64) -> Self {
        Expr::Literal(Literal::Integer(v))
    }

    pub fn dec(v: f64) -> Self {
        Expr::Literal(Literal::Decimal(v))
    }

    pub fn str(v: impl Into<String>) -> Self {
        Expr::Literal(Literal::String(v.into()))
    }

    pub fn date(v: impl Into<String>) -> Self {
        Expr::Literal(Literal::Date(v.into()))
    }

    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Self {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinOp::And, right)
    }

    pub fn or(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinOp::Or, right)
    }

    pub fn eq(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinOp::Eq, right)
    }

    /// Fold a list of predicates into a conjunction; `None` when empty.
    pub fn conjoin(preds: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        preds.into_iter().reduce(Expr::and)
    }

    /// Split a conjunction into its top-level AND factors.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    left,
                    op: BinOp::And,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Visit every sub-expression (pre-order), including `self`.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard | Expr::Subquery(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Extract { expr, .. } => {
                expr.visit(f)
            }
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::Exists { .. } => {}
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    op.visit(f);
                }
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_branch {
                    e.visit(f);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Substring {
                expr,
                start,
                length,
            } => {
                expr.visit(f);
                start.visit(f);
                if let Some(l) = length {
                    l.visit(f);
                }
            }
        }
    }

    /// Collect all column references in this expression (not descending
    /// into subqueries).
    pub fn columns(&self) -> Vec<&ColumnRef> {
        let mut cols = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column(c) = e {
                cols.push(c);
            }
        });
        cols
    }

    /// True when the expression contains an aggregate function call
    /// (`sum`, `count`, `avg`, `min`, `max`), not descending into
    /// subqueries.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if is_aggregate(name) {
                    found = true;
                }
            }
        });
        found
    }
}

/// True for the aggregate function names the engine understands.
pub fn is_aggregate(name: &str) -> bool {
    matches!(name, "sum" | "count" | "avg" | "min" | "max")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_splits_nested_ands() {
        let e = Expr::and(
            Expr::and(Expr::col("a"), Expr::col("b")),
            Expr::or(Expr::col("c"), Expr::col("d")),
        );
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &Expr::col("a"));
        assert!(matches!(parts[2], Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn conjoin_round_trips() {
        let preds = vec![Expr::col("a"), Expr::col("b"), Expr::col("c")];
        let combined = Expr::conjoin(preds).unwrap();
        assert_eq!(combined.conjuncts().len(), 3);
        assert_eq!(Expr::conjoin(Vec::new()), None);
    }

    #[test]
    fn columns_collects_qualified_and_bare() {
        let e = Expr::binary(
            Expr::qcol("l", "tax"),
            BinOp::Plus,
            Expr::binary(Expr::col("disc"), BinOp::Mul, Expr::int(2)),
        );
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].table.as_deref(), Some("l"));
        assert_eq!(cols[1].column, "disc");
    }

    #[test]
    fn contains_aggregate_detects_nested() {
        let e = Expr::binary(
            Expr::int(1),
            BinOp::Plus,
            Expr::Function {
                name: "sum".into(),
                distinct: false,
                args: vec![Expr::col("x")],
            },
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn binding_prefers_alias() {
        assert_eq!(TableRef::aliased("lineitem", "l1").binding(), Some("l1"));
        assert_eq!(TableRef::table("nation").binding(), Some("nation"));
    }
}
