//! # sqalpel-sql
//!
//! SQL front-end for the sqalpel platform: a hand-written lexer, a
//! recursive-descent parser, a typed AST and a canonical printer.
//!
//! The dialect is the analytic subset needed by TPC-H/SSB-style workloads —
//! all 22 TPC-H queries parse and round-trip (see [`tpch`]). The canonical
//! printed form (uppercase keywords, lowercase identifiers, minimal
//! parentheses) is what the rest of the platform stores, dedups on and
//! diffs.
//!
//! ```
//! use sqalpel_sql::parse_query;
//!
//! let q = parse_query("select count(*) from nation where n_name = 'BRAZIL'").unwrap();
//! assert_eq!(
//!     q.to_string(),
//!     "SELECT count(*) FROM nation WHERE n_name = 'BRAZIL'",
//! );
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod ssb;
pub mod tpch;
pub mod token;

pub use ast::{
    BinOp, ColumnRef, Cte, Expr, IntervalUnit, JoinKind, Literal, OrderItem, Query, Select,
    SelectItem, TableRef, UnaryOp,
};
pub use error::{ParseError, ParseResult, Pos};
pub use lexer::Lexer;
pub use parser::{parse_expr, parse_query, Parser};
pub use token::{Spanned, Token};
