//! Star Schema Benchmark query flight, adapted to this workspace's star
//! schema.
//!
//! The schema (`sqalpel-datagen`'s derivation) keeps the SSB `lineorder`
//! fact table and `date_dim` dimension verbatim, but reuses the TPC-H
//! `customer`/`supplier`/`part`/`nation`/`region` tables as dimensions
//! instead of SSB's denormalized ones. Queries that reference SSB-only
//! dimension columns (`c_region`, `s_city`, `p_category`, …) are
//! therefore rewritten onto the TPC-H normalization — e.g. `s_region =
//! 'AMERICA'` becomes the `supplier ⋈ nation ⋈ region` path. Selectivity
//! structure and join shapes are preserved.

/// SSB Q1.1 — revenue from discount-range line orders of one year.
pub const Q1_1: &str = "\
select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, date_dim
where lo_orderdate = d_datekey
  and d_year = 1993
  and lo_discount between 1 and 3
  and lo_quantity < 25";

/// SSB Q1.2 — one month, tighter discount band.
pub const Q1_2: &str = "\
select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, date_dim
where lo_orderdate = d_datekey
  and d_yearmonthnum = 199401
  and lo_discount between 4 and 6
  and lo_quantity between 26 and 35";

/// SSB Q1.3 — one week of one year.
pub const Q1_3: &str = "\
select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, date_dim
where lo_orderdate = d_datekey
  and d_weeknuminyear = 6
  and d_year = 1994
  and lo_discount between 5 and 7
  and lo_quantity between 26 and 35";

/// SSB Q2.1 — revenue by year and brand for one part brand class and one
/// supplier region (TPC-H normalization of `p_category`/`s_region`).
pub const Q2_1: &str = "\
select d_year, p_brand, sum(lo_revenue) as revenue
from lineorder, date_dim, part, supplier, nation, region
where lo_orderdate = d_datekey
  and lo_partkey = p_partkey
  and lo_suppkey = s_suppkey
  and p_mfgr = 'Manufacturer#1'
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = 'AMERICA'
group by d_year, p_brand
order by d_year, p_brand";

/// SSB Q3.1 — customer/supplier nation flows within a region over years.
pub const Q3_1: &str = "\
select c_nation, s_nation, d_year, sum(lo_revenue) as revenue
from (
  select n1.n_name as c_nation, n2.n_name as s_nation, d_year, lo_revenue
  from lineorder, date_dim, customer, supplier, nation n1, nation n2, region
  where lo_orderdate = d_datekey
    and lo_custkey = c_custkey
    and lo_suppkey = s_suppkey
    and c_nationkey = n1.n_nationkey
    and s_nationkey = n2.n_nationkey
    and n1.n_regionkey = r_regionkey
    and n2.n_regionkey = r_regionkey
    and r_name = 'ASIA'
    and d_year >= 1992 and d_year <= 1997) flows
group by c_nation, s_nation, d_year
order by d_year, revenue desc";

/// SSB Q3.2 — one customer nation, supplier nations, by year.
pub const Q3_2: &str = "\
select s_name, d_year, sum(lo_revenue) as revenue
from lineorder, date_dim, customer, supplier, nation
where lo_orderdate = d_datekey
  and lo_custkey = c_custkey
  and lo_suppkey = s_suppkey
  and c_nationkey = n_nationkey
  and n_name = 'UNITED STATES'
  and d_year >= 1992 and d_year <= 1997
group by s_name, d_year
order by d_year, revenue desc
limit 20";

/// SSB Q4.1 — profit by year and customer nation within a region.
pub const Q4_1: &str = "\
select d_year, n_name, sum(lo_revenue - lo_supplycost) as profit
from lineorder, date_dim, customer, nation, region
where lo_orderdate = d_datekey
  and lo_custkey = c_custkey
  and c_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = 'AMERICA'
group by d_year, n_name
order by d_year, n_name";

/// SSB Q4.2 — profit drill-down: years 1997-1998, by supplier nation and
/// part manufacturer.
pub const Q4_2: &str = "\
select d_year, n_name, p_mfgr, sum(lo_revenue - lo_supplycost) as profit
from lineorder, date_dim, supplier, part, nation
where lo_orderdate = d_datekey
  and lo_suppkey = s_suppkey
  and lo_partkey = p_partkey
  and s_nationkey = n_nationkey
  and d_year >= 1997
group by d_year, n_name, p_mfgr
order by d_year, n_name, p_mfgr";

/// The adapted SSB flight, in order.
pub fn all_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        ("SSB-Q1.1", Q1_1),
        ("SSB-Q1.2", Q1_2),
        ("SSB-Q1.3", Q1_3),
        ("SSB-Q2.1", Q2_1),
        ("SSB-Q3.1", Q3_1),
        ("SSB-Q3.2", Q3_2),
        ("SSB-Q4.1", Q4_1),
        ("SSB-Q4.2", Q4_2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn all_ssb_queries_parse_and_round_trip() {
        for (name, sql) in all_queries() {
            let q = parse_query(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
            let printed = q.to_string();
            let q2 = parse_query(&printed)
                .unwrap_or_else(|e| panic!("{name} reparse: {e}\n{printed}"));
            assert_eq!(q, q2, "{name} round trip changed the AST");
        }
    }

    #[test]
    fn flight_covers_all_four_groups() {
        let names: Vec<&str> = all_queries().iter().map(|(n, _)| *n).collect();
        for group in ["Q1", "Q2", "Q3", "Q4"] {
            assert!(
                names.iter().any(|n| n.contains(group)),
                "missing group {group}"
            );
        }
    }
}
