//! Error types for lexing and parsing.

use std::fmt;

/// Position of a token or error in the input text (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    pub line: u32,
    pub column: u32,
}

impl Pos {
    pub const fn new(line: u32, column: u32) -> Self {
        Pos { line, column }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A lexing or parsing failure, with the position it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: Pos,
    pub message: String,
}

impl ParseError {
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(Pos::new(3, 14), "unexpected token");
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token");
    }

    #[test]
    fn pos_default_is_origin() {
        assert_eq!(Pos::default(), Pos::new(0, 0));
    }
}
