//! A hand-written SQL tokenizer.
//!
//! Supports the lexical surface needed by TPC-H/SSB-style analytic SQL:
//! identifiers, integer and decimal literals, single-quoted strings with
//! `''` escaping, the usual operators, and `--` line comments plus
//! `/* ... */` block comments.

use crate::error::{ParseError, ParseResult, Pos};
use crate::token::{Spanned, Token};

/// Streaming tokenizer over an input string.
pub struct Lexer<'a> {
    src: &'a [u8],
    idx: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            idx: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenize the whole input, appending a final [`Token::Eof`].
    pub fn tokenize(src: &str) -> ParseResult<Vec<Spanned>> {
        let mut lexer = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let spanned = lexer.next_token()?;
            let done = spanned.token == Token::Eof;
            out.push(spanned);
            if done {
                return Ok(out);
            }
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.idx += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> ParseResult<Spanned> {
        self.skip_trivia()?;
        let pos = self.pos();
        let token = match self.peek() {
            None => Token::Eof,
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.lex_word(),
            Some(c) if c.is_ascii_digit() => self.lex_number(pos)?,
            Some(b'\'') => self.lex_string(pos)?,
            Some(b'"') => self.lex_quoted_ident(pos)?,
            Some(b'(') => self.single(Token::LParen),
            Some(b')') => self.single(Token::RParen),
            Some(b',') => self.single(Token::Comma),
            Some(b';') => self.single(Token::Semicolon),
            Some(b'.') => self.single(Token::Period),
            Some(b'+') => self.single(Token::Plus),
            Some(b'-') => self.single(Token::Minus),
            Some(b'*') => self.single(Token::Star),
            Some(b'/') => self.single(Token::Slash),
            Some(b'%') => self.single(Token::Percent),
            Some(b'=') => self.single(Token::Eq),
            Some(b'|') => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Token::Concat
                } else {
                    return Err(ParseError::new(pos, "expected '||'"));
                }
            }
            Some(b'<') => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Token::LtEq
                    }
                    Some(b'>') => {
                        self.bump();
                        Token::NotEq
                    }
                    _ => Token::Lt,
                }
            }
            Some(b'>') => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::GtEq
                } else {
                    Token::Gt
                }
            }
            Some(b'!') => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::NotEq
                } else {
                    return Err(ParseError::new(pos, "expected '!='"));
                }
            }
            Some(c) => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character {:?}", c as char),
                ))
            }
        };
        Ok(Spanned { token, pos })
    }

    fn single(&mut self, t: Token) -> Token {
        self.bump();
        t
    }

    fn lex_word(&mut self) -> Token {
        let start = self.idx;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        // Identifiers are normalized to lowercase; SQL is case-insensitive
        // and canonical case keeps dedup and diffs stable.
        let text = std::str::from_utf8(&self.src[start..self.idx])
            .expect("ascii word")
            .to_ascii_lowercase();
        Token::Word(text)
    }

    fn lex_number(&mut self, pos: Pos) -> ParseResult<Token> {
        let start = self.idx;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_decimal = false;
        // A '.' only belongs to the number when followed by a digit, so that
        // `1.` in `t1.c` style input still lexes as integer + period.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_decimal = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E'))
            && matches!(self.peek2(), Some(c) if c.is_ascii_digit() || c == b'+' || c == b'-')
        {
            is_decimal = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.idx]).expect("ascii number");
        if is_decimal {
            text.parse::<f64>()
                .map(Token::Decimal)
                .map_err(|e| ParseError::new(pos, format!("invalid decimal literal: {e}")))
        } else {
            text.parse::<i64>()
                .map(Token::Integer)
                .map_err(|e| ParseError::new(pos, format!("invalid integer literal: {e}")))
        }
    }

    fn lex_string(&mut self, pos: Pos) -> ParseResult<Token> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        out.push('\'');
                    } else {
                        return Ok(Token::String(out));
                    }
                }
                Some(c) => out.push(c as char),
                None => return Err(ParseError::new(pos, "unterminated string literal")),
            }
        }
    }

    fn lex_quoted_ident(&mut self, pos: Pos) -> ParseResult<Token> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(Token::Word(out)),
                Some(c) => out.push((c as char).to_ascii_lowercase()),
                None => return Err(ParseError::new(pos, "unterminated quoted identifier")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn words_lowercased() {
        assert_eq!(
            toks("SELECT N_Name"),
            vec![
                Token::Word("select".into()),
                Token::Word("n_name".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0.05 1e3"),
            vec![
                Token::Integer(42),
                Token::Decimal(0.05),
                Token::Decimal(1000.0),
                Token::Eof
            ]
        );
    }

    #[test]
    fn qualified_column_is_word_period_word() {
        assert_eq!(
            toks("l.tax"),
            vec![
                Token::Word("l".into()),
                Token::Period,
                Token::Word("tax".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("'BRAZIL' 'O''Neil'"),
            vec![
                Token::String("BRAZIL".into()),
                Token::String("O'Neil".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= >= <> != < > = + - * / %"),
            vec![
                Token::LtEq,
                Token::GtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("select -- trailing\n/* block\ncomment */ 1"),
            vec![Token::Word("select".into()), Token::Integer(1), Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = Lexer::tokenize("'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.pos, Pos::new(1, 1));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(Lexer::tokenize("/* nope").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let spanned = Lexer::tokenize("select\n  x").unwrap();
        assert_eq!(spanned[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            toks("\"Group\""),
            vec![Token::Word("group".into()), Token::Eof]
        );
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(Lexer::tokenize("select @x").is_err());
    }
}
