//! Canonical SQL rendering.
//!
//! Every AST node implements [`std::fmt::Display`], producing a single-line
//! canonical form: uppercase keywords, lowercase identifiers, single
//! spaces, explicit parentheses only where grouping requires them. The
//! canonical form is what the platform stores, dedups on, and diffs.

use crate::ast::*;
use std::fmt::{self, Write as _};

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.ctes.is_empty() {
            f.write_str("WITH ")?;
            for (i, cte) in self.ctes.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{} AS ({})", cte.name, cte.query)?;
            }
            f.write_char(' ')?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", item.expr)?;
                if item.desc {
                    f.write_str(" DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_char('*'),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias } => {
                f.write_str(name)?;
                if let Some(a) = alias {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => write!(f, "({query}) {alias}"),
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::LeftOuter => "LEFT OUTER JOIN",
                };
                write!(f, "{left} {kw} {right} ON {on}")
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Integer(i) => write!(f, "{i}"),
            Literal::Decimal(d) => {
                if d.fract() == 0.0 && d.abs() < 1e15 {
                    write!(f, "{d:.1}")
                } else {
                    write!(f, "{d}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Date(d) => write!(f, "DATE '{d}'"),
            Literal::Interval { value, unit } => {
                write!(f, "INTERVAL '{value}' {}", unit.sql().to_uppercase())
            }
            Literal::Null => f.write_str("NULL"),
        }
    }
}

/// Binding power used to decide parenthesization when printing.
fn power(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            op if op.is_comparison() => 4,
            BinOp::Plus | BinOp::Minus | BinOp::Concat => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
            _ => 4,
        },
        Expr::Unary { op: UnaryOp::Not, .. } => 3,
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Like { .. }
        | Expr::IsNull { .. } => 4,
        _ => 10,
    }
}

/// Write `child`, parenthesized if it binds looser than `parent_power`.
fn child(f: &mut fmt::Formatter<'_>, e: &Expr, parent_power: u8) -> fmt::Result {
    if power(e) < parent_power {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Wildcard => f.write_char('*'),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    f.write_char('-')?;
                    child(f, expr, 7)
                }
                UnaryOp::Not => {
                    f.write_str("NOT ")?;
                    child(f, expr, 4)
                }
            },
            Expr::Binary { left, op, right } => {
                let p = power(self);
                child(f, left, p)?;
                match op {
                    BinOp::And => f.write_str(" AND ")?,
                    BinOp::Or => f.write_str(" OR ")?,
                    other => write!(f, " {} ", other.sql())?,
                }
                // Right child at p+1 keeps left-associative chains unparenthesized
                // while forcing parens on same-power right nesting (a - (b - c)).
                child(f, right, p + 1)
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                child(f, expr, 5)?;
                if *negated {
                    f.write_str(" NOT")?;
                }
                f.write_str(" BETWEEN ")?;
                child(f, low, 5)?;
                f.write_str(" AND ")?;
                child(f, high, 5)
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                child(f, expr, 5)?;
                if *negated {
                    f.write_str(" NOT")?;
                }
                f.write_str(" IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_char(')')
            }
            Expr::InSubquery {
                expr,
                negated,
                query,
            } => {
                child(f, expr, 5)?;
                if *negated {
                    f.write_str(" NOT")?;
                }
                write!(f, " IN ({query})")
            }
            Expr::Exists { negated, query } => {
                if *negated {
                    f.write_str("NOT ")?;
                }
                write!(f, "EXISTS ({query})")
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                child(f, expr, 5)?;
                if *negated {
                    f.write_str(" NOT")?;
                }
                f.write_str(" LIKE ")?;
                child(f, pattern, 5)
            }
            Expr::IsNull { expr, negated } => {
                child(f, expr, 5)?;
                if *negated {
                    f.write_str(" IS NOT NULL")
                } else {
                    f.write_str(" IS NULL")
                }
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_branch {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Function {
                name,
                distinct,
                args,
            } => {
                write!(f, "{name}(")?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_char(')')
            }
            Expr::Extract { field, expr } => {
                write!(f, "EXTRACT({} FROM {expr})", field.sql().to_uppercase())
            }
            Expr::Substring {
                expr,
                start,
                length,
            } => {
                write!(f, "SUBSTRING({expr} FROM {start}")?;
                if let Some(l) = length {
                    write!(f, " FOR {l}")?;
                }
                f.write_char(')')
            }
            Expr::Subquery(q) => write!(f, "({q})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_expr, parse_query};

    /// Parse → print → parse must be a fixpoint.
    fn round_trip(sql: &str) -> String {
        let q = parse_query(sql).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(q, q2, "round trip changed the AST for {sql:?}");
        printed
    }

    #[test]
    fn simple_round_trip() {
        let p = round_trip("select n_name from nation where n_name = 'BRAZIL'");
        assert_eq!(p, "SELECT n_name FROM nation WHERE n_name = 'BRAZIL'");
    }

    #[test]
    fn parenthesizes_or_under_and() {
        let p = round_trip("select 1 from t where a = 1 and (b = 2 or c = 3)");
        assert!(p.contains("AND (b = 2 OR c = 3)"), "{p}");
    }

    #[test]
    fn no_spurious_parens_in_and_chain() {
        let p = round_trip("select 1 from t where a = 1 and b = 2 and c = 3");
        assert!(p.contains("WHERE a = 1 AND b = 2 AND c = 3"), "{p}");
    }

    #[test]
    fn arithmetic_parens() {
        let p = parse_expr("l_extendedprice * (1 - l_discount)")
            .unwrap()
            .to_string();
        assert_eq!(p, "l_extendedprice * (1 - l_discount)");
        let q = parse_expr("(a + b) * c").unwrap().to_string();
        assert_eq!(q, "(a + b) * c");
        let r = parse_expr("a - (b - c)").unwrap().to_string();
        assert_eq!(r, "a - (b - c)");
        let s = parse_expr("a - b - c").unwrap().to_string();
        assert_eq!(s, "a - b - c");
    }

    #[test]
    fn case_round_trip() {
        round_trip(
            "select sum(case when p_type like 'PROMO%' then l_extendedprice else 0 end) \
             from lineitem, part where l_partkey = p_partkey",
        );
    }

    #[test]
    fn full_clause_round_trip() {
        let p = round_trip(
            "with r as (select 1 as x from t) select a, count(*) as n from t1 u, r \
             left outer join t2 on a = b where c between 1 and 2 group by a \
             having count(*) > 3 order by n desc, a limit 5",
        );
        assert!(p.starts_with("WITH r AS ("), "{p}");
        assert!(p.ends_with("LIMIT 5"), "{p}");
    }

    #[test]
    fn date_interval_literals() {
        let p = parse_expr("date '1994-01-01' + interval '3' month")
            .unwrap()
            .to_string();
        assert_eq!(p, "DATE '1994-01-01' + INTERVAL '3' MONTH");
    }

    #[test]
    fn not_exists_round_trip() {
        round_trip(
            "select 1 from orders where not exists (select * from lineitem \
             where l_orderkey = o_orderkey)",
        );
    }

    #[test]
    fn decimal_prints_reparseable() {
        let p = parse_expr("x > 0.05").unwrap().to_string();
        assert_eq!(p, "x > 0.05");
        let q = parse_expr("x > 7.0").unwrap().to_string();
        assert_eq!(q, "x > 7.0");
    }
}
