//! Grammar editing operations (paper §3.2/§5.3).
//!
//! "This query pool size is controlled by the project owner. Grammar
//! rules can be fused to reduce the search space by editing the grammar
//! directly" and "in case the grammar produces too many semantic
//! incorrect queries or leads to exorbitant large space, a manual edit of
//! the grammar is called for, e.g., some alternatives can be removed by
//! making join-paths explicit."
//!
//! Every operation validates its preconditions and leaves the grammar in
//! a state that still passes [`crate::validate`].

use crate::ast::{Alternative, Element, Grammar};
use std::fmt;

/// An editing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    UnknownRule(String),
    UnknownLiteral { class: String, index: usize },
    NotLexical(String),
    /// Removing the last alternative would leave an underivable rule.
    WouldEmptyRule(String),
    /// The edit would break validation (message from the report).
    WouldInvalidate(String),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownRule(r) => write!(f, "unknown rule {r}"),
            EditError::UnknownLiteral { class, index } => {
                write!(f, "class {class} has no literal #{index}")
            }
            EditError::NotLexical(r) => write!(f, "rule {r} is not a lexical class"),
            EditError::WouldEmptyRule(r) => {
                write!(f, "removing the last alternative of {r}")
            }
            EditError::WouldInvalidate(m) => write!(f, "edit breaks the grammar: {m}"),
        }
    }
}

impl std::error::Error for EditError {}

impl Grammar {
    /// Remove one literal from a lexical class, shrinking the space.
    pub fn remove_literal(&mut self, class: &str, index: usize) -> Result<(), EditError> {
        let rule = self
            .rule_mut(class)
            .ok_or_else(|| EditError::UnknownRule(class.to_string()))?;
        if !rule.is_lexical() {
            return Err(EditError::NotLexical(class.to_string()));
        }
        if index >= rule.alternatives.len() {
            return Err(EditError::UnknownLiteral {
                class: class.to_string(),
                index,
            });
        }
        if rule.alternatives.len() == 1 {
            return Err(EditError::WouldEmptyRule(class.to_string()));
        }
        rule.alternatives.remove(index);
        // Dialect sections shadow literals positionally; drop the same slot.
        for alts in rule.dialects.values_mut() {
            if index < alts.len() {
                alts.remove(index);
            }
        }
        Ok(())
    }

    /// Remove one alternative from a structural rule (e.g. dropping a
    /// join-path the owner wants fixed).
    pub fn remove_alternative(&mut self, name: &str, index: usize) -> Result<(), EditError> {
        let probe = self.clone();
        {
            let rule = self
                .rule_mut(name)
                .ok_or_else(|| EditError::UnknownRule(name.to_string()))?;
            if index >= rule.alternatives.len() {
                return Err(EditError::UnknownLiteral {
                    class: name.to_string(),
                    index,
                });
            }
            if rule.alternatives.len() == 1 {
                return Err(EditError::WouldEmptyRule(name.to_string()));
            }
            rule.alternatives.remove(index);
        }
        // Dropping an alternative can orphan rules it alone referenced;
        // prune those, then re-validate.
        self.prune_dead();
        let report = self.check();
        if !report.is_ok() {
            *self = probe;
            return Err(EditError::WouldInvalidate(report.to_string()));
        }
        Ok(())
    }

    /// Fuse lexical class `src` into `dst`: `dst` gains `src`'s literals,
    /// every reference to `src` is rewritten to `dst`, and `src` is
    /// removed. This is the paper's space-reduction fuse — afterwards the
    /// two classes share one literal-once budget.
    pub fn fuse_classes(&mut self, dst: &str, src: &str) -> Result<(), EditError> {
        if dst == src {
            return Ok(());
        }
        for name in [dst, src] {
            let rule = self
                .rule(name)
                .ok_or_else(|| EditError::UnknownRule(name.to_string()))?;
            if !rule.is_lexical() {
                return Err(EditError::NotLexical(name.to_string()));
            }
        }
        let moved = self.rule(src).expect("checked above").alternatives.clone();
        self.rule_mut(dst)
            .expect("checked above")
            .alternatives
            .extend(moved);
        // Rewrite references and drop the source class.
        for rule in &mut self.rules {
            for alt in rule
                .alternatives
                .iter_mut()
                .chain(rule.dialects.values_mut().flatten())
            {
                for e in &mut alt.elements {
                    if let Element::Ref { name, .. } = e {
                        if name == src {
                            *name = dst.to_string();
                        }
                    }
                }
            }
        }
        self.rules.retain(|r| r.name != src);
        Ok(())
    }

    /// Add a literal to a lexical class (expanding the space — e.g. a new
    /// predicate constant the owner wants explored).
    pub fn add_literal(&mut self, class: &str, text: &str) -> Result<usize, EditError> {
        let rule = self
            .rule_mut(class)
            .ok_or_else(|| EditError::UnknownRule(class.to_string()))?;
        if !rule.is_lexical() {
            return Err(EditError::NotLexical(class.to_string()));
        }
        rule.alternatives
            .push(Alternative::new(vec![Element::text(text)]));
        Ok(rule.alternatives.len() - 1)
    }

    /// Drop rules unreachable from the start rule (used after edits).
    pub fn prune_dead(&mut self) {
        let report = self.check();
        if report.dead.is_empty() {
            return;
        }
        self.rules.retain(|r| !report.dead.contains(&r.name));
        // Pruning can cascade (a dead rule kept another alive).
        self.prune_dead();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::template::space_report;

    fn fig1() -> Grammar {
        parse(crate::FIG1_GRAMMAR).unwrap()
    }

    #[test]
    fn remove_literal_shrinks_space() {
        let mut g = fig1();
        assert_eq!(space_report(&g, 1000).unwrap().space, 32);
        g.remove_literal("l_column", 3).unwrap(); // drop n_comment
        assert!(g.check().is_ok());
        // projection: count path 2; column paths Σ C(3,k)·2 = 14 → 16.
        assert_eq!(space_report(&g, 1000).unwrap().space, 16);
        assert!(!g.to_string().contains("n_comment"));
    }

    #[test]
    fn remove_literal_errors() {
        let mut g = fig1();
        assert!(matches!(
            g.remove_literal("nope", 0),
            Err(EditError::UnknownRule(_))
        ));
        assert!(matches!(
            g.remove_literal("l_column", 9),
            Err(EditError::UnknownLiteral { .. })
        ));
        assert!(matches!(
            g.remove_literal("projection", 0),
            Err(EditError::NotLexical(_))
        ));
        assert!(matches!(
            g.remove_literal("l_count", 0),
            Err(EditError::WouldEmptyRule(_))
        ));
    }

    #[test]
    fn remove_alternative_prunes_orphans() {
        let mut g = fig1();
        // Dropping the count(*) alternative orphans l_count.
        g.remove_alternative("projection", 0).unwrap();
        assert!(g.check().is_ok());
        assert!(g.rule("l_count").is_none(), "orphan should be pruned");
        // Space: column paths only: Σ C(4,k) × 2 = 30.
        assert_eq!(space_report(&g, 1000).unwrap().space, 30);
    }

    #[test]
    fn remove_last_alternative_rejected() {
        let mut g = fig1();
        assert!(matches!(
            g.remove_alternative("query", 0),
            Err(EditError::WouldEmptyRule(_))
        ));
    }

    #[test]
    fn fuse_classes_merges_budgets() {
        let mut g = parse(
            "q:\n    ${l_a} ${l_b}\nl_a:\n    x\n    y\nl_b:\n    u\n    v\n",
        )
        .unwrap();
        // Before: choose 1 of 2 × 1 of 2 = 4.
        assert_eq!(space_report(&g, 100).unwrap().space, 4);
        g.fuse_classes("l_a", "l_b").unwrap();
        assert!(g.check().is_ok());
        assert!(g.rule("l_b").is_none());
        assert_eq!(g.class_size("l_a"), 4);
        // After: two slots over one 4-literal class = C(4,2) counted once
        // per multiset template = 6.
        assert_eq!(space_report(&g, 100).unwrap().space, 6);
    }

    #[test]
    fn fuse_rejects_structural_rules() {
        let mut g = fig1();
        assert!(matches!(
            g.fuse_classes("projection", "l_column"),
            Err(EditError::NotLexical(_))
        ));
        // Self-fuse is a no-op.
        g.fuse_classes("l_column", "l_column").unwrap();
        assert_eq!(g.class_size("l_column"), 4);
    }

    #[test]
    fn add_literal_grows_space() {
        let mut g = fig1();
        let idx = g.add_literal("l_column", "n_nationkey + 1").unwrap();
        assert_eq!(idx, 4);
        assert!(g.check().is_ok());
        // Σ C(5,k)·2 + 2 = 62 + 2 = 64.
        assert_eq!(space_report(&g, 1000).unwrap().space, 64);
    }

    #[test]
    fn edits_keep_generated_queries_parseable() {
        let mut g = fig1();
        g.remove_literal("l_column", 0).unwrap();
        g.add_literal("l_column", "n_regionkey + 1").unwrap();
        let set = g.templates(1000).unwrap();
        let mut rng = crate::generate::seeded_rng(3);
        for _ in 0..20 {
            let sql =
                crate::generate::random_query(&g, &set.templates, &mut rng, None).unwrap();
            assert!(sqalpel_sql::parse_query(&sql).is_ok(), "{sql}");
        }
    }
}
