//! Concrete query generation: filling template slots with literals.
//!
//! The final step of §3.1 — "injection of tokens that embody predicates,
//! expressions, and other text snippets". A template's slots are filled
//! with *distinct* literals per class (the literal-once rule); the
//! assignment is either explicit (a [`Choice`] map, enumerable) or random.

use crate::ast::Grammar;
use crate::template::{Piece, Template};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// An explicit literal assignment: class → ordered literal indices (one
/// per slot of that class, all distinct).
pub type Choice = BTreeMap<String, Vec<usize>>;

/// Generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    UnknownClass(String),
    /// Not enough (or non-distinct) literals supplied for a class.
    BadChoice(String),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::UnknownClass(c) => write!(f, "unknown lexical class {c}"),
            GenerateError::BadChoice(c) => write!(f, "invalid literal choice for class {c}"),
        }
    }
}

impl std::error::Error for GenerateError {}

/// Instantiate a template with an explicit choice of literals.
///
/// `dialect` selects dialect-specific literal text when the class defines
/// a matching section.
pub fn instantiate(
    g: &Grammar,
    template: &Template,
    choice: &Choice,
    dialect: Option<&str>,
) -> Result<String, GenerateError> {
    // Validate the choice against the template's slot counts.
    for (class, &need) in &template.counts {
        let given = choice
            .get(class)
            .ok_or_else(|| GenerateError::BadChoice(class.clone()))?;
        if given.len() != need {
            return Err(GenerateError::BadChoice(class.clone()));
        }
        let mut sorted = given.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != need {
            return Err(GenerateError::BadChoice(class.clone()));
        }
        let size = g.class_size(class);
        if given.iter().any(|&i| i >= size) {
            return Err(GenerateError::BadChoice(class.clone()));
        }
    }
    let mut cursor: BTreeMap<&str, usize> = BTreeMap::new();
    let mut out = String::new();
    for piece in &template.skeleton {
        match piece {
            Piece::Text(t) => out.push_str(t),
            Piece::Slot(class) => {
                let rule = g
                    .rule(class)
                    .ok_or_else(|| GenerateError::UnknownClass(class.clone()))?;
                let pos = cursor.entry(class.as_str()).or_insert(0);
                let lit_idx = choice[class.as_str()][*pos];
                *pos += 1;
                let alts = rule.alternatives_for(dialect);
                // Dialect sections may override fewer literals than the
                // default set; fall back per literal.
                let text = alts
                    .get(lit_idx)
                    .or_else(|| rule.alternatives.get(lit_idx))
                    .ok_or_else(|| GenerateError::BadChoice(class.clone()))?
                    .literal_text();
                out.push_str(&text);
            }
        }
    }
    Ok(normalize_spaces(&out))
}

/// Instantiate with a uniformly random distinct-literal choice.
pub fn instantiate_random(
    g: &Grammar,
    template: &Template,
    rng: &mut StdRng,
    dialect: Option<&str>,
) -> Result<String, GenerateError> {
    let choice = random_choice(g, template, rng)?;
    instantiate(g, template, &choice, dialect)
}

/// Draw a random valid [`Choice`] for a template.
pub fn random_choice(
    g: &Grammar,
    template: &Template,
    rng: &mut StdRng,
) -> Result<Choice, GenerateError> {
    let mut choice = Choice::new();
    for (class, &k) in &template.counts {
        let n = g.class_size(class);
        if n < k {
            return Err(GenerateError::BadChoice(class.clone()));
        }
        // Partial Fisher-Yates over the index range.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.random_range(i..n);
            idx.swap(i, j);
        }
        let mut picked = idx[..k].to_vec();
        // Canonical order: order is ignored by the space semantics, so
        // emit literals in grammar order for deterministic dedup.
        picked.sort_unstable();
        choice.insert(class.clone(), picked);
    }
    Ok(choice)
}

/// Sample a random query from the whole grammar: random template (from an
/// enumerated set), then random literals.
pub fn random_query(
    g: &Grammar,
    templates: &[Template],
    rng: &mut StdRng,
    dialect: Option<&str>,
) -> Result<String, GenerateError> {
    assert!(!templates.is_empty(), "no templates to sample from");
    let t = &templates[rng.random_range(0..templates.len())];
    instantiate_random(g, t, rng, dialect)
}

/// Deterministic RNG for pool walks and tests.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Collapse runs of spaces (grammar text concatenation can double them).
fn normalize_spaces(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = false;
    for c in s.trim().chars() {
        if c == ' ' {
            if !last_space {
                out.push(c);
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::template::enumerate;

    fn fig1() -> Grammar {
        parse(crate::FIG1_GRAMMAR).unwrap()
    }

    #[test]
    fn explicit_instantiation() {
        let g = fig1();
        let set = enumerate(&g, 1000).unwrap();
        // Find the template with 2 columns and the filter.
        let t = set
            .templates
            .iter()
            .find(|t| {
                t.counts.get("l_column") == Some(&2) && t.counts.contains_key("l_filter")
            })
            .unwrap();
        let mut choice = Choice::new();
        choice.insert("l_column".into(), vec![0, 2]);
        choice.insert("l_tables".into(), vec![0]);
        choice.insert("l_filter".into(), vec![0]);
        let sql = instantiate(&g, t, &choice, None).unwrap();
        assert_eq!(
            sql,
            "SELECT n_nationkey , n_regionkey FROM nation WHERE n_name= 'BRAZIL'"
        );
    }

    #[test]
    fn generated_queries_parse_as_sql() {
        let g = fig1();
        let set = enumerate(&g, 1000).unwrap();
        let mut rng = seeded_rng(42);
        for _ in 0..50 {
            let sql = random_query(&g, &set.templates, &mut rng, None).unwrap();
            sqalpel_sql::parse_query(&sql)
                .unwrap_or_else(|e| panic!("generated invalid SQL {sql:?}: {e}"));
        }
    }

    #[test]
    fn random_choice_is_distinct_and_in_range() {
        let g = fig1();
        let set = enumerate(&g, 1000).unwrap();
        let t = set
            .templates
            .iter()
            .find(|t| t.counts.get("l_column") == Some(&3))
            .unwrap();
        let mut rng = seeded_rng(7);
        for _ in 0..100 {
            let c = random_choice(&g, t, &mut rng).unwrap();
            let cols = &c["l_column"];
            assert_eq!(cols.len(), 3);
            let mut d = cols.clone();
            d.dedup();
            assert_eq!(d.len(), 3, "literals must be distinct: {cols:?}");
            assert!(cols.iter().all(|&i| i < 4));
        }
    }

    #[test]
    fn bad_choices_rejected() {
        let g = fig1();
        let set = enumerate(&g, 1000).unwrap();
        let t = set
            .templates
            .iter()
            .find(|t| t.counts.get("l_column") == Some(&2))
            .unwrap();
        let mut wrong_len = Choice::new();
        wrong_len.insert("l_column".into(), vec![0]);
        wrong_len.insert("l_tables".into(), vec![0]);
        assert!(instantiate(&g, t, &wrong_len, None).is_err());

        let mut dup = Choice::new();
        dup.insert("l_column".into(), vec![1, 1]);
        dup.insert("l_tables".into(), vec![0]);
        assert!(instantiate(&g, t, &dup, None).is_err());

        let mut oob = Choice::new();
        oob.insert("l_column".into(), vec![0, 9]);
        oob.insert("l_tables".into(), vec![0]);
        assert!(instantiate(&g, t, &oob, None).is_err());
    }

    #[test]
    fn dialect_literals_used() {
        let src = "q:\n    SELECT ${l_c} FROM t\nl_c:\n    a\n    b\nl_c@legacydb:\n    \"a\"\n    \"b\"\n";
        let g = parse(src).unwrap();
        let set = enumerate(&g, 100).unwrap();
        let t = set.templates.iter().find(|t| t.counts["l_c"] == 1).unwrap();
        let mut choice = Choice::new();
        choice.insert("l_c".into(), vec![1]);
        assert_eq!(instantiate(&g, t, &choice, None).unwrap(), "SELECT b FROM t");
        assert_eq!(
            instantiate(&g, t, &choice, Some("legacydb")).unwrap(),
            "SELECT \"b\" FROM t"
        );
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let g = fig1();
        let set = enumerate(&g, 1000).unwrap();
        let a: Vec<String> = {
            let mut rng = seeded_rng(99);
            (0..10)
                .map(|_| random_query(&g, &set.templates, &mut rng, None).unwrap())
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = seeded_rng(99);
            (0..10)
                .map(|_| random_query(&g, &set.templates, &mut rng, None).unwrap())
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normalize_spaces_collapses() {
        assert_eq!(normalize_spaces("a  b   c "), "a b c");
    }
}
