//! # sqalpel-grammar
//!
//! The SQALPEL query-space grammar DSL (paper §3.1): a domain-specific
//! language `G` describing a query (sub)space `L(G)` derived from a
//! baseline query. This crate provides:
//!
//! - the DSL parser ([`parse`]) and printer (`Grammar: Display`),
//! - normalization and validation ([`validate()`]: missing rules, dead
//!   rules, unbounded repetition),
//! - template enumeration under the literal-once rule and exact space
//!   counting ([`template`]) — the machinery behind the paper's Table 2,
//! - concrete query generation ([`generate`]), with dialect sections,
//! - the automatic SQL-to-grammar converter ([`convert()`]).
//!
//! ```
//! use sqalpel_grammar::Grammar;
//!
//! let g = Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap();
//! let report = g.space_report(10_000).unwrap();
//! assert_eq!(report.templates, 10);
//! assert_eq!(report.space, 32);
//! ```

pub mod ast;
pub mod convert;
pub mod edit;
pub mod generate;
pub mod parse;
pub mod template;
pub mod validate;

pub use ast::{Alternative, Element, Grammar, Rule};
pub use convert::{convert, convert_sql};
pub use edit::EditError;
pub use generate::{
    instantiate, instantiate_random, random_choice, random_query, seeded_rng, Choice,
    GenerateError,
};
pub use parse::GrammarParseError;
pub use template::{
    binomial, enumerate, space_report, Piece, SpaceReport, Template, TemplateSet,
    DEFAULT_TEMPLATE_CAP,
};
pub use validate::{validate, ValidationReport};

/// The sample grammar of the paper's Figure 1 (a query space over the
/// TPC-H `nation` table).
pub const FIG1_GRAMMAR: &str = "\
query:
    SELECT ${projection} FROM ${l_tables} $[l_filter]
projection:
    ${l_count}
    ${l_column} ${columnlist}*
l_tables:
    nation
columnlist:
    , ${l_column}
l_column:
    n_nationkey
    n_name
    n_regionkey
    n_comment
l_count:
    count(*)
l_filter:
    WHERE n_name= 'BRAZIL'
";

impl Grammar {
    /// Parse the DSL text (see [`parse::parse`]).
    pub fn parse(text: &str) -> Result<Grammar, GrammarParseError> {
        parse::parse(text)
    }

    /// Validate (missing/dead rules, unbounded repetition).
    pub fn check(&self) -> ValidationReport {
        validate::validate(self)
    }

    /// Enumerate templates up to `cap`.
    pub fn templates(&self, cap: usize) -> Result<TemplateSet, template::EnumerationError> {
        template::enumerate(self, cap)
    }

    /// The Table 2 measures: tags, templates, space.
    pub fn space_report(&self, cap: usize) -> Result<SpaceReport, template::EnumerationError> {
        template::space_report(self, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_constant_is_valid() {
        let g = Grammar::parse(FIG1_GRAMMAR).unwrap();
        assert!(g.check().is_ok());
    }

    #[test]
    fn convenience_methods_delegate() {
        let g = Grammar::parse(FIG1_GRAMMAR).unwrap();
        assert_eq!(g.templates(100).unwrap().templates.len(), 10);
        assert_eq!(g.space_report(100).unwrap().space, 32);
    }
}
