//! Template enumeration and query-space measurement (paper §3.1).
//!
//! A **template** is a fully expanded sentence skeleton: keywords plus
//! slots naming lexical classes. Because query optimizers normalize
//! expression lists, order is ignored — template identity is the *count*
//! of slots per lexical class, and the paper's "space" measure counts, per
//! template, the ways to pick distinct literals for its slots:
//!
//! ```text
//! space = Σ_templates Π_class C(class_size, slot_count)
//! ```
//!
//! The literal-once rule (each literal used at most once per query) bounds
//! both repetition and the subset choices. Enumeration is capped by a
//! hard template limit, like the platform's "hard system limit".

use crate::ast::{Element, Grammar};
use std::collections::BTreeMap;
use std::fmt;

/// Default hard cap on enumerated templates (the paper reports `>100K`
/// for Q7/Q19 at this limit).
pub const DEFAULT_TEMPLATE_CAP: usize = 100_000;

/// Budget on enumeration steps, guarding against pathological grammars.
const STEP_BUDGET: u64 = 50_000_000;

/// One piece of a template skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// Verbatim text.
    Text(String),
    /// A slot to be filled with a literal of the named lexical class.
    Slot(String),
}

/// A query template: slot counts (its identity) plus one representative
/// skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Lexical class → number of slots.
    pub counts: BTreeMap<String, usize>,
    pub skeleton: Vec<Piece>,
}

impl Template {
    /// Total number of lexical slots — the node-size measure used by the
    /// experiment-history view (Figure 7's "number of components").
    pub fn components(&self) -> usize {
        self.counts.values().sum()
    }

    /// Number of concrete queries this template denotes.
    pub fn instantiations(&self, g: &Grammar) -> u128 {
        self.counts
            .iter()
            .map(|(class, &k)| binomial(g.class_size(class), k))
            .try_fold(1u128, |acc, b| acc.checked_mul(b))
            .unwrap_or(u128::MAX)
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.skeleton {
            match p {
                Piece::Text(t) => f.write_str(t)?,
                Piece::Slot(c) => write!(f, "${{{c}}}")?,
            }
        }
        Ok(())
    }
}

/// The enumerated template set.
#[derive(Debug, Clone, Default)]
pub struct TemplateSet {
    pub templates: Vec<Template>,
    /// True when enumeration hit the cap (the real count is larger).
    pub truncated: bool,
}

/// The paper's Table 2 row: tags, template count, space size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceReport {
    /// Number of lexical literals in the grammar.
    pub tags: usize,
    /// Number of distinct templates (≥ when truncated).
    pub templates: usize,
    /// Number of concrete queries in the space (saturating).
    pub space: u128,
    /// True when the template cap was hit.
    pub truncated: bool,
}

impl fmt::Display for SpaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.truncated {
            write!(f, "tags={} templates>{} space>{}", self.tags, self.templates, self.space)
        } else {
            write!(f, "tags={} templates={} space={}", self.tags, self.templates, self.space)
        }
    }
}

/// Enumeration error: the grammar recursed without consuming literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumerationError(pub String);

impl fmt::Display for EnumerationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "template enumeration failed: {}", self.0)
    }
}

impl std::error::Error for EnumerationError {}

/// n-choose-k with saturation.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = match acc.checked_mul((n - i) as u128) {
            Some(v) => v / (i as u128 + 1),
            None => return u128::MAX,
        };
    }
    acc
}

struct Enumerator<'g> {
    g: &'g Grammar,
    cap: usize,
    steps: u64,
    /// counts-key → template index (dedup on slot counts: order ignored).
    seen: BTreeMap<Vec<(String, usize)>, usize>,
    out: Vec<Template>,
    truncated: bool,
}

impl<'g> Enumerator<'g> {
    /// Depth-first expansion. `queue` holds the remaining elements of the
    /// sentential form being expanded, front first.
    fn walk(
        &mut self,
        queue: &[Element],
        skeleton: &mut Vec<Piece>,
        counts: &mut BTreeMap<String, usize>,
    ) -> Result<(), EnumerationError> {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            self.truncated = true;
            return Ok(());
        }
        if self.truncated && self.out.len() >= self.cap {
            return Ok(());
        }
        let Some((head, rest)) = queue.split_first() else {
            // Sentence complete: record the template (dedup on counts).
            let key: Vec<(String, usize)> =
                counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
            if !self.seen.contains_key(&key) {
                if self.out.len() >= self.cap {
                    self.truncated = true;
                    return Ok(());
                }
                self.seen.insert(key, self.out.len());
                self.out.push(Template {
                    counts: counts.clone(),
                    skeleton: skeleton.clone(),
                });
            }
            return Ok(());
        };
        match head {
            Element::Text(t) => {
                skeleton.push(Piece::Text(t.clone()));
                self.walk(rest, skeleton, counts)?;
                skeleton.pop();
            }
            Element::Ref {
                name,
                optional,
                star,
            } => {
                // Branch 1: skip (optional or star allows zero occurrences).
                if *optional || *star {
                    self.walk(rest, skeleton, counts)?;
                }
                // Branch 2: expand once (and for star, re-queue itself).
                let rule = self.g.rule(name).ok_or_else(|| {
                    EnumerationError(format!("reference to missing rule {name}"))
                })?;
                let continue_with: Vec<Element> = if *star {
                    std::iter::once(head.clone()).chain(rest.iter().cloned()).collect()
                } else {
                    rest.to_vec()
                };
                if rule.is_lexical() {
                    let capacity = rule.alternatives.len();
                    let used = counts.get(name).copied().unwrap_or(0);
                    if used < capacity {
                        *counts.entry(name.clone()).or_insert(0) += 1;
                        skeleton.push(Piece::Slot(name.clone()));
                        self.walk(&continue_with, skeleton, counts)?;
                        skeleton.pop();
                        let c = counts.get_mut(name).expect("just inserted");
                        *c -= 1;
                        if *c == 0 {
                            counts.remove(name);
                        }
                    }
                    // else: capacity exhausted — this path is pruned (the
                    // literal-once rule).
                } else {
                    for alt in &rule.alternatives {
                        let queue2: Vec<Element> = alt
                            .elements
                            .iter()
                            .cloned()
                            .chain(continue_with.iter().cloned())
                            .collect();
                        self.walk(&queue2, skeleton, counts)?;
                        if self.out.len() >= self.cap {
                            self.truncated = true;
                            return Ok(());
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Enumerate the (deduplicated) templates of a grammar, capped.
pub fn enumerate(g: &Grammar, cap: usize) -> Result<TemplateSet, EnumerationError> {
    let start = g
        .start()
        .ok_or_else(|| EnumerationError("empty grammar".into()))?;
    let mut e = Enumerator {
        g,
        cap,
        steps: 0,
        seen: BTreeMap::new(),
        out: Vec::new(),
        truncated: false,
    };
    let mut skeleton = Vec::new();
    let mut counts = BTreeMap::new();
    for alt in &start.alternatives {
        e.walk(&alt.elements, &mut skeleton, &mut counts)?;
        if e.out.len() >= cap {
            e.truncated = true;
            break;
        }
    }
    Ok(TemplateSet {
        templates: e.out,
        truncated: e.truncated,
    })
}

/// Compute the Table 2 measures for a grammar.
pub fn space_report(g: &Grammar, cap: usize) -> Result<SpaceReport, EnumerationError> {
    let set = enumerate(g, cap)?;
    let mut space: u128 = 0;
    for t in &set.templates {
        space = space.saturating_add(t.instantiations(g));
    }
    Ok(SpaceReport {
        tags: g.tags(),
        templates: set.templates.len(),
        space,
        truncated: set.truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn binomials() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(60, 30), 118264581564861424);
    }

    #[test]
    fn figure1_template_count_and_space() {
        let g = parse(crate::FIG1_GRAMMAR).unwrap();
        let set = enumerate(&g, 10_000).unwrap();
        assert!(!set.truncated);
        // projection = count(*) | 1..4 columns; filter optional:
        // (1 + 4) × 2 = 10 templates.
        assert_eq!(set.templates.len(), 10);
        let report = space_report(&g, 10_000).unwrap();
        assert_eq!(report.tags, 1 + 4 + 1 + 1);
        // count(*) path: 2; column paths: Σ_k C(4,k) × 2 = 30; total 32.
        assert_eq!(report.space, 32);
    }

    #[test]
    fn literal_once_bounds_star() {
        let g = parse(
            "q:\n    SELECT ${l_c} ${list}*\nlist:\n    , ${l_c}\nl_c:\n    a\n    b\n    c\n",
        )
        .unwrap();
        let set = enumerate(&g, 1000).unwrap();
        // k = 1, 2, 3 — never more than the 3 literals.
        assert_eq!(set.templates.len(), 3);
        assert!(set
            .templates
            .iter()
            .all(|t| t.counts["l_c"] <= 3));
    }

    #[test]
    fn duplicate_order_is_ignored() {
        // Two classes in either order would create 2 skeletons with the
        // same counts; dedup keeps one template.
        let g = parse(
            "q:\n    ${l_a} ${l_b}\n    ${l_b} ${l_a}\nl_a:\n    x\nl_b:\n    y\n",
        )
        .unwrap();
        let set = enumerate(&g, 1000).unwrap();
        assert_eq!(set.templates.len(), 1);
    }

    #[test]
    fn cap_truncates() {
        // 2^16 subsets of a 16-literal class exceed a cap of 10.
        let lits: String = (0..16).map(|i| format!("    lit{i}\n")).collect();
        let src = format!("q:\n    ${{l_c}} ${{list}}*\nlist:\n    , ${{l_c}}\nl_c:\n{lits}");
        let g = parse(&src).unwrap();
        let set = enumerate(&g, 10).unwrap();
        assert!(set.truncated);
        assert_eq!(set.templates.len(), 10);
    }

    #[test]
    fn template_components_and_display() {
        let g = parse(crate::FIG1_GRAMMAR).unwrap();
        let set = enumerate(&g, 10_000).unwrap();
        let biggest = set
            .templates
            .iter()
            .max_by_key(|t| t.components())
            .unwrap();
        // 4 columns + table + filter.
        assert_eq!(biggest.components(), 6);
        let text = biggest.to_string();
        assert!(text.contains("${l_column}"));
        assert!(text.starts_with("SELECT "));
    }

    #[test]
    fn missing_rule_is_an_enumeration_error() {
        let g = parse("q:\n    ${ghost}\n").unwrap();
        assert!(enumerate(&g, 100).is_err());
    }

    #[test]
    fn space_report_display() {
        let g = parse(crate::FIG1_GRAMMAR).unwrap();
        let r = space_report(&g, 10_000).unwrap();
        assert_eq!(r.to_string(), "tags=7 templates=10 space=32");
    }

    #[test]
    fn instantiations_per_template() {
        let g = parse(crate::FIG1_GRAMMAR).unwrap();
        let set = enumerate(&g, 10_000).unwrap();
        let total: u128 = set.templates.iter().map(|t| t.instantiations(&g)).sum();
        assert_eq!(total, 32);
    }
}
