//! Grammar validation (paper §3.1: "the validity of the grammar is checked
//! by looking for missing and dead code rules").
//!
//! Three checks:
//!
//! - **missing rules** — references to names no rule defines;
//! - **dead rules** — rules unreachable from the start rule;
//! - **unbounded repetition** — a `*` reference to a rule that can expand
//!   without consuming any lexical literal, which would make the query
//!   space infinite (the literal-once rule is what bounds repetition).

use crate::ast::{Alternative, Element, Grammar, Rule};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// The outcome of validating a grammar.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// `(referencing rule, missing name)` pairs.
    pub missing: Vec<(String, String)>,
    /// Rules not reachable from the start rule.
    pub dead: Vec<String>,
    /// `(rule, starred reference)` pairs where the repetition is not
    /// bounded by literal consumption.
    pub unbounded: Vec<(String, String)>,
}

impl ValidationReport {
    pub fn is_ok(&self) -> bool {
        self.missing.is_empty() && self.dead.is_empty() && self.unbounded.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return f.write_str("grammar OK");
        }
        for (rule, name) in &self.missing {
            writeln!(f, "missing rule: {name} (referenced from {rule})")?;
        }
        for rule in &self.dead {
            writeln!(f, "dead rule: {rule}")?;
        }
        for (rule, name) in &self.unbounded {
            writeln!(f, "unbounded repetition: ${{{name}}}* in {rule} never consumes a literal")?;
        }
        Ok(())
    }
}

/// Validate a grammar.
pub fn validate(g: &Grammar) -> ValidationReport {
    let defined: HashSet<&str> = g.rules.iter().map(|r| r.name.as_str()).collect();

    // Missing references.
    let mut missing = Vec::new();
    for rule in &g.rules {
        for alt in all_alternatives(rule) {
            for name in alt.references() {
                if !defined.contains(name) {
                    missing.push((rule.name.clone(), name.to_string()));
                }
            }
        }
    }
    missing.sort();
    missing.dedup();

    // Reachability from the start rule.
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    if let Some(start) = g.start() {
        let mut stack = vec![start.name.as_str()];
        while let Some(name) = stack.pop() {
            if !reachable.insert(name) {
                continue;
            }
            if let Some(rule) = g.rule(name) {
                for alt in all_alternatives(rule) {
                    for r in alt.references() {
                        stack.push(r);
                    }
                }
            }
        }
    }
    let dead: Vec<String> = g
        .rules
        .iter()
        .filter(|r| !reachable.contains(r.name.as_str()))
        .map(|r| r.name.clone())
        .collect();

    // Consumption fixpoint: does every expansion of a rule consume at
    // least one lexical literal?
    let mut consumes: HashMap<&str, bool> = g
        .rules
        .iter()
        .map(|r| (r.name.as_str(), r.is_lexical()))
        .collect();
    loop {
        let mut changed = false;
        for rule in &g.rules {
            if consumes[rule.name.as_str()] {
                continue;
            }
            let all_alts_consume = !rule.alternatives.is_empty()
                && rule.alternatives.iter().all(|alt| {
                    alt.elements.iter().any(|e| match e {
                        Element::Ref {
                            name,
                            optional: false,
                            star: false,
                        } => consumes.get(name.as_str()).copied().unwrap_or(false),
                        _ => false,
                    })
                });
            if all_alts_consume {
                consumes.insert(rule.name.as_str(), true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut unbounded = Vec::new();
    for rule in &g.rules {
        for alt in all_alternatives(rule) {
            for e in &alt.elements {
                if let Element::Ref {
                    name, star: true, ..
                } = e
                {
                    if !consumes.get(name.as_str()).copied().unwrap_or(false) {
                        unbounded.push((rule.name.clone(), name.clone()));
                    }
                }
            }
        }
    }
    unbounded.sort();
    unbounded.dedup();

    ValidationReport {
        missing,
        dead,
        unbounded,
    }
}

fn all_alternatives(rule: &Rule) -> impl Iterator<Item = &Alternative> {
    rule.alternatives
        .iter()
        .chain(rule.dialects.values().flatten())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn figure1_grammar_is_valid() {
        let g = parse(crate::FIG1_GRAMMAR).unwrap();
        let report = validate(&g);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn missing_rule_detected() {
        let g = parse("q:\n    ${ghost}\n").unwrap();
        let r = validate(&g);
        assert_eq!(r.missing, vec![("q".to_string(), "ghost".to_string())]);
        assert!(r.to_string().contains("missing rule: ghost"));
    }

    #[test]
    fn dead_rule_detected() {
        let g = parse("q:\n    ${l_a}\nl_a:\n    x\norphan:\n    y\n").unwrap();
        let r = validate(&g);
        assert_eq!(r.dead, vec!["orphan".to_string()]);
    }

    #[test]
    fn unbounded_star_detected() {
        // `noise` is structural (it contains a reference) and can expand
        // without consuming a literal: starring it allows infinitely many
        // expansions. (A pure-text rule would be a capacity-1 lexical
        // class and therefore bounded.)
        let g = parse("q:\n    ${noise}* ${l_a}\nnoise:\n    , $[l_b]\nl_a:\n    x\nl_b:\n    y\n").unwrap();
        let r = validate(&g);
        assert_eq!(r.unbounded, vec![("q".to_string(), "noise".to_string())]);
    }

    #[test]
    fn bounded_star_via_lexical_consumption() {
        // columnlist consumes one l_column per repetition: bounded.
        let g = parse(
            "q:\n    ${l_column} ${columnlist}*\ncolumnlist:\n    , ${l_column}\nl_column:\n    a\n    b\n",
        )
        .unwrap();
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn transitive_consumption() {
        let g = parse(
            "q:\n    ${mid}*\nmid:\n    ${leaf}\nleaf:\n    ${l_a}\nl_a:\n    x\n",
        )
        .unwrap();
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn optional_consumption_does_not_bound() {
        // mid's only consumption is optional: starring it is unbounded.
        let g = parse("q:\n    ${mid}*\nmid:\n    a $[l_a]\nl_a:\n    x\n").unwrap();
        let r = validate(&g);
        assert_eq!(r.unbounded.len(), 1);
    }
}
