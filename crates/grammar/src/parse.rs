//! Parser for the SQALPEL grammar DSL (the Figure 1 syntax).
//!
//! ```text
//! query:
//!     SELECT ${projection} FROM ${l_tables} $[l_filter]
//! projection:
//!     ${l_count}
//!     ${l_column} ${columnlist}*
//! l_filter:
//!     WHERE n_name= 'BRAZIL'
//! l_filter@legacydb:
//!     WHERE n_name= "BRAZIL"
//! ```
//!
//! A line ending in `:` at column zero opens a rule (optionally
//! `name@dialect:` for a dialect section); indented lines are its
//! alternatives. `#` starts a comment line. Blank lines are ignored.

use crate::ast::{Alternative, Element, Grammar, Rule};
use std::fmt;

/// A DSL parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarParseError {
    pub line: usize,
    pub message: String,
}

impl GrammarParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        GrammarParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for GrammarParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grammar parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for GrammarParseError {}

/// Parse a DSL document into a [`Grammar`].
pub fn parse(text: &str) -> Result<Grammar, GrammarParseError> {
    let mut grammar = Grammar::default();
    // Current open section: (rule name, dialect).
    let mut open: Option<(String, Option<String>)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed_end = raw.trim_end();
        if trimmed_end.trim_start().is_empty() || trimmed_end.trim_start().starts_with('#') {
            continue;
        }
        let indented = raw.starts_with(' ') || raw.starts_with('\t');
        if !indented {
            // Rule header.
            let header = trimmed_end;
            let Some(name_part) = header.strip_suffix(':') else {
                return Err(GrammarParseError::new(
                    line_no,
                    format!("expected 'name:' rule header, found {header:?}"),
                ));
            };
            let (name, dialect) = match name_part.split_once('@') {
                Some((n, d)) => (n.trim(), Some(d.trim().to_string())),
                None => (name_part.trim(), None),
            };
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(GrammarParseError::new(
                    line_no,
                    format!("invalid rule name {name:?}"),
                ));
            }
            if let Some(d) = &dialect {
                if grammar.rule(name).is_none() {
                    return Err(GrammarParseError::new(
                        line_no,
                        format!("dialect section {name}@{d} before rule {name}"),
                    ));
                }
            } else {
                if grammar.rule(name).is_some() {
                    return Err(GrammarParseError::new(
                        line_no,
                        format!("duplicate rule {name}"),
                    ));
                }
                grammar.rules.push(Rule::new(name, Vec::new()));
            }
            open = Some((name.to_string(), dialect));
        } else {
            // Alternative line.
            let Some((name, dialect)) = &open else {
                return Err(GrammarParseError::new(
                    line_no,
                    "alternative before any rule header",
                ));
            };
            let alt = parse_alternative(trimmed_end.trim_start(), line_no)?;
            let rule = grammar
                .rule_mut(name)
                .expect("open rule exists");
            match dialect {
                Some(d) => rule.dialects.entry(d.clone()).or_default().push(alt),
                None => rule.alternatives.push(alt),
            }
        }
    }

    if grammar.rules.is_empty() {
        return Err(GrammarParseError::new(1, "empty grammar"));
    }
    for rule in &grammar.rules {
        if rule.alternatives.is_empty() {
            return Err(GrammarParseError::new(
                1,
                format!("rule {} has no alternatives", rule.name),
            ));
        }
    }
    Ok(grammar)
}

/// Parse a single alternative line into elements.
fn parse_alternative(line: &str, line_no: usize) -> Result<Alternative, GrammarParseError> {
    let mut elements = Vec::new();
    let mut text = String::new();
    let mut rest = line;
    loop {
        // Find the next `${` or `$[`.
        let braced = rest.find("${");
        let bracketed = rest.find("$[");
        let (at, optional) = match (braced, bracketed) {
            (Some(b), Some(o)) if b < o => (b, false),
            (Some(_), Some(o)) => (o, true),
            (Some(b), None) => (b, false),
            (None, Some(o)) => (o, true),
            (None, None) => {
                text.push_str(rest);
                break;
            }
        };
        text.push_str(&rest[..at]);
        let close = if optional { ']' } else { '}' };
        let body = &rest[at + 2..];
        let Some(end) = body.find(close) else {
            return Err(GrammarParseError::new(
                line_no,
                format!("unterminated reference in {line:?}"),
            ));
        };
        let name = &body[..end];
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(GrammarParseError::new(
                line_no,
                format!("invalid reference name {name:?}"),
            ));
        }
        if !text.is_empty() {
            elements.push(Element::Text(std::mem::take(&mut text)));
        }
        let after = &body[end + 1..];
        let star = after.starts_with('*');
        elements.push(Element::Ref {
            name: name.to_string(),
            optional,
            star,
        });
        rest = if star { &after[1..] } else { after };
    }
    if !text.is_empty() {
        elements.push(Element::Text(text));
    }
    Ok(Alternative::new(elements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FIG1_GRAMMAR;

    #[test]
    fn figure1_grammar_parses() {
        let g = parse(FIG1_GRAMMAR).unwrap();
        assert_eq!(g.rules.len(), 7);
        assert_eq!(g.start().unwrap().name, "query");
        assert_eq!(g.class_size("l_column"), 4);
        assert!(g.rule("l_filter").unwrap().is_lexical());
        assert!(!g.rule("projection").unwrap().is_lexical());
    }

    #[test]
    fn references_parsed_with_flags() {
        let g = parse("q:\n    a ${x} $[y] ${z}* end\nx:\n    1\ny:\n    2\nz:\n    3\n").unwrap();
        let alt = &g.rule("q").unwrap().alternatives[0];
        assert_eq!(
            alt.elements,
            vec![
                Element::text("a "),
                Element::rref("x"),
                Element::text(" "),
                Element::opt("y"),
                Element::text(" "),
                Element::star("z"),
                Element::text(" end"),
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        // '#' lines are comments wherever they appear; blank lines skip.
        let g = parse("# header comment\nq:\n\n    # a comment\n    hello\n").unwrap();
        assert_eq!(g.rule("q").unwrap().alternatives.len(), 1);
    }

    #[test]
    fn dialect_sections_attach_to_rule() {
        let src = "q:\n    ${l_t}\nl_t:\n    LIMIT 10\nl_t@legacydb:\n    FETCH FIRST 10 ROWS\n";
        let g = parse(src).unwrap();
        let r = g.rule("l_t").unwrap();
        assert_eq!(r.alternatives_for(Some("legacydb"))[0].literal_text(), "FETCH FIRST 10 ROWS");
        assert_eq!(r.alternatives_for(None)[0].literal_text(), "LIMIT 10");
    }

    #[test]
    fn duplicate_rule_rejected() {
        assert!(parse("q:\n    a\nq:\n    b\n").is_err());
    }

    #[test]
    fn dialect_before_rule_rejected() {
        assert!(parse("q@d:\n    a\n").is_err());
    }

    #[test]
    fn unterminated_reference_rejected() {
        let err = parse("q:\n    ${oops\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_rule_rejected() {
        assert!(parse("q:\nr:\n    x\n").is_err());
    }

    #[test]
    fn missing_colon_rejected() {
        assert!(parse("query\n    x\n").is_err());
    }

    #[test]
    fn round_trip_display_then_parse() {
        let g = parse(FIG1_GRAMMAR).unwrap();
        let text = g.to_string();
        let g2 = parse(&text).unwrap();
        assert_eq!(g, g2);
    }
}
