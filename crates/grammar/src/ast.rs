//! The SQALPEL query-space grammar: data model.
//!
//! A grammar is an ordered list of named rules; each rule has one or more
//! alternatives; each alternative is a sequence of free-format text
//! snippets and rule references (`${name}` required, `$[name]` optional,
//! with a `*` suffix for repetition). The first rule is the start rule.
//!
//! Normalization (paper §3.1) classifies rules into **lexical** rules —
//! every alternative is a pure text snippet; these define the literal
//! classes whose members may each be used *at most once* per query — and
//! **structural** rules, everything else.

use std::collections::BTreeMap;
use std::fmt;

/// One element of an alternative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Element {
    /// Literal text, emitted verbatim.
    Text(String),
    /// A rule reference.
    Ref {
        name: String,
        /// `$[name]`: may be omitted.
        optional: bool,
        /// `${name}*`: may repeat (bounded by literal capacity).
        star: bool,
    },
}

impl Element {
    pub fn text(s: impl Into<String>) -> Element {
        Element::Text(s.into())
    }

    pub fn rref(name: impl Into<String>) -> Element {
        Element::Ref {
            name: name.into(),
            optional: false,
            star: false,
        }
    }

    pub fn opt(name: impl Into<String>) -> Element {
        Element::Ref {
            name: name.into(),
            optional: true,
            star: false,
        }
    }

    pub fn star(name: impl Into<String>) -> Element {
        Element::Ref {
            name: name.into(),
            optional: false,
            star: true,
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Text(t) => f.write_str(t),
            Element::Ref {
                name,
                optional,
                star,
            } => {
                if *optional {
                    write!(f, "$[{name}]")?;
                } else {
                    write!(f, "${{{name}}}")?;
                }
                if *star {
                    f.write_str("*")?;
                }
                Ok(())
            }
        }
    }
}

/// One alternative: a sequence of elements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Alternative {
    pub elements: Vec<Element>,
}

impl Alternative {
    pub fn new(elements: Vec<Element>) -> Self {
        Alternative { elements }
    }

    /// All rule names referenced by this alternative.
    pub fn references(&self) -> impl Iterator<Item = &str> {
        self.elements.iter().filter_map(|e| match e {
            Element::Ref { name, .. } => Some(name.as_str()),
            Element::Text(_) => None,
        })
    }

    /// True when the alternative is a pure text snippet (no references).
    pub fn is_literal(&self) -> bool {
        self.elements
            .iter()
            .all(|e| matches!(e, Element::Text(_)))
    }

    /// The concatenated text, for literal alternatives.
    pub fn literal_text(&self) -> String {
        self.elements
            .iter()
            .map(|e| match e {
                Element::Text(t) => t.as_str(),
                Element::Ref { .. } => "",
            })
            .collect()
    }
}

impl fmt::Display for Alternative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.elements {
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// A named rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    pub name: String,
    pub alternatives: Vec<Alternative>,
    /// Dialect-specific alternative sets (`rule@dialect:` sections), used
    /// to accommodate minor SQL syntax differences between target systems.
    pub dialects: BTreeMap<String, Vec<Alternative>>,
}

impl Rule {
    pub fn new(name: impl Into<String>, alternatives: Vec<Alternative>) -> Self {
        Rule {
            name: name.into(),
            alternatives,
            dialects: BTreeMap::new(),
        }
    }

    /// True when every alternative (in every dialect) is pure text: the
    /// rule defines a lexical token class.
    pub fn is_lexical(&self) -> bool {
        self.alternatives.iter().all(Alternative::is_literal)
            && self
                .dialects
                .values()
                .all(|alts| alts.iter().all(Alternative::is_literal))
    }

    /// The alternatives to use for a given dialect (falls back to the
    /// default set).
    pub fn alternatives_for(&self, dialect: Option<&str>) -> &[Alternative] {
        match dialect.and_then(|d| self.dialects.get(d)) {
            Some(alts) => alts,
            None => &self.alternatives,
        }
    }
}

/// A complete query-space grammar.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Grammar {
    pub rules: Vec<Rule>,
}

impl Grammar {
    pub fn new(rules: Vec<Rule>) -> Self {
        Grammar { rules }
    }

    /// The start rule (the first rule of the grammar).
    pub fn start(&self) -> Option<&Rule> {
        self.rules.first()
    }

    pub fn rule(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name == name)
    }

    pub fn rule_mut(&mut self, name: &str) -> Option<&mut Rule> {
        self.rules.iter_mut().find(|r| r.name == name)
    }

    /// Names of all lexical rules, in definition order.
    pub fn lexical_rules(&self) -> Vec<&Rule> {
        self.rules.iter().filter(|r| r.is_lexical()).collect()
    }

    /// Total number of lexical literals — the paper's "tags" measure.
    pub fn tags(&self) -> usize {
        self.lexical_rules()
            .iter()
            .map(|r| r.alternatives.len())
            .sum()
    }

    /// Number of literals in one lexical class.
    pub fn class_size(&self, name: &str) -> usize {
        self.rule(name).map_or(0, |r| r.alternatives.len())
    }
}

impl fmt::Display for Grammar {
    /// Render back to the DSL (the Figure 5 grammar-page view).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{}:", rule.name)?;
            for alt in &rule.alternatives {
                writeln!(f, "    {alt}")?;
            }
            for (dialect, alts) in &rule.dialects {
                writeln!(f, "{}@{dialect}:", rule.name)?;
                for alt in alts {
                    writeln!(f, "    {alt}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Grammar {
        Grammar::new(vec![
            Rule::new(
                "query",
                vec![Alternative::new(vec![
                    Element::text("SELECT "),
                    Element::rref("l_column"),
                    Element::text(" FROM nation"),
                ])],
            ),
            Rule::new(
                "l_column",
                vec![
                    Alternative::new(vec![Element::text("n_name")]),
                    Alternative::new(vec![Element::text("n_regionkey")]),
                ],
            ),
        ])
    }

    #[test]
    fn lexical_classification() {
        let g = sample();
        assert!(!g.rule("query").unwrap().is_lexical());
        assert!(g.rule("l_column").unwrap().is_lexical());
        assert_eq!(g.lexical_rules().len(), 1);
    }

    #[test]
    fn tags_counts_literals() {
        assert_eq!(sample().tags(), 2);
        assert_eq!(sample().class_size("l_column"), 2);
        assert_eq!(sample().class_size("nope"), 0);
    }

    #[test]
    fn start_rule_is_first() {
        assert_eq!(sample().start().unwrap().name, "query");
    }

    #[test]
    fn display_round_trips_visually() {
        let text = sample().to_string();
        assert!(text.contains("query:"));
        assert!(text.contains("    SELECT ${l_column} FROM nation"));
        assert!(text.contains("    n_regionkey"));
    }

    #[test]
    fn dialect_fallback() {
        let mut g = sample();
        let rule = g.rule_mut("l_column").unwrap();
        rule.dialects.insert(
            "monetdb".into(),
            vec![Alternative::new(vec![Element::text("\"n_name\"")])],
        );
        let r = g.rule("l_column").unwrap();
        assert_eq!(r.alternatives_for(Some("monetdb")).len(), 1);
        assert_eq!(r.alternatives_for(Some("unknown")).len(), 2);
        assert_eq!(r.alternatives_for(None).len(), 2);
        assert!(r.is_lexical());
    }

    #[test]
    fn element_display_forms() {
        assert_eq!(Element::rref("x").to_string(), "${x}");
        assert_eq!(Element::opt("x").to_string(), "$[x]");
        assert_eq!(Element::star("x").to_string(), "${x}*");
    }
}
