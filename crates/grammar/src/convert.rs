//! Automatic conversion of a baseline SQL query into a SQALPEL grammar
//! (paper §3.1: "We have implemented a full fledged SQL parser that turns
//! a single query, called the baseline query, into a sqalpel grammar").
//!
//! The splitting heuristic follows the paper: the query is split along
//! **projection-list elements, table expressions, sub-queries, and/or
//! expressions, group-by and order-by terms**; the remainders become
//! literal tokens. Each splittable list becomes a lexical class with
//! *choose-a-nonempty-subset* semantics (`${l_x} ${xlist}*`), which is
//! exactly the semantics that reproduces the paper's own Table 2 numbers
//! (e.g. Q6: C(4,1)+…+C(4,4) = 15; Q14: 3 × 7 = 21).
//!
//! Sub-queries are converted recursively into their own rule families and
//! referenced structurally; clauses absent from the baseline are absent
//! from the grammar. The resulting language contains queries that are
//! semantically invalid (dropping a projected group-by column, removing a
//! joined table) — by design: the platform records those as error runs.

use crate::ast::{Alternative, Element, Grammar, Rule};
use sqalpel_sql::ast::{BinOp, Expr, JoinKind, Query, SelectItem, TableRef, UnaryOp};
use sqalpel_sql::{parse_query, ParseError};

/// Convert SQL text into a grammar.
pub fn convert_sql(sql: &str) -> Result<Grammar, ParseError> {
    Ok(convert(&parse_query(sql)?))
}

/// Convert a parsed query into a grammar.
pub fn convert(q: &Query) -> Grammar {
    let mut c = Converter {
        rules: Vec::new(),
        next_id: 0,
        fresh: 0,
    };
    let root = c.convert_query(q);
    // The start rule must come first.
    let root_idx = c
        .rules
        .iter()
        .position(|r| r.name == root)
        .expect("root rule exists");
    let root_rule = c.rules.remove(root_idx);
    c.rules.insert(0, root_rule);
    Grammar::new(c.rules)
}

struct Converter {
    rules: Vec<Rule>,
    next_id: usize,
    fresh: usize,
}

impl Converter {
    fn suffix(id: usize) -> String {
        if id == 0 {
            String::new()
        } else {
            format!("_{id}")
        }
    }

    fn fresh_id(&mut self) -> usize {
        self.fresh += 1;
        self.fresh
    }

    fn add_rule(&mut self, name: String, alternatives: Vec<Alternative>) -> String {
        self.rules.push(Rule::new(name.clone(), alternatives));
        name
    }

    /// Build the rules for one query level; returns its root rule name.
    fn convert_query(&mut self, q: &Query) -> String {
        let id = self.next_id;
        self.next_id += 1;
        let sfx = Self::suffix(id);

        let mut root: Vec<Element> = Vec::new();

        // WITH clauses: fixed structure referencing recursively-converted
        // CTE bodies.
        if !q.ctes.is_empty() {
            root.push(Element::text("WITH "));
            for (i, cte) in q.ctes.iter().enumerate() {
                if i > 0 {
                    root.push(Element::text(", "));
                }
                root.push(Element::text(format!("{} AS (", cte.name)));
                let sub = self.convert_query(&cte.query);
                root.push(Element::rref(sub));
                root.push(Element::text(") "));
            }
        }

        // SELECT list.
        root.push(Element::text("SELECT "));
        if q.body.distinct {
            root.push(Element::text("DISTINCT "));
        }
        let proj_items: Vec<SplitItem> = q
            .body
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => SplitItem::Literal("*".to_string()),
                SelectItem::Expr { expr, alias } => {
                    let mut elems = self.expr_elements(expr);
                    if let Some(a) = alias {
                        elems.push(Element::text(format!(" AS {a}")));
                    }
                    SplitItem::from_elements(elems)
                }
            })
            .collect();
        let proj_root = self.subset_list(&format!("proj{sfx}"), "l_proj", &sfx, proj_items, ", ");
        root.push(Element::rref(proj_root));

        // FROM list.
        if !q.body.from.is_empty() {
            root.push(Element::text(" FROM "));
            let table_items: Vec<SplitItem> = q
                .body
                .from
                .iter()
                .map(|t| self.table_item(t, &sfx))
                .collect();
            let tables_root =
                self.subset_list(&format!("tables{sfx}"), "l_table", &sfx, table_items, ", ");
            root.push(Element::rref(tables_root));
        }

        // WHERE: and/or splitting.
        if let Some(sel) = &q.body.selection {
            root.push(Element::text(" WHERE "));
            let pred_items = self.predicate_items(sel, &sfx, "");
            let preds_root =
                self.subset_list(&format!("preds{sfx}"), "l_pred", &sfx, pred_items, " AND ");
            root.push(Element::rref(preds_root));
        }

        // GROUP BY terms.
        if !q.body.group_by.is_empty() {
            root.push(Element::text(" GROUP BY "));
            let items: Vec<SplitItem> = q
                .body
                .group_by
                .iter()
                .map(|e| SplitItem::from_elements(self.expr_elements(e)))
                .collect();
            let r = self.subset_list(&format!("groups{sfx}"), "l_group", &sfx, items, ", ");
            root.push(Element::rref(r));
        }

        // HAVING conjuncts.
        if let Some(h) = &q.body.having {
            root.push(Element::text(" HAVING "));
            let items = self.predicate_items(h, &sfx, "h");
            let r = self.subset_list(&format!("havings{sfx}"), "l_having", &sfx, items, " AND ");
            root.push(Element::rref(r));
        }

        // ORDER BY terms.
        if !q.order_by.is_empty() {
            root.push(Element::text(" ORDER BY "));
            let items: Vec<SplitItem> = q
                .order_by
                .iter()
                .map(|o| {
                    let mut elems = self.expr_elements(&o.expr);
                    if o.desc {
                        elems.push(Element::text(" DESC"));
                    }
                    SplitItem::from_elements(elems)
                })
                .collect();
            let r = self.subset_list(&format!("orders{sfx}"), "l_order", &sfx, items, ", ");
            root.push(Element::rref(r));
        }

        if let Some(n) = q.limit {
            root.push(Element::text(format!(" LIMIT {n}")));
        }

        self.add_rule(format!("query{sfx}"), vec![Alternative::new(root)])
    }

    /// Split a predicate tree along AND (and parenthesized OR groups).
    fn predicate_items(&mut self, e: &Expr, sfx: &str, tag: &str) -> Vec<SplitItem> {
        let mut items = Vec::new();
        for (i, conjunct) in e.conjuncts().into_iter().enumerate() {
            match strip_parens(conjunct) {
                Expr::Binary {
                    op: BinOp::Or, ..
                } => {
                    // A top-level OR group: its arms become their own
                    // subset-list joined by OR.
                    let mut arms: Vec<SplitItem> = Vec::new();
                    for arm in disjuncts(conjunct) {
                        // Each arm may itself be an AND chain: convert it
                        // into a nested subset-list.
                        let arm_items = self.predicate_items(arm, sfx, &format!("{tag}o{i}"));
                        if arm_items.len() == 1 {
                            arms.push(arm_items.into_iter().next().unwrap());
                        } else {
                            let uid = self.fresh_id();
                            let name = self.subset_list(
                                &format!("arm{sfx}_{uid}"),
                                &format!("l_arm{uid}"),
                                "",
                                arm_items,
                                " AND ",
                            );
                            arms.push(SplitItem::Structural(vec![
                                Element::text("("),
                                Element::rref(name),
                                Element::text(")"),
                            ]));
                        }
                    }
                    let uid = self.fresh_id();
                    let or_root = self.subset_list(
                        &format!("or{sfx}_{uid}"),
                        &format!("l_or{uid}"),
                        "",
                        arms,
                        " OR ",
                    );
                    items.push(SplitItem::Structural(vec![
                        Element::text("("),
                        Element::rref(or_root),
                        Element::text(")"),
                    ]));
                }
                _ => {
                    items.push(SplitItem::from_elements(self.expr_elements(conjunct)));
                }
            }
        }
        items
    }

    /// Render an expression as grammar elements, converting embedded
    /// sub-queries recursively.
    fn expr_elements(&mut self, e: &Expr) -> Vec<Element> {
        if !has_subquery(e) {
            return vec![Element::text(e.to_string())];
        }
        match e {
            Expr::Subquery(q) => {
                let sub = self.convert_query(q);
                vec![Element::text("("), Element::rref(sub), Element::text(")")]
            }
            Expr::Exists { negated, query } => {
                let sub = self.convert_query(query);
                let kw = if *negated { "NOT EXISTS (" } else { "EXISTS (" };
                vec![Element::text(kw), Element::rref(sub), Element::text(")")]
            }
            Expr::InSubquery {
                expr,
                negated,
                query,
            } => {
                let mut out = self.expr_elements(expr);
                out.push(Element::text(if *negated { " NOT IN (" } else { " IN (" }));
                let sub = self.convert_query(query);
                out.push(Element::rref(sub));
                out.push(Element::text(")"));
                out
            }
            Expr::Binary { left, op, right } => {
                let mut out = self.expr_elements(left);
                out.push(Element::text(format!(" {} ", op.sql())));
                out.extend(self.expr_elements(right));
                out
            }
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => {
                let mut out = vec![Element::text("NOT ")];
                out.extend(self.expr_elements(expr));
                out
            }
            // Rare shapes (subquery inside CASE/BETWEEN/...): keep the
            // whole expression as a single literal (no splitting inside).
            other => vec![Element::text(other.to_string())],
        }
    }

    /// Render one FROM item.
    fn table_item(&mut self, t: &TableRef, sfx: &str) -> SplitItem {
        match t {
            TableRef::Table { name, alias } => {
                let text = match alias {
                    Some(a) => format!("{name} {a}"),
                    None => name.clone(),
                };
                SplitItem::Literal(text)
            }
            TableRef::Subquery { query, alias } => {
                let sub = self.convert_query(query);
                SplitItem::Structural(vec![
                    Element::text("("),
                    Element::rref(sub),
                    Element::text(format!(") {alias}")),
                ])
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                // Joined tables stay fixed; the ON conjuncts split.
                let mut elems = match self.table_item(left, sfx) {
                    SplitItem::Literal(t) => vec![Element::text(t)],
                    SplitItem::Structural(e) => e,
                };
                elems.push(Element::text(match kind {
                    JoinKind::Inner => " JOIN ",
                    JoinKind::LeftOuter => " LEFT OUTER JOIN ",
                }));
                match self.table_item(right, sfx) {
                    SplitItem::Literal(t) => elems.push(Element::text(t)),
                    SplitItem::Structural(e) => elems.extend(e),
                }
                elems.push(Element::text(" ON "));
                let on_items = self.predicate_items(on, sfx, "j");
                let uid = self.fresh_id();
                let r = self.subset_list(
                    &format!("onpreds{sfx}_{uid}"),
                    &format!("l_on{uid}"),
                    "",
                    on_items,
                    " AND ",
                );
                elems.push(Element::rref(r));
                SplitItem::Structural(elems)
            }
        }
    }

    /// Build the rules for a choose-nonempty-subset list over mixed
    /// literal and structural items; returns the rule name to reference.
    ///
    /// Literals form a lexical class consumed by `${l_x} ${xlist}*`.
    /// For structural items the rule gets one alternative per "first
    /// structural item present", so every nonempty subset of the mixed
    /// list is derivable exactly once (order is ignored; the template
    /// dedup collapses count-equivalent derivations).
    fn subset_list(
        &mut self,
        rule_name: &str,
        class: &str,
        sfx: &str,
        items: Vec<SplitItem>,
        sep: &str,
    ) -> String {
        let class_name = format!("{class}{sfx}");
        let mut literals: Vec<Alternative> = Vec::new();
        let mut structurals: Vec<Vec<Element>> = Vec::new();
        for item in items {
            match item {
                SplitItem::Literal(t) => {
                    literals.push(Alternative::new(vec![Element::text(t)]))
                }
                SplitItem::Structural(e) => structurals.push(e),
            }
        }

        // The literal part: `${l_x} ${xlist}*` (star only when useful).
        let literal_head: Option<Vec<Element>> = if literals.is_empty() {
            None
        } else {
            let multi = literals.len() > 1;
            self.add_rule(class_name.clone(), literals);
            let mut elems = vec![Element::rref(class_name.clone())];
            if multi {
                let list_rule = format!("{rule_name}_more");
                self.add_rule(
                    list_rule.clone(),
                    vec![Alternative::new(vec![
                        Element::text(sep.to_string()),
                        Element::rref(class_name),
                    ])],
                );
                elems.push(Element::star(list_rule));
            }
            Some(elems)
        };

        // Wrap each structural item in its own rule; an `sep + item`
        // continuation rule is created only where some alternative can
        // reference it (otherwise it would be a dead rule).
        let n_struct = structurals.len();
        let has_literals = literal_head.is_some();
        let mut s_rules: Vec<String> = Vec::new();
        let mut s_opt_rules: Vec<Option<String>> = Vec::new();
        for (i, elems) in structurals.into_iter().enumerate() {
            let sub_rule = format!("{rule_name}_s{i}");
            self.add_rule(sub_rule.clone(), vec![Alternative::new(elems)]);
            let needs_opt = has_literals || i > 0;
            let opt_rule = needs_opt.then(|| {
                let opt_rule = format!("{rule_name}_s{i}_more");
                self.add_rule(
                    opt_rule.clone(),
                    vec![Alternative::new(vec![
                        Element::text(sep.to_string()),
                        Element::rref(sub_rule.clone()),
                    ])],
                );
                opt_rule
            });
            s_rules.push(sub_rule);
            s_opt_rules.push(opt_rule);
        }

        // Optional literal tail for structural-first alternatives.
        let lit_tail: Option<String> = match (&literal_head, n_struct) {
            (Some(head), n) if n > 0 => {
                let tail_rule = format!("{rule_name}_lits");
                let mut elems = vec![Element::text(sep.to_string())];
                elems.extend(head.iter().cloned());
                self.add_rule(tail_rule.clone(), vec![Alternative::new(elems)]);
                Some(tail_rule)
            }
            _ => None,
        };

        let mut alternatives: Vec<Alternative> = Vec::new();
        // Alternative 0: at least one literal, structurals all optional.
        if let Some(head) = literal_head {
            let mut elems = head;
            for opt in s_opt_rules.iter().flatten() {
                elems.push(Element::opt(opt.clone()));
            }
            alternatives.push(Alternative::new(elems));
        }
        // One alternative per first-present structural item.
        for (i, s_rule) in s_rules.iter().enumerate() {
            let mut elems = vec![Element::rref(s_rule.clone())];
            for opt in s_opt_rules[i + 1..].iter().flatten() {
                elems.push(Element::opt(opt.clone()));
            }
            if let Some(tail) = &lit_tail {
                elems.push(Element::opt(tail.clone()));
            }
            alternatives.push(Alternative::new(elems));
        }
        assert!(!alternatives.is_empty(), "empty subset list {rule_name}");
        self.add_rule(rule_name.to_string(), alternatives)
    }
}

/// A splittable list member: a removable literal or a structural fragment
/// (contains sub-queries or nested lists).
enum SplitItem {
    Literal(String),
    Structural(Vec<Element>),
}

impl SplitItem {
    fn from_elements(elems: Vec<Element>) -> SplitItem {
        // Merge adjacent text pieces so `expr AS alias` stays one literal.
        let mut merged: Vec<Element> = Vec::new();
        for e in elems {
            match (merged.last_mut(), e) {
                (Some(Element::Text(prev)), Element::Text(t)) => prev.push_str(&t),
                (_, e) => merged.push(e),
            }
        }
        if merged.len() == 1 {
            if let Element::Text(t) = &merged[0] {
                return SplitItem::Literal(t.clone());
            }
        }
        SplitItem::Structural(merged)
    }
}

/// True when the expression tree contains any subquery form.
fn has_subquery(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if matches!(
            x,
            Expr::Subquery(_) | Expr::Exists { .. } | Expr::InSubquery { .. }
        ) {
            found = true;
        }
    });
    found
}

/// Split a top-level OR tree into its arms.
fn disjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary {
                left,
                op: BinOp::Or,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            other => out.push(other),
        }
    }
    walk(e, &mut out);
    out
}

/// The AST has no parenthesization nodes; "stripping" is the identity but
/// kept as a named seam for clarity at the call site.
fn strip_parens(e: &Expr) -> &Expr {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{enumerate, space_report};
    use crate::validate::validate;

    fn space(sql: &str) -> crate::template::SpaceReport {
        let g = convert_sql(sql).unwrap();
        let report = validate(&g);
        assert!(report.is_ok(), "invalid grammar for {sql}: {report}\n{g}");
        space_report(&g, 100_000).unwrap()
    }

    #[test]
    fn q6_reproduces_paper_counts() {
        // Paper Table 2: Q6 → 4 templates, 15 space.
        let r = space(sqalpel_sql::tpch::Q6);
        assert_eq!(r.templates, 4, "{r}");
        assert_eq!(r.space, 15, "{r}");
    }

    #[test]
    fn q14_reproduces_paper_counts() {
        // Paper Table 2: Q14 → 6 templates, 21 space.
        let r = space(sqalpel_sql::tpch::Q14);
        assert_eq!(r.templates, 6, "{r}");
        assert_eq!(r.space, 21, "{r}");
    }

    #[test]
    fn q1_space_has_paper_shape() {
        // Paper: 40 templates, 9207 space. Our converter keeps the WHERE
        // clause (single conjunct) and splits projection (10), group-by
        // (2) and order-by (2) terms: 10 × 2 × 2 = 40 templates and
        // 1023 × 3 × 3 = 9207 instantiations.
        let r = space(sqalpel_sql::tpch::Q1);
        assert_eq!(r.templates, 40, "{r}");
        assert_eq!(r.space, 9207, "{r}");
    }

    #[test]
    fn simple_select_grammar_shape() {
        let g = convert_sql("select a, b from t where x = 1 and y = 2").unwrap();
        assert_eq!(g.start().unwrap().name, "query");
        assert_eq!(g.class_size("l_proj"), 2);
        assert_eq!(g.class_size("l_table"), 1);
        assert_eq!(g.class_size("l_pred"), 2);
        // 2 (proj k) × 1 × 2 (pred k) = 4 templates; 3 × 3 = 9 space.
        let r = space_report(&g, 1000).unwrap();
        assert_eq!(r.templates, 4);
        assert_eq!(r.space, 9);
    }

    #[test]
    fn generated_queries_parse(){
        let g = convert_sql(sqalpel_sql::tpch::Q3).unwrap();
        let set = enumerate(&g, 10_000).unwrap();
        let mut rng = crate::generate::seeded_rng(5);
        for _ in 0..40 {
            let sql =
                crate::generate::random_query(&g, &set.templates, &mut rng, None).unwrap();
            sqalpel_sql::parse_query(&sql)
                .unwrap_or_else(|e| panic!("unparseable variant {sql:?}: {e}"));
        }
    }

    #[test]
    fn full_instantiation_recovers_baseline_semantics() {
        let baseline = "select a, b from t where x = 1 and y = 2 order by a";
        let g = convert_sql(baseline).unwrap();
        let set = enumerate(&g, 1000).unwrap();
        // The maximal template instantiated with every literal is the
        // baseline query again.
        let t = set
            .templates
            .iter()
            .max_by_key(|t| t.components())
            .unwrap();
        let mut choice = crate::generate::Choice::new();
        for (class, &k) in &t.counts {
            choice.insert(class.clone(), (0..k).collect());
        }
        let sql = crate::generate::instantiate(&g, t, &choice, None).unwrap();
        let got = sqalpel_sql::parse_query(&sql).unwrap();
        let want = sqalpel_sql::parse_query(baseline).unwrap();
        assert_eq!(got, want, "reconstructed {sql:?}");
    }

    #[test]
    fn or_groups_split_into_arms() {
        let g = convert_sql(
            "select a from t where (x = 1 and y = 2) or (x = 3 and y = 4)",
        )
        .unwrap();
        // Two arm classes, each with two conjunct literals.
        assert!(validate(&g).is_ok());
        let r = space_report(&g, 10_000).unwrap();
        // arm subsets: each arm has 3 nonempty conjunct subsets;
        // OR-subset over 2 arms: 3 + 3 + 3×3 = 15 pred states.
        assert_eq!(r.space, 15, "{r}");
    }

    #[test]
    fn exists_subquery_converted_recursively() {
        let g = convert_sql(sqalpel_sql::tpch::Q4).unwrap();
        assert!(validate(&g).is_ok(), "{}", validate(&g));
        // The inner lineitem query contributes its own classes.
        assert!(g.rule("query_1").is_some(), "{g}");
        let r = space_report(&g, 100_000).unwrap();
        assert!(r.templates > 4, "{r}");
    }

    #[test]
    fn all_22_tpch_queries_convert_and_validate() {
        for (name, sql) in sqalpel_sql::tpch::all_queries() {
            let g = convert_sql(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
            let report = validate(&g);
            assert!(report.is_ok(), "{name} produced invalid grammar: {report}");
        }
    }

    #[test]
    fn derived_table_and_cte_conversion() {
        let g13 = convert_sql(sqalpel_sql::tpch::Q13).unwrap();
        assert!(validate(&g13).is_ok());
        let g15 = convert_sql(sqalpel_sql::tpch::Q15).unwrap();
        assert!(validate(&g15).is_ok());
        assert!(g15.to_string().contains("WITH revenue AS ("), "{g15}");
    }
}
