//! Star Schema Benchmark (SSB) derivation.
//!
//! The paper's demo bootstraps sqalpel with projects "inspired by TPC-H,
//! SSBM, airtraffic". SSB is O'Neil et al.'s star-schema rework of TPC-H:
//! the `orders`/`lineitem` pair is denormalized into a `lineorder` fact
//! table and a `date` dimension is added. We derive both from
//! [`crate::tpch::TpchData`] exactly that way.

use crate::calendar::{from_days, to_days, Date};
use crate::tpch::{Day, Money, TpchData};

/// One row of the SSB `date` dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DateDim {
    pub d_datekey: Day,
    pub d_date: String,
    pub d_year: i64,
    pub d_month: i64,
    pub d_yearmonthnum: i64,
    pub d_weeknuminyear: i64,
    pub d_sellingseason: String,
}

/// One row of the SSB `lineorder` fact table.
#[derive(Debug, Clone, PartialEq)]
pub struct LineOrder {
    pub lo_orderkey: i64,
    pub lo_linenumber: i64,
    pub lo_custkey: i64,
    pub lo_partkey: i64,
    pub lo_suppkey: i64,
    pub lo_orderdate: Day,
    pub lo_orderpriority: String,
    pub lo_quantity: i64,
    pub lo_extendedprice: Money,
    pub lo_discount: Money,
    pub lo_revenue: Money,
    pub lo_supplycost: Money,
}

/// The SSB star schema: the fact table plus the date dimension. The
/// customer/supplier/part dimensions are shared with the TPC-H tables.
#[derive(Debug, Clone, Default)]
pub struct SsbData {
    pub date_dim: Vec<DateDim>,
    pub lineorder: Vec<LineOrder>,
}

/// Selling season per SSB: Christmas (Nov–Dec), Summer (May–Aug),
/// Winter (Jan–Feb), Spring (Mar–Apr), Fall (Sep–Oct).
pub fn selling_season(month: u32) -> &'static str {
    match month {
        11 | 12 => "Christmas",
        5..=8 => "Summer",
        1 | 2 => "Winter",
        3 | 4 => "Spring",
        _ => "Fall",
    }
}

/// Build the date dimension for the TPC-H date range (1992-01-01 to
/// 1998-12-31), one row per day.
pub fn date_dimension() -> Vec<DateDim> {
    let start = to_days(Date::new(1992, 1, 1));
    let end = to_days(Date::new(1998, 12, 31));
    (start..=end)
        .map(|days| {
            let d = from_days(days);
            let day_of_year = days - to_days(Date::new(d.year, 1, 1)) + 1;
            DateDim {
                d_datekey: days,
                d_date: crate::calendar::format_days(days),
                d_year: d.year as i64,
                d_month: d.month as i64,
                d_yearmonthnum: d.year as i64 * 100 + d.month as i64,
                d_weeknuminyear: ((day_of_year - 1) / 7 + 1) as i64,
                d_sellingseason: selling_season(d.month).to_string(),
            }
        })
        .collect()
}

/// Derive the SSB star schema from a generated TPC-H database.
pub fn from_tpch(tpch: &TpchData) -> SsbData {
    let orders: std::collections::HashMap<i64, &crate::tpch::Order> =
        tpch.orders.iter().map(|o| (o.o_orderkey, o)).collect();
    // ps_supplycost lookup for (partkey, suppkey).
    let supplycost: std::collections::HashMap<(i64, i64), Money> = tpch
        .partsupp
        .iter()
        .map(|ps| ((ps.ps_partkey, ps.ps_suppkey), ps.ps_supplycost))
        .collect();
    let lineorder = tpch
        .lineitem
        .iter()
        .map(|l| {
            let o = orders[&l.l_orderkey];
            let revenue =
                (l.l_extendedprice as f64 * (1.0 - l.l_discount as f64 / 100.0)).round() as Money;
            LineOrder {
                lo_orderkey: l.l_orderkey,
                lo_linenumber: l.l_linenumber,
                lo_custkey: o.o_custkey,
                lo_partkey: l.l_partkey,
                lo_suppkey: l.l_suppkey,
                lo_orderdate: o.o_orderdate,
                lo_orderpriority: o.o_orderpriority.clone(),
                lo_quantity: l.l_quantity,
                lo_extendedprice: l.l_extendedprice,
                lo_discount: l.l_discount,
                lo_revenue: revenue,
                lo_supplycost: supplycost
                    .get(&(l.l_partkey, l.l_suppkey))
                    .copied()
                    .unwrap_or(0),
            }
        })
        .collect();
    SsbData {
        date_dim: date_dimension(),
        lineorder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::TpchGen;

    #[test]
    fn date_dimension_covers_range() {
        let dim = date_dimension();
        assert_eq!(dim.first().unwrap().d_date, "1992-01-01");
        assert_eq!(dim.last().unwrap().d_date, "1998-12-31");
        // 1992..=1998 = 2557 days (two leap years: 1992, 1996).
        assert_eq!(dim.len(), 2557);
    }

    #[test]
    fn year_month_num_is_sortable() {
        let dim = date_dimension();
        assert!(dim.windows(2).all(|w| w[0].d_yearmonthnum <= w[1].d_yearmonthnum));
    }

    #[test]
    fn seasons() {
        assert_eq!(selling_season(12), "Christmas");
        assert_eq!(selling_season(6), "Summer");
        assert_eq!(selling_season(1), "Winter");
        assert_eq!(selling_season(4), "Spring");
        assert_eq!(selling_season(10), "Fall");
    }

    #[test]
    fn lineorder_matches_lineitem_cardinality() {
        let tpch = TpchGen::new(0.001, 42).generate();
        let ssb = from_tpch(&tpch);
        assert_eq!(ssb.lineorder.len(), tpch.lineitem.len());
    }

    #[test]
    fn lineorder_denormalizes_order_columns() {
        let tpch = TpchGen::new(0.001, 42).generate();
        let ssb = from_tpch(&tpch);
        let orders: std::collections::HashMap<_, _> =
            tpch.orders.iter().map(|o| (o.o_orderkey, o)).collect();
        for lo in &ssb.lineorder {
            let o = orders[&lo.lo_orderkey];
            assert_eq!(lo.lo_custkey, o.o_custkey);
            assert_eq!(lo.lo_orderdate, o.o_orderdate);
        }
    }

    #[test]
    fn revenue_is_discounted_price() {
        let tpch = TpchGen::new(0.001, 42).generate();
        let ssb = from_tpch(&tpch);
        for (lo, l) in ssb.lineorder.iter().zip(&tpch.lineitem) {
            let expect =
                (l.l_extendedprice as f64 * (1.0 - l.l_discount as f64 / 100.0)).round() as i64;
            assert_eq!(lo.lo_revenue, expect);
        }
    }

    #[test]
    fn supplycost_comes_from_partsupp() {
        let tpch = TpchGen::new(0.001, 42).generate();
        let ssb = from_tpch(&tpch);
        assert!(ssb.lineorder.iter().all(|lo| lo.lo_supplycost > 0));
    }
}
