//! Text pools and pseudo-grammar text generation, after TPC-H dbgen §4.2.2.
//!
//! dbgen builds comments from a tiny English grammar over fixed word lists
//! and splices mandated substrings (`Customer ... Complaints`,
//! `special ... requests`) into a prescribed number of rows so the
//! LIKE-predicates of Q13/Q16 select deterministic fractions. We keep the
//! same structure with abridged word lists.

use crate::prng::Pcg32;

pub const NOUNS: &[&str] = &[
    "packages", "requests", "accounts", "deposits", "foxes", "ideas", "theodolites",
    "pinto beans", "instructions", "dependencies", "excuses", "platelets", "asymptotes",
    "courts", "dolphins", "multipliers", "sauternes", "warthogs", "frets", "dinos",
];

pub const VERBS: &[&str] = &[
    "sleep", "wake", "are", "cajole", "haggle", "nag", "use", "boost", "affix",
    "detect", "integrate", "maintain", "nod", "was", "lose", "sublate", "solve",
    "thrash", "promise", "engage",
];

pub const ADJECTIVES: &[&str] = &[
    "furious", "sly", "careful", "blithe", "quick", "fluffy", "slow", "quiet",
    "ruthless", "thin", "close", "dogged", "daring", "brave", "stealthy", "permanent",
    "enticing", "idle", "busy", "regular",
];

pub const ADVERBS: &[&str] = &[
    "sometimes", "always", "never", "furiously", "slyly", "carefully", "blithely",
    "quickly", "fluffily", "slowly", "quietly", "ruthlessly", "thinly", "closely",
    "doggedly", "daringly", "bravely", "stealthily", "permanently", "enticingly",
];

pub const PREPOSITIONS: &[&str] = &[
    "about", "above", "according to", "across", "after", "against", "along",
    "alongside of", "among", "around", "at", "atop", "before", "behind", "beneath",
    "beside", "besides", "between", "beyond", "by", "despite", "during", "except",
    "for", "from", "in place of", "inside", "instead of", "into", "near", "of",
];

pub const AUXILIARIES: &[&str] = &[
    "do", "may", "might", "shall", "will", "would", "can", "could", "should",
    "ought to", "must", "will have to", "shall have to", "could have to",
];

/// The 92-word dbgen colour/part-name list, abridged to 40 entries but
/// keeping every word a TPC-H query predicate depends on (`green` for Q9,
/// `forest` for Q20).
pub const PART_NAME_WORDS: &[&str] = &[
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
    "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon",
    "chocolate", "coral", "cornflower", "cream", "cyan", "dark", "deep", "dim",
    "dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro",
    "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "indian", "ivory",
    "khaki", "lace",
];

/// Generate a dbgen-style comment: a short sentence from the grammar
/// `noun-phrase verb-phrase [prep noun-phrase]`, truncated to `max_len`.
pub fn comment(rng: &mut Pcg32, max_len: usize) -> String {
    let mut out = String::with_capacity(max_len);
    let clauses = rng.range_usize(1, 2);
    for i in 0..clauses {
        if i > 0 {
            out.push_str("; ");
        }
        // noun phrase
        if rng.chance(0.5) {
            out.push_str(rng.pick_str(ADVERBS));
            out.push(' ');
        }
        out.push_str(rng.pick_str(ADJECTIVES));
        out.push(' ');
        out.push_str(rng.pick_str(NOUNS));
        out.push(' ');
        // verb phrase
        if rng.chance(0.3) {
            out.push_str(rng.pick_str(AUXILIARIES));
            out.push(' ');
        }
        out.push_str(rng.pick_str(VERBS));
        // trailing prepositional phrase
        if rng.chance(0.6) {
            out.push(' ');
            out.push_str(rng.pick_str(PREPOSITIONS));
            out.push_str(" the ");
            out.push_str(rng.pick_str(ADJECTIVES));
            out.push(' ');
            out.push_str(rng.pick_str(NOUNS));
        }
    }
    out.truncate(max_len);
    out
}

/// Splice `first%second` (with random filler where `%` sits) into a
/// comment, the way dbgen plants `Customer%Complaints` / `special%requests`
/// rows for Q13 and Q16.
pub fn comment_with_marker(rng: &mut Pcg32, max_len: usize, first: &str, second: &str) -> String {
    let filler = comment(rng, 12);
    let mut out = comment(rng, max_len);
    let marker = format!("{first} {filler} {second}");
    if marker.len() >= out.len() {
        return marker.chars().take(max_len).collect();
    }
    let at = rng.range_usize(0, out.len() - marker.len());
    // Keep UTF-8 safety trivially: all pool words are ASCII.
    out.replace_range(at..at + marker.len(), &marker);
    out
}

/// dbgen V-string: a random-length string of random alphanumerics used
/// for addresses.
pub fn v_string(rng: &mut Pcg32, min_len: usize, max_len: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,";
    let len = rng.range_usize(min_len, max_len);
    (0..len)
        .map(|_| CHARS[rng.range_usize(0, CHARS.len() - 1)] as char)
        .collect()
}

/// dbgen phone number: `CC-LLL-LLL-LLLL` where `CC` is the country code
/// derived from the nation key (`10 + nationkey`).
pub fn phone(rng: &mut Pcg32, nationkey: i64) -> String {
    format!(
        "{}-{}-{}-{}",
        10 + nationkey,
        rng.range_i64(100, 999),
        rng.range_i64(100, 999),
        rng.range_i64(1000, 9999)
    )
}

/// A part name: five distinct words from [`PART_NAME_WORDS`].
pub fn part_name(rng: &mut Pcg32) -> String {
    let mut picked: Vec<&str> = Vec::with_capacity(5);
    while picked.len() < 5 {
        let w = rng.pick_str(PART_NAME_WORDS);
        if !picked.contains(&w) {
            picked.push(w);
        }
    }
    picked.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Pcg32 {
        Pcg32::new(7, 1)
    }

    #[test]
    fn comment_respects_max_len() {
        let mut r = rng();
        for max in [10, 44, 79, 117] {
            for _ in 0..50 {
                assert!(comment(&mut r, max).len() <= max);
            }
        }
    }

    #[test]
    fn marker_is_embedded_like_matchable() {
        let mut r = rng();
        for _ in 0..100 {
            let c = comment_with_marker(&mut r, 101, "Customer", "Complaints");
            // Must match LIKE '%Customer%Complaints%'.
            let a = c.find("Customer").expect("first marker present");
            assert!(
                c[a + "Customer".len()..].contains("Complaints"),
                "markers out of order in {c:?}"
            );
        }
    }

    #[test]
    fn phone_shape() {
        let mut r = rng();
        let p = phone(&mut r, 3);
        assert!(p.starts_with("13-"));
        assert_eq!(p.split('-').count(), 4);
    }

    #[test]
    fn phone_country_code_range() {
        let mut r = rng();
        for nk in 0..25 {
            let p = phone(&mut r, nk);
            let cc: i64 = p.split('-').next().unwrap().parse().unwrap();
            assert_eq!(cc, 10 + nk);
        }
    }

    #[test]
    fn v_string_length_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = v_string(&mut r, 10, 40);
            assert!((10..=40).contains(&s.len()));
        }
    }

    #[test]
    fn part_name_five_distinct_words() {
        let mut r = rng();
        for _ in 0..50 {
            let name = part_name(&mut r);
            let words: Vec<&str> = name.split(' ').collect();
            assert_eq!(words.len(), 5);
            let mut dedup = words.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 5, "duplicate words in {name:?}");
        }
    }

    #[test]
    fn pools_contain_query_critical_words() {
        assert!(PART_NAME_WORDS.contains(&"green"), "Q9 needs green");
        assert!(PART_NAME_WORDS.contains(&"forest"), "Q20 needs forest");
    }
}
