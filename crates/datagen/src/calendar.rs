//! Proleptic-Gregorian calendar arithmetic on day numbers.
//!
//! Dates are represented as `i32` days since the epoch 1970-01-01, the
//! representation shared by the data generators and the SQL engines.
//! The algorithms are the classic civil-calendar conversions (Howard
//! Hinnant's `days_from_civil` family), valid far beyond the 1992–1998
//! TPC-H date range.

/// A calendar date split into components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Date {
    pub year: i32,
    pub month: u32,
    pub day: u32,
}

impl Date {
    pub const fn new(year: i32, month: u32, day: u32) -> Self {
        Date { year, month, day }
    }
}

/// Convert a civil date to days since 1970-01-01.
pub fn to_days(d: Date) -> i32 {
    let y = if d.month <= 2 { d.year - 1 } else { d.year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (d.month as i64 + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + d.day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Convert days since 1970-01-01 back to a civil date.
pub fn from_days(days: i32) -> Date {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    Date {
        year: (if m <= 2 { y + 1 } else { y }) as i32,
        month: m,
        day: d,
    }
}

/// Parse `YYYY-MM-DD` into days since the epoch.
///
/// Returns `None` for malformed text or out-of-range components.
pub fn parse_days(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&month) {
        return None;
    }
    if day < 1 || day > days_in_month(year, month) {
        return None;
    }
    Some(to_days(Date::new(year, month, day)))
}

/// Format days since the epoch as `YYYY-MM-DD`.
pub fn format_days(days: i32) -> String {
    let d = from_days(days);
    format!("{:04}-{:02}-{:02}", d.year, d.month, d.day)
}

/// True for Gregorian leap years.
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// The year component of a day number (for `EXTRACT(YEAR FROM ...)`).
pub fn year_of(days: i32) -> i32 {
    from_days(days).year
}

/// Add `n` calendar months, clamping the day to the target month's length
/// (1994-01-31 + 1 month = 1994-02-28), the SQL `INTERVAL` convention.
pub fn add_months(days: i32, n: i32) -> i32 {
    let d = from_days(days);
    let total = d.year as i64 * 12 + (d.month as i64 - 1) + n as i64;
    let year = total.div_euclid(12) as i32;
    let month = (total.rem_euclid(12) + 1) as u32;
    let day = d.day.min(days_in_month(year, month));
    to_days(Date::new(year, month, day))
}

/// Add `n` calendar years (Feb 29 clamps to Feb 28 off leap years).
pub fn add_years(days: i32, n: i32) -> i32 {
    add_months(days, n * 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(to_days(Date::new(1970, 1, 1)), 0);
        assert_eq!(from_days(0), Date::new(1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // TPC-H date range endpoints.
        assert_eq!(to_days(Date::new(1992, 1, 1)), 8035);
        assert_eq!(to_days(Date::new(1998, 12, 31)), 10591);
        assert_eq!(format_days(8035), "1992-01-01");
    }

    #[test]
    fn round_trip_every_day_of_tpch_range() {
        for days in to_days(Date::new(1992, 1, 1))..=to_days(Date::new(1998, 12, 31)) {
            assert_eq!(to_days(from_days(days)), days);
        }
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_days("1994-01-01"), Some(to_days(Date::new(1994, 1, 1))));
        assert_eq!(format_days(parse_days("1996-02-29").unwrap()), "1996-02-29");
        assert_eq!(parse_days("1994-13-01"), None);
        assert_eq!(parse_days("1994-02-30"), None);
        assert_eq!(parse_days("1994-02"), None);
        assert_eq!(parse_days("not-a-date"), None);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(1996));
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(!is_leap(1995));
        assert_eq!(days_in_month(1996, 2), 29);
        assert_eq!(days_in_month(1995, 2), 28);
    }

    #[test]
    fn month_arithmetic_clamps() {
        let jan31 = parse_days("1994-01-31").unwrap();
        assert_eq!(format_days(add_months(jan31, 1)), "1994-02-28");
        assert_eq!(format_days(add_months(jan31, -1)), "1993-12-31");
        let jul1 = parse_days("1993-07-01").unwrap();
        assert_eq!(format_days(add_months(jul1, 3)), "1993-10-01");
    }

    #[test]
    fn year_arithmetic() {
        let feb29 = parse_days("1996-02-29").unwrap();
        assert_eq!(format_days(add_years(feb29, 1)), "1997-02-28");
        assert_eq!(year_of(feb29), 1996);
    }

    #[test]
    fn negative_days_before_epoch() {
        assert_eq!(format_days(-1), "1969-12-31");
        assert_eq!(parse_days("1969-12-31"), Some(-1));
    }
}
