//! Synthetic airtraffic ("ontime") dataset.
//!
//! The paper's demo includes an airtraffic sample project (the well-known
//! US DOT on-time performance data often used for DBMS demos). The real
//! data is not redistributable here, so we synthesize a flights table with
//! the same schema skeleton and the structure that makes its queries
//! interesting: carrier-specific delay profiles, seasonal effects, busier
//! hub airports and a small cancellation rate.

use crate::calendar::{from_days, to_days, Date};
use crate::prng::Pcg32;
use crate::tpch::Day;

/// One flight record.
#[derive(Debug, Clone, PartialEq)]
pub struct Flight {
    pub flightdate: Day,
    pub carrier: String,
    pub flightnum: i64,
    pub origin: String,
    pub dest: String,
    pub depdelay: i64,
    pub arrdelay: i64,
    pub distance: i64,
    pub cancelled: bool,
}

/// Carriers with (code, mean delay minutes) — the spread is what makes
/// per-carrier aggregation queries discriminative.
pub const CARRIERS: &[(&str, f64)] = &[
    ("AA", 8.0),
    ("DL", 6.0),
    ("UA", 10.0),
    ("WN", 4.0),
    ("B6", 14.0),
    ("AS", 3.0),
    ("NK", 18.0),
    ("F9", 16.0),
];

/// Airports with (code, hub weight, coordinates-ish distance basis).
pub const AIRPORTS: &[(&str, u32)] = &[
    ("ATL", 10),
    ("ORD", 9),
    ("DFW", 8),
    ("DEN", 7),
    ("LAX", 7),
    ("JFK", 6),
    ("SFO", 6),
    ("SEA", 5),
    ("MIA", 4),
    ("BOS", 4),
    ("PHX", 3),
    ("IAH", 3),
    ("MSP", 2),
    ("DTW", 2),
    ("SLC", 1),
    ("PDX", 1),
];

/// Generator for a year's worth of synthetic flights.
#[derive(Debug, Clone)]
pub struct AirTrafficGen {
    flights_per_day: usize,
    seed: u64,
    year: i32,
}

impl AirTrafficGen {
    pub fn new(flights_per_day: usize, year: i32, seed: u64) -> Self {
        assert!(flights_per_day > 0, "flights_per_day must be positive");
        AirTrafficGen {
            flights_per_day,
            seed,
            year,
        }
    }

    /// Weighted airport pick.
    fn pick_airport(rng: &mut Pcg32) -> &'static str {
        let total: u32 = AIRPORTS.iter().map(|(_, w)| w).sum();
        let mut roll = rng.range_i64(1, total as i64);
        for (code, w) in AIRPORTS {
            roll -= *w as i64;
            if roll <= 0 {
                return code;
            }
        }
        AIRPORTS[0].0
    }

    pub fn generate(&self) -> Vec<Flight> {
        let mut rng = Pcg32::new(self.seed, 11);
        let start = to_days(Date::new(self.year, 1, 1));
        let end = to_days(Date::new(self.year, 12, 31));
        let mut out = Vec::with_capacity(self.flights_per_day * (end - start + 1) as usize);
        for day in start..=end {
            let month = from_days(day).month;
            // Winter months and the holiday season run later.
            let season_penalty = match month {
                12 | 1 | 2 => 8.0,
                6 | 7 => 4.0,
                _ => 0.0,
            };
            for _ in 0..self.flights_per_day {
                let (carrier, mean_delay) = *rng.pick(CARRIERS);
                let origin = Self::pick_airport(&mut rng);
                let dest = loop {
                    let d = Self::pick_airport(&mut rng);
                    if d != origin {
                        break d;
                    }
                };
                let cancelled = rng.chance(0.015);
                // Delay: a noisy exponential-ish draw around the carrier
                // mean plus the season penalty; about a third of flights
                // leave early (negative delay).
                let base = mean_delay + season_penalty;
                let dep = if rng.chance(0.33) {
                    -rng.range_i64(0, 10)
                } else {
                    (base * (rng.next_f64() + rng.next_f64())) as i64 + rng.range_i64(0, 5)
                };
                let arr = dep + rng.range_i64(-15, 25);
                out.push(Flight {
                    flightdate: day,
                    carrier: carrier.to_string(),
                    flightnum: rng.range_i64(1, 9999),
                    origin: origin.to_string(),
                    dest: dest.to_string(),
                    depdelay: if cancelled { 0 } else { dep },
                    arrdelay: if cancelled { 0 } else { arr },
                    distance: rng.range_i64(200, 2800),
                    cancelled,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_whole_year() {
        let flights = AirTrafficGen::new(3, 2015, 9).generate();
        assert_eq!(flights.len(), 3 * 365);
        let first = flights.first().unwrap().flightdate;
        let last = flights.last().unwrap().flightdate;
        assert_eq!(crate::calendar::format_days(first), "2015-01-01");
        assert_eq!(crate::calendar::format_days(last), "2015-12-31");
    }

    #[test]
    fn leap_year_has_366_days() {
        let flights = AirTrafficGen::new(1, 2016, 9).generate();
        assert_eq!(flights.len(), 366);
    }

    #[test]
    fn origin_never_equals_dest() {
        let flights = AirTrafficGen::new(5, 2015, 4).generate();
        assert!(flights.iter().all(|f| f.origin != f.dest));
    }

    #[test]
    fn deterministic() {
        let a = AirTrafficGen::new(5, 2015, 4).generate();
        let b = AirTrafficGen::new(5, 2015, 4).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn carrier_delay_profiles_separate() {
        // The structurally-bad carrier (NK) must have a worse mean delay
        // than the structurally-good one (AS); this is the signal the
        // airtraffic example queries look for.
        let flights = AirTrafficGen::new(200, 2015, 4).generate();
        let mean = |code: &str| {
            let (sum, n) = flights
                .iter()
                .filter(|f| f.carrier == code && !f.cancelled)
                .fold((0i64, 0i64), |(s, n), f| (s + f.depdelay, n + 1));
            sum as f64 / n as f64
        };
        assert!(mean("NK") > mean("AS") + 5.0);
    }

    #[test]
    fn cancellation_rate_is_small_but_nonzero() {
        let flights = AirTrafficGen::new(100, 2015, 4).generate();
        let cancelled = flights.iter().filter(|f| f.cancelled).count();
        let rate = cancelled as f64 / flights.len() as f64;
        assert!(rate > 0.002 && rate < 0.05, "rate {rate}");
    }

    #[test]
    fn hub_airports_busier() {
        let flights = AirTrafficGen::new(100, 2015, 4).generate();
        let count = |code: &str| flights.iter().filter(|f| f.origin == code).count();
        assert!(count("ATL") > count("PDX"));
    }
}
