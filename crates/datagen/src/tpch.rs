//! A deterministic, scale-factor-parameterized TPC-H data generator.
//!
//! Faithful to `dbgen` in schema, cardinalities, key structure, value
//! domains and the distributions the 22 queries depend on. Two documented
//! deviations keep tiny scale factors useful (DESIGN.md):
//!
//! - the `Customer%Complaints` supplier-comment marker (Q16) is planted at
//!   a 1% rate instead of 0.05%, and the `special%requests` order-comment
//!   marker (Q13) at 10%, so the predicates stay selective-but-nonempty at
//!   SF < 0.1;
//! - order keys are dense (`1..=N`) rather than dbgen's sparse 8-of-32
//!   layout; no query result depends on key sparsity.
//!
//! All money amounts are fixed-point **cents** (`i64`), the representation
//! both engines share; dates are days since 1970-01-01 (see
//! [`crate::calendar`]).

use crate::calendar::{to_days, Date};
use crate::prng::Pcg32;
use crate::text;

/// Money in cents.
pub type Money = i64;

/// Days since 1970-01-01.
pub type Day = i32;

/// dbgen's CURRENTDATE constant, used to derive flags/status.
pub fn current_date() -> Day {
    to_days(Date::new(1995, 6, 17))
}

/// First order date.
pub fn start_date() -> Day {
    to_days(Date::new(1992, 1, 1))
}

/// Last order date (ENDDATE - 151 days, so receipt dates stay in range).
pub fn last_order_date() -> Day {
    to_days(Date::new(1998, 8, 2))
}

#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    pub r_regionkey: i64,
    pub r_name: String,
    pub r_comment: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Nation {
    pub n_nationkey: i64,
    pub n_name: String,
    pub n_regionkey: i64,
    pub n_comment: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Supplier {
    pub s_suppkey: i64,
    pub s_name: String,
    pub s_address: String,
    pub s_nationkey: i64,
    pub s_phone: String,
    pub s_acctbal: Money,
    pub s_comment: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Part {
    pub p_partkey: i64,
    pub p_name: String,
    pub p_mfgr: String,
    pub p_brand: String,
    pub p_type: String,
    pub p_size: i64,
    pub p_container: String,
    pub p_retailprice: Money,
    pub p_comment: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct PartSupp {
    pub ps_partkey: i64,
    pub ps_suppkey: i64,
    pub ps_availqty: i64,
    pub ps_supplycost: Money,
    pub ps_comment: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Customer {
    pub c_custkey: i64,
    pub c_name: String,
    pub c_address: String,
    pub c_nationkey: i64,
    pub c_phone: String,
    pub c_acctbal: Money,
    pub c_mktsegment: String,
    pub c_comment: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Order {
    pub o_orderkey: i64,
    pub o_custkey: i64,
    pub o_orderstatus: String,
    pub o_totalprice: Money,
    pub o_orderdate: Day,
    pub o_orderpriority: String,
    pub o_clerk: String,
    pub o_shippriority: i64,
    pub o_comment: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct LineItem {
    pub l_orderkey: i64,
    pub l_partkey: i64,
    pub l_suppkey: i64,
    pub l_linenumber: i64,
    pub l_quantity: i64,
    pub l_extendedprice: Money,
    pub l_discount: Money, // hundredths: 0..=10 represents 0.00..=0.10
    pub l_tax: Money,      // hundredths: 0..=8
    pub l_returnflag: String,
    pub l_linestatus: String,
    pub l_shipdate: Day,
    pub l_commitdate: Day,
    pub l_receiptdate: Day,
    pub l_shipinstruct: String,
    pub l_shipmode: String,
    pub l_comment: String,
}

/// The eight TPC-H base tables at one scale factor.
#[derive(Debug, Clone, Default)]
pub struct TpchData {
    pub region: Vec<Region>,
    pub nation: Vec<Nation>,
    pub supplier: Vec<Supplier>,
    pub part: Vec<Part>,
    pub partsupp: Vec<PartSupp>,
    pub customer: Vec<Customer>,
    pub orders: Vec<Order>,
    pub lineitem: Vec<LineItem>,
}

impl TpchData {
    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.region.len()
            + self.nation.len()
            + self.supplier.len()
            + self.part.len()
            + self.partsupp.len()
            + self.customer.len()
            + self.orders.len()
            + self.lineitem.len()
    }
}

pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 nations with their official region assignment.
pub const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const SEGMENTS: &[&str] = &["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];

pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

pub const SHIP_INSTRUCT: &[&str] =
    &["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];

pub const SHIP_MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

pub const TYPE_SYLLABLE_1: &[&str] =
    &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_SYLLABLE_2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_SYLLABLE_3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

pub const CONTAINER_SYLLABLE_1: &[&str] = &["SM", "MED", "LG", "JUMBO", "WRAP"];
pub const CONTAINER_SYLLABLE_2: &[&str] =
    &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// The official retail price formula, in cents.
pub fn retail_price(partkey: i64) -> Money {
    90_000 + ((partkey / 10) % 20_001) + 100 * (partkey % 1_000)
}

/// The official part-to-supplier distribution formula.
pub fn partsupp_suppkey(partkey: i64, i: i64, supplier_count: i64) -> i64 {
    let s = supplier_count;
    (partkey + i * (s / 4 + (partkey - 1) / s)) % s + 1
}

/// Deterministic TPC-H generator.
///
/// ```
/// use sqalpel_datagen::tpch::TpchGen;
///
/// let data = TpchGen::new(0.001, 42).generate();
/// assert_eq!(data.region.len(), 5);
/// assert_eq!(data.nation.len(), 25);
/// assert_eq!(data.supplier.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct TpchGen {
    sf: f64,
    seed: u64,
}

impl TpchGen {
    /// A generator for scale factor `sf` (1.0 ≈ 8.66M rows) and RNG seed.
    pub fn new(sf: f64, seed: u64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        TpchGen { sf, seed }
    }

    pub fn scale_factor(&self) -> f64 {
        self.sf
    }

    fn scaled(&self, base: u64) -> i64 {
        ((base as f64 * self.sf).round() as i64).max(1)
    }

    pub fn supplier_count(&self) -> i64 {
        self.scaled(10_000)
    }

    pub fn part_count(&self) -> i64 {
        self.scaled(200_000)
    }

    pub fn customer_count(&self) -> i64 {
        self.scaled(150_000)
    }

    pub fn order_count(&self) -> i64 {
        self.scaled(1_500_000)
    }

    fn rng(&self, stream: u64) -> Pcg32 {
        Pcg32::new(self.seed, stream)
    }

    /// Generate all eight tables.
    pub fn generate(&self) -> TpchData {
        let (orders, lineitem) = self.orders_and_lineitems();
        TpchData {
            region: self.region(),
            nation: self.nation(),
            supplier: self.supplier(),
            part: self.part(),
            partsupp: self.partsupp(),
            customer: self.customer(),
            orders,
            lineitem,
        }
    }

    /// Generate orders and lineitems together (they are correlated: the
    /// order's status and total price are derived from its line items).
    pub fn orders_and_lineitems(&self) -> (Vec<Order>, Vec<LineItem>) {
        let mut rng = self.rng(7);
        let n_orders = self.order_count();
        let n_cust = self.customer_count();
        let n_part = self.part_count();
        let n_supp = self.supplier_count();
        let current = current_date();
        let mut orders = Vec::with_capacity(n_orders as usize);
        let mut items = Vec::new();
        for okey in 1..=n_orders {
            // Customers divisible by 3 never order (official rule) unless
            // the population is too small to allow skipping.
            let custkey = loop {
                let c = rng.range_i64(1, n_cust);
                if c % 3 != 0 || n_cust < 3 {
                    break c;
                }
            };
            let orderdate = rng.range_i64(start_date() as i64, last_order_date() as i64) as Day;
            let lines = rng.range_i64(1, 7);
            let mut total: Money = 0;
            let mut all_f = true;
            let mut all_o = true;
            for line in 1..=lines {
                let partkey = rng.range_i64(1, n_part);
                let suppkey = partsupp_suppkey(partkey, rng.range_i64(0, 3), n_supp);
                let quantity = rng.range_i64(1, 50);
                let extendedprice = quantity * retail_price(partkey);
                let discount = rng.range_i64(0, 10);
                let tax = rng.range_i64(0, 8);
                let shipdate = orderdate + rng.range_i64(1, 121) as Day;
                let commitdate = orderdate + rng.range_i64(30, 90) as Day;
                let receiptdate = shipdate + rng.range_i64(1, 30) as Day;
                let returnflag = if receiptdate <= current {
                    if rng.chance(0.5) {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                };
                let linestatus = if shipdate > current { "O" } else { "F" };
                all_f &= linestatus == "F";
                all_o &= linestatus == "O";
                // charge = extprice * (1 - disc) * (1 + tax), in cents.
                let charge = extendedprice as f64 * (1.0 - discount as f64 / 100.0)
                    * (1.0 + tax as f64 / 100.0);
                total += charge.round() as Money;
                items.push(LineItem {
                    l_orderkey: okey,
                    l_partkey: partkey,
                    l_suppkey: suppkey,
                    l_linenumber: line,
                    l_quantity: quantity,
                    l_extendedprice: extendedprice,
                    l_discount: discount,
                    l_tax: tax,
                    l_returnflag: returnflag.to_string(),
                    l_linestatus: linestatus.to_string(),
                    l_shipdate: shipdate,
                    l_commitdate: commitdate,
                    l_receiptdate: receiptdate,
                    l_shipinstruct: rng.pick_str(SHIP_INSTRUCT).to_string(),
                    l_shipmode: rng.pick_str(SHIP_MODES).to_string(),
                    l_comment: text::comment(&mut rng, 44),
                });
            }
            let status = if all_f {
                "F"
            } else if all_o {
                "O"
            } else {
                "P"
            };
            let comment = if rng.chance(0.10) {
                text::comment_with_marker(&mut rng, 79, "special", "requests")
            } else {
                text::comment(&mut rng, 79)
            };
            orders.push(Order {
                o_orderkey: okey,
                o_custkey: custkey,
                o_orderstatus: status.to_string(),
                o_totalprice: total,
                o_orderdate: orderdate,
                o_orderpriority: rng.pick_str(PRIORITIES).to_string(),
                o_clerk: format!("Clerk#{:09}", rng.range_i64(1, self.scaled(1_000))),
                o_shippriority: 0,
                o_comment: comment,
            });
        }
        (orders, items)
    }

    pub fn region(&self) -> Vec<Region> {
        let mut rng = self.rng(1);
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| Region {
                r_regionkey: i as i64,
                r_name: name.to_string(),
                r_comment: text::comment(&mut rng, 152),
            })
            .collect()
    }

    pub fn nation(&self) -> Vec<Nation> {
        let mut rng = self.rng(2);
        NATIONS
            .iter()
            .enumerate()
            .map(|(i, (name, region))| Nation {
                n_nationkey: i as i64,
                n_name: name.to_string(),
                n_regionkey: *region,
                n_comment: text::comment(&mut rng, 152),
            })
            .collect()
    }

    pub fn supplier(&self) -> Vec<Supplier> {
        let mut rng = self.rng(3);
        (1..=self.supplier_count())
            .map(|key| {
                let nationkey = rng.range_i64(0, 24);
                // Planted complaint/recommendation markers for Q16-style
                // predicates (see module docs for the rate deviation).
                let comment = if key % 100 == 3 {
                    text::comment_with_marker(&mut rng, 101, "Customer", "Complaints")
                } else if key % 100 == 53 {
                    text::comment_with_marker(&mut rng, 101, "Customer", "Recommends")
                } else {
                    text::comment(&mut rng, 101)
                };
                Supplier {
                    s_suppkey: key,
                    s_name: format!("Supplier#{key:09}"),
                    s_address: text::v_string(&mut rng, 10, 40),
                    s_nationkey: nationkey,
                    s_phone: text::phone(&mut rng, nationkey),
                    s_acctbal: rng.range_i64(-99_999, 999_999),
                    s_comment: comment,
                }
            })
            .collect()
    }

    pub fn part(&self) -> Vec<Part> {
        let mut rng = self.rng(4);
        (1..=self.part_count())
            .map(|key| {
                let mfgr = rng.range_i64(1, 5);
                let brand = mfgr * 10 + rng.range_i64(1, 5);
                let p_type = format!(
                    "{} {} {}",
                    rng.pick_str(TYPE_SYLLABLE_1),
                    rng.pick_str(TYPE_SYLLABLE_2),
                    rng.pick_str(TYPE_SYLLABLE_3)
                );
                let container = format!(
                    "{} {}",
                    rng.pick_str(CONTAINER_SYLLABLE_1),
                    rng.pick_str(CONTAINER_SYLLABLE_2)
                );
                Part {
                    p_partkey: key,
                    p_name: text::part_name(&mut rng),
                    p_mfgr: format!("Manufacturer#{mfgr}"),
                    p_brand: format!("Brand#{brand}"),
                    p_type,
                    p_size: rng.range_i64(1, 50),
                    p_container: container,
                    p_retailprice: retail_price(key),
                    p_comment: text::comment(&mut rng, 22),
                }
            })
            .collect()
    }

    pub fn partsupp(&self) -> Vec<PartSupp> {
        let mut rng = self.rng(5);
        let n_supp = self.supplier_count();
        let mut out = Vec::with_capacity(self.part_count() as usize * 4);
        for partkey in 1..=self.part_count() {
            for i in 0..4 {
                out.push(PartSupp {
                    ps_partkey: partkey,
                    ps_suppkey: partsupp_suppkey(partkey, i, n_supp),
                    ps_availqty: rng.range_i64(1, 9_999),
                    ps_supplycost: rng.range_i64(100, 100_000),
                    ps_comment: text::comment(&mut rng, 199),
                });
            }
        }
        out
    }

    pub fn customer(&self) -> Vec<Customer> {
        let mut rng = self.rng(6);
        (1..=self.customer_count())
            .map(|key| {
                let nationkey = rng.range_i64(0, 24);
                Customer {
                    c_custkey: key,
                    c_name: format!("Customer#{key:09}"),
                    c_address: text::v_string(&mut rng, 10, 40),
                    c_nationkey: nationkey,
                    c_phone: text::phone(&mut rng, nationkey),
                    c_acctbal: rng.range_i64(-99_999, 999_999),
                    c_mktsegment: rng.pick_str(SEGMENTS).to_string(),
                    c_comment: text::comment(&mut rng, 117),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn gen() -> TpchGen {
        TpchGen::new(0.001, 42)
    }

    #[test]
    fn cardinalities_follow_scale_factor() {
        let g = gen();
        let d = g.generate();
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.supplier.len(), 10);
        assert_eq!(d.part.len(), 200);
        assert_eq!(d.partsupp.len(), 800);
        assert_eq!(d.customer.len(), 150);
        assert_eq!(d.orders.len(), 1500);
        // 1..7 lines per order.
        assert!(d.lineitem.len() >= d.orders.len());
        assert!(d.lineitem.len() <= d.orders.len() * 7);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen().generate();
        let b = gen().generate();
        assert_eq!(a.lineitem, b.lineitem);
        assert_eq!(a.supplier, b.supplier);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TpchGen::new(0.001, 1).generate();
        let b = TpchGen::new(0.001, 2).generate();
        assert_ne!(a.lineitem, b.lineitem);
    }

    #[test]
    fn keys_are_dense_and_unique() {
        let d = gen().generate();
        let keys: HashSet<i64> = d.orders.iter().map(|o| o.o_orderkey).collect();
        assert_eq!(keys.len(), d.orders.len());
        assert!(d.part.iter().enumerate().all(|(i, p)| p.p_partkey == i as i64 + 1));
    }

    #[test]
    fn foreign_keys_are_valid() {
        let d = gen().generate();
        let n_supp = d.supplier.len() as i64;
        let n_part = d.part.len() as i64;
        let n_cust = d.customer.len() as i64;
        for ps in &d.partsupp {
            assert!((1..=n_supp).contains(&ps.ps_suppkey));
            assert!((1..=n_part).contains(&ps.ps_partkey));
        }
        for o in &d.orders {
            assert!((1..=n_cust).contains(&o.o_custkey));
        }
        for l in &d.lineitem {
            assert!((1..=n_part).contains(&l.l_partkey));
            assert!((1..=n_supp).contains(&l.l_suppkey));
        }
        for n in &d.nation {
            assert!((0..5).contains(&n.n_regionkey));
        }
    }

    #[test]
    fn lineitem_supplier_matches_partsupp() {
        // Every (l_partkey, l_suppkey) pair must exist in partsupp, or the
        // Q9/Q20 joins silently lose rows.
        let d = gen().generate();
        let pairs: HashSet<(i64, i64)> = d
            .partsupp
            .iter()
            .map(|ps| (ps.ps_partkey, ps.ps_suppkey))
            .collect();
        for l in &d.lineitem {
            assert!(
                pairs.contains(&(l.l_partkey, l.l_suppkey)),
                "({}, {}) not in partsupp",
                l.l_partkey,
                l.l_suppkey
            );
        }
    }

    #[test]
    fn date_invariants_hold() {
        let d = gen().generate();
        let by_key: std::collections::HashMap<i64, &Order> =
            d.orders.iter().map(|o| (o.o_orderkey, o)).collect();
        for l in &d.lineitem {
            let o = by_key[&l.l_orderkey];
            assert!(l.l_shipdate > o.o_orderdate);
            assert!(l.l_receiptdate > l.l_shipdate);
            assert!(l.l_commitdate >= o.o_orderdate + 30);
        }
    }

    #[test]
    fn status_flags_consistent_with_dates() {
        let d = gen().generate();
        let current = current_date();
        for l in &d.lineitem {
            if l.l_shipdate > current {
                assert_eq!(l.l_linestatus, "O");
                assert_eq!(l.l_returnflag, "N");
            } else {
                assert_eq!(l.l_linestatus, "F");
            }
            if l.l_receiptdate <= current {
                assert!(l.l_returnflag == "R" || l.l_returnflag == "A");
            }
        }
    }

    #[test]
    fn totalprice_matches_lineitems() {
        let d = gen().generate();
        let mut sums: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
        for l in &d.lineitem {
            let charge = l.l_extendedprice as f64 * (1.0 - l.l_discount as f64 / 100.0)
                * (1.0 + l.l_tax as f64 / 100.0);
            *sums.entry(l.l_orderkey).or_default() += charge.round();
        }
        for o in &d.orders {
            let expect = sums[&o.o_orderkey];
            assert!(
                (o.o_totalprice as f64 - expect).abs() < 1.0,
                "order {} total {} != {}",
                o.o_orderkey,
                o.o_totalprice,
                expect
            );
        }
    }

    #[test]
    fn customers_divisible_by_three_have_no_orders() {
        let d = TpchGen::new(0.01, 7).generate();
        for o in &d.orders {
            assert_ne!(o.o_custkey % 3, 0);
        }
    }

    #[test]
    fn query_critical_values_present() {
        let d = TpchGen::new(0.01, 42).generate();
        // Q16's anti-join subquery must be non-empty at SF 0.01.
        assert!(d
            .supplier
            .iter()
            .any(|s| s.s_comment.contains("Customer") && s.s_comment.contains("Complaints")));
        // Q13's excluded comment pattern must appear.
        assert!(d
            .orders
            .iter()
            .any(|o| o.o_comment.contains("special") && o.o_comment.contains("requests")));
        // Market segments cover Q3's BUILDING.
        assert!(d.customer.iter().any(|c| c.c_mktsegment == "BUILDING"));
        // Part types cover Q8's exact match.
        assert!(d.part.iter().any(|p| p.p_type == "ECONOMY ANODIZED STEEL"));
    }

    #[test]
    fn retail_price_formula() {
        assert_eq!(retail_price(1), 90_000 + 100);
        assert_eq!(retail_price(1000), (90_000 + 100));
    }

    #[test]
    fn partsupp_suppkey_in_range() {
        for pk in 1..=500 {
            for i in 0..4 {
                let sk = partsupp_suppkey(pk, i, 100);
                assert!((1..=100).contains(&sk));
            }
        }
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn zero_scale_factor_rejected() {
        TpchGen::new(0.0, 1);
    }
}
