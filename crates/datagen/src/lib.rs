//! # sqalpel-datagen
//!
//! Deterministic data generators for the sqalpel platform's sample
//! projects: a scale-factor-parameterized TPC-H `dbgen` equivalent
//! ([`tpch`]), the SSB star-schema derivation ([`ssb`]) and a synthetic
//! airtraffic dataset ([`airtraffic`]).
//!
//! Everything is driven by permanently-stable PCG streams ([`prng`]) so a
//! `(scale factor, seed)` pair always produces the same database — the
//! property the platform's repeatability story rests on.
//!
//! ```
//! use sqalpel_datagen::tpch::TpchGen;
//!
//! let data = TpchGen::new(0.001, 42).generate();
//! assert_eq!(data.nation.len(), 25);
//! assert!(data.lineitem.len() > 1000);
//! ```

pub mod airtraffic;
pub mod calendar;
pub mod prng;
pub mod ssb;
pub mod text;
pub mod tpch;

pub use prng::Pcg32;
pub use tpch::{TpchData, TpchGen};
