//! A tiny, permanently-stable PRNG for data generation.
//!
//! TPC-H's `dbgen` derives every column from its own seeded linear
//! congruential stream so that generated data is bit-reproducible across
//! versions and platforms. We mirror that design with PCG-XSH-RR 32
//! streams: one independently-seeded [`Pcg32`] per table/column concern.
//! (The `rand` crate's `StdRng` explicitly does not promise cross-version
//! stream stability, which would silently invalidate golden tests.)

/// PCG-XSH-RR 64/32 generator (O'Neill 2014).
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Create a generator from a seed and a stream id. Distinct stream ids
    /// yield statistically independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[low, high]` (inclusive), matching dbgen's
    /// `RANDOM(low, high)` convention.
    pub fn range_i64(&mut self, low: i64, high: i64) -> i64 {
        debug_assert!(low <= high);
        let span = (high - low) as u64 + 1;
        // Debiased multiply-shift rejection sampling.
        let threshold = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return low + (r % span) as i64;
            }
        }
    }

    /// Uniform in `[low, high]` for `u32` index use.
    pub fn range_usize(&mut self, low: usize, high: usize) -> usize {
        self.range_i64(low as i64, high as i64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len() - 1)]
    }

    /// Pick a uniformly random `&str` from a pool of string constants.
    ///
    /// (A separate method because the generic [`Self::pick`] would infer
    /// `T = str` at `&str`-expecting call sites.)
    pub fn pick_str<'a>(&mut self, items: &'a [&'a str]) -> &'a str {
        items[self.range_usize(0, items.len() - 1)]
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg32::new(42, 7);
        let mut b = Pcg32::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut rng = Pcg32::new(1, 1);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.range_i64(3, 7);
            assert!((3..=7).contains(&v));
            seen_low |= v == 3;
            seen_high |= v == 7;
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn single_point_range() {
        let mut rng = Pcg32::new(1, 1);
        assert_eq!(rng.range_i64(5, 5), 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::new(9, 3);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_roughly_uniform() {
        let mut rng = Pcg32::new(5, 5);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.range_usize(0, 9)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn golden_sequence_is_stable() {
        // Pins the stream so generated datasets never silently change.
        let mut rng = Pcg32::new(0xDEADBEEF, 54);
        let seq: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(seq, vec![4255644370, 397580619, 767597470, 1203437055]);
    }
}
