//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Literal-once rule** (§3.1): the space with distinct-subset
//!    semantics `C(n,k)` versus with-replacement choices `n^k`.
//! 2. **Order normalization** (§3.1): multiset templates versus ordered
//!    sequences `P(n,k) = C(n,k)·k!`.
//! 3. **Guided pool walk vs brute-force random** (§3.2 vs RAGS): novel
//!    queries and near-duplicate probes per generation attempt.

use sqalpel_core::QueryPool;
use sqalpel_grammar::Grammar;
use std::fmt::Write as _;

/// Ablation 1 + 2: recompute the space of a grammar under three counting
/// regimes and report the blow-up factors.
pub fn counting_regimes(grammar: &Grammar, cap: usize) -> String {
    let set = grammar.templates(cap).expect("enumerable grammar");
    let mut with_rule: u128 = 0; // C(n, k) — the paper's rule
    let mut ordered: u128 = 0; // P(n, k) — order not normalized
    let mut replacement: u128 = 0; // n^k — literals reusable
    for t in &set.templates {
        let mut a: u128 = 1;
        let mut b: u128 = 1;
        let mut c: u128 = 1;
        for (class, &k) in &t.counts {
            let n = grammar.class_size(class) as u128;
            a = a.saturating_mul(sqalpel_grammar::binomial(n as usize, k));
            let mut perm: u128 = 1;
            for i in 0..k as u128 {
                perm = perm.saturating_mul(n - i);
            }
            b = b.saturating_mul(perm);
            c = c.saturating_mul(n.saturating_pow(k as u32));
        }
        with_rule = with_rule.saturating_add(a);
        ordered = ordered.saturating_add(b);
        replacement = replacement.saturating_add(c);
    }
    let mut out = String::new();
    let _ = writeln!(out, "templates: {}{}", set.templates.len(), if set.truncated { " (capped)" } else { "" });
    let _ = writeln!(out, "space, literal-once + order-normalized (the paper): {with_rule}");
    let _ = writeln!(
        out,
        "space, ordered sequences (no order normalization):   {ordered}  ({:.1}x blow-up)",
        ordered as f64 / with_rule.max(1) as f64
    );
    let _ = writeln!(
        out,
        "space, with replacement (no literal-once rule):      {replacement}  ({:.1}x blow-up)",
        replacement as f64 / with_rule.max(1) as f64
    );
    out
}

/// Ablation 3: exploration efficiency of the guided walk vs brute-force
/// random draws over the same grammar. Both run until the pool stops
/// growing or `attempts` are spent; reports novel queries per attempt.
pub fn guidance_vs_random(grammar: &Grammar, attempts: usize) -> String {
    // Guided: baseline + a few random seeds, then the morphing walk.
    let mut guided = QueryPool::new(grammar.clone(), 10_000, 1_000_000).expect("pool");
    guided.seed_baseline().expect("baseline");
    let mut rng = sqalpel_grammar::seeded_rng(11);
    guided.add_random(5, &mut rng).expect("seeds");
    let guided_seeded = guided.len();
    let mut guided_hits = 0;
    for _ in 0..attempts {
        if guided.morph_auto(&mut rng).expect("morph").is_some() {
            guided_hits += 1;
        }
    }

    // Brute force: independent random template draws (RAGS-style).
    let mut random = QueryPool::new(grammar.clone(), 10_000, 1_000_000).expect("pool");
    random.seed_baseline().expect("baseline");
    let mut rng = sqalpel_grammar::seeded_rng(11);
    random.add_random(5, &mut rng).expect("seeds");
    let random_seeded = random.len();
    let mut random_hits = 0;
    for _ in 0..attempts {
        if !random.add_random(1, &mut rng).expect("draw").is_empty() {
            random_hits += 1;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "attempts per method: {attempts}");
    let _ = writeln!(
        out,
        "guided walk:  {} novel queries ({:.1}% hit rate), pool {} -> {}",
        guided_hits,
        100.0 * guided_hits as f64 / attempts as f64,
        guided_seeded,
        guided.len()
    );
    let _ = writeln!(
        out,
        "random draws: {} novel queries ({:.1}% hit rate), pool {} -> {}",
        random_hits,
        100.0 * random_hits as f64 / attempts as f64,
        random_seeded,
        random.len()
    );
    // Locality: how many guided queries sit one component away from their
    // parent (the property that makes differentials interpretable).
    let local = guided
        .entries()
        .iter()
        .filter(|e| match e.origin {
            sqalpel_core::Origin::Morph { parent, .. } => {
                let p = guided.entry(parent).expect("parent exists");
                e.components().abs_diff(p.components()) <= 1
            }
            _ => false,
        })
        .count();
    let _ = writeln!(
        out,
        "guided locality: {local} morphed queries within one component of their parent \
         (random draws have no parent structure)"
    );
    out
}

/// The full ablation report.
pub fn report() -> String {
    let q1 = sqalpel_grammar::convert_sql(sqalpel_sql::tpch::Q1).expect("Q1 converts");
    let fig1 = Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).expect("fig1");
    let mut out = String::from("## Ablations\n\n### Counting regimes, TPC-H Q1 grammar\n\n");
    out.push_str(&counting_regimes(&q1, 100_000));
    out.push_str("\n### Counting regimes, Figure 1 grammar\n\n");
    out.push_str(&counting_regimes(&fig1, 10_000));
    out.push_str("\n### Guided walk vs brute-force random, TPC-H Q1 grammar (large space)\n\n");
    out.push_str(&guidance_vs_random(&q1, 300));
    out.push_str(
        "\n### Guided walk vs brute-force random, Figure 1 grammar (small space, saturating)\n\n",
    );
    out.push_str(&guidance_vs_random(&fig1, 200));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_once_and_order_blowups_are_monotone() {
        let g = Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap();
        let text = counting_regimes(&g, 10_000);
        // fig1: 32 with the rule; ordered = sum over k of P(4,k) variants.
        assert!(text.contains("the paper): 32"), "{text}");
        // Both ablated regimes must be strictly larger.
        let nums: Vec<u128> = text
            .lines()
            .filter_map(|l| l.split(':').nth(1))
            .filter_map(|v| v.split_whitespace().next())
            .filter_map(|v| v.parse().ok())
            .collect();
        assert!(nums.len() >= 3, "{text}");
        assert!(nums[1] > nums[0] && nums[2] > nums[0], "{text}");
    }

    #[test]
    fn guidance_report_renders() {
        let g = Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap();
        let text = guidance_vs_random(&g, 50);
        assert!(text.contains("guided walk:"));
        assert!(text.contains("random draws:"));
    }
}
