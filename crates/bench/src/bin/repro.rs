//! Regenerate the paper's tables and figures, or run the platform live.
//!
//! ```text
//! repro table1 | table2 | fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | ablation | parallel [--smoke] | optimizer [--smoke] | wire [--bulk-smoke] | scale [--smoke] | all
//! repro serve [addr] [--state-dir DIR]        # demo platform: HTTP /v1 on addr, framed v2 on port+1;
//!                                             # with a state dir the platform is durable (WAL + snapshots)
//!                                             # and SIGINT/SIGTERM shut down gracefully
//! repro contribute <addr> <key> [dbms] [host] [--proto v1|v2] [--bulk]
//!                                             # drain the queue as a remote contributor; --bulk claims
//!                                             # many tasks at once and uploads each round as one
//!                                             # ReportBatch (v2: columnar frames, one ack)
//! repro metrics [addr]                        # print a server's /v1/metrics snapshot
//! ```
//!
//! Environment: `SQALPEL_SF` sets the base TPC-H scale factor (default
//! 0.02; Figure 3 also builds a 10× instance), `SQALPEL_REPS` the
//! repetitions per query (default 3).

use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "serve" => {
            serve(&args);
            return;
        }
        "contribute" => {
            contribute(&args);
            return;
        }
        "metrics" => {
            metrics(args.get(1).map(String::as_str));
            return;
        }
        _ => {}
    }
    let known = [
        "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "ablation", "parallel", "optimizer", "wire", "scale", "all",
    ];
    if !known.contains(&what) {
        eprintln!("usage: repro [{}]", known.join(" | "));
        eprintln!("       repro serve [addr] [--state-dir DIR]");
        eprintln!("       repro contribute <addr> <key> [dbms] [host] [--proto v1|v2] [--bulk]");
        eprintln!("       repro metrics [addr]");
        std::process::exit(2);
    }
    let t0 = Instant::now();
    let run = |name: &str| what == "all" || what == name;
    if run("table1") {
        println!("{}", sqalpel_bench::table1());
    }
    if run("table2") {
        println!("{}", sqalpel_bench::table2());
    }
    if run("fig1") {
        println!("{}", sqalpel_bench::fig1());
    }
    if run("fig2") {
        println!("{}", sqalpel_bench::fig2());
    }
    if what == "all" {
        // Compute Figure 3 once and derive Figure 4 from it.
        let (text, report, pool) = sqalpel_bench::fig3();
        println!("{text}");
        println!("{}", sqalpel_bench::fig4_from(report, &pool));
    } else {
        if run("fig3") {
            let (text, _, _) = sqalpel_bench::fig3();
            println!("{text}");
        }
        if run("fig4") {
            println!("{}", sqalpel_bench::fig4());
        }
    }
    if run("fig5") || run("fig6") {
        let (fig5, fig6) = sqalpel_bench::fig5_fig6();
        if run("fig5") {
            println!("{fig5}");
        }
        if run("fig6") {
            println!("{fig6}");
        }
    }
    if run("fig7") {
        println!("{}", sqalpel_bench::fig7());
    }
    if run("ablation") {
        println!("{}", sqalpel_bench::ablations::report());
    }
    if run("parallel") {
        let smoke = args.iter().any(|a| a == "--smoke");
        println!("{}", sqalpel_bench::parallel_report_opts(smoke));
    }
    if run("optimizer") {
        let smoke = args.iter().any(|a| a == "--smoke");
        println!("{}", sqalpel_bench::optimizer_report_opts(smoke));
    }
    if run("wire") {
        if args.iter().any(|a| a == "--bulk-smoke") {
            println!("{}", sqalpel_bench::wire_bulk_smoke());
        } else {
            println!("{}", sqalpel_bench::wire_report());
        }
    }
    if what == "scale" {
        // Deliberately not part of `all`: the full run registers ~1M
        // users and is sized for a dedicated benchmark pass.
        let smoke = args.iter().any(|a| a == "--smoke");
        println!("{}", sqalpel_bench::scale_report_opts(smoke));
    }
    eprintln!("[repro {what} done in {:.1?}]", t0.elapsed());
}

/// Set by the SIGINT/SIGTERM handler; the serve loop polls it.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Only async-signal-safe work here: one atomic store.
    SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Route SIGINT and SIGTERM to the shutdown flag via raw libc `signal`
/// (no crate dependency; the handler address is a plain fn pointer).
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// `repro serve [addr] [--state-dir DIR]`: bootstrap the demo projects,
/// enqueue the TPC-H experiments, and serve the platform API — v1
/// JSON/HTTP on `addr` and the framed binary v2 protocol on `port+1`,
/// both with an engine execution backend attached so `Execute` (and its
/// plan cache) works remotely.
///
/// With `--state-dir` the platform is durable: every mutation is WAL-
/// logged before it is acknowledged, snapshots land every 10k records,
/// and a restart recovers snapshot + WAL tail — the demo bootstrap runs
/// only when the directory is empty. SIGINT/SIGTERM drain the in-flight
/// wire handlers, take a final snapshot and fsync the WAL before exit.
fn serve(args: &[String]) {
    use sqalpel_core::{
        bootstrap_server, AdmissionConfig, ExecBackend, SqalpelServer, UserId, V2Config, V2Server,
        WireConfig, WireServer,
    };
    use sqalpel_engine::{Database, PlanCache, RowStore};

    // Route SIGINT/SIGTERM to the shutdown flag before anything is
    // reachable from outside: once the banner is out a supervisor may
    // signal us immediately, and a raw-disposition SIGTERM would skip
    // the drain + final snapshot.
    install_signal_handlers();

    let mut addr = String::from("127.0.0.1:7878");
    let mut state_dir: Option<std::path::PathBuf> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        if a == "--state-dir" {
            match it.next() {
                Some(dir) => state_dir = Some(dir.into()),
                None => {
                    eprintln!("--state-dir takes a directory");
                    std::process::exit(2);
                }
            }
        } else {
            addr = a.clone();
        }
    }

    let server = match &state_dir {
        Some(dir) => Arc::new(
            SqalpelServer::open_with(dir, AdmissionConfig::default(), Some(10_000))
                .unwrap_or_else(|e| {
                    eprintln!("cannot open state dir {}: {e}", dir.display());
                    std::process::exit(1);
                }),
        ),
        None => Arc::new(SqalpelServer::new()),
    };

    // Bootstrap demo data only on a fresh boot; a recovered state dir
    // already carries its projects, queue and results.
    let (admin, tasks) = if server.recovered_fresh() {
        let boot = bootstrap_server(&server, 6, 42).expect("bootstrap demo projects");
        let mut tasks = 0;
        for (_, exp) in &boot.tpch_experiments {
            tasks += server
                .enqueue_experiment(boot.tpch, *exp, boot.admin)
                .expect("enqueue");
        }
        (boot.admin, tasks)
    } else {
        let s = server.queue_summary();
        eprintln!(
            "recovered state: {} queued, {} running, {} finished, {} failed",
            s.queued, s.running, s.finished, s.failed
        );
        // The bootstrap admin is always user #1 in a dir this command wrote.
        (UserId(1), s.queued)
    };
    let key = server.issue_key(admin).expect("contributor key");
    let db = Arc::new(Database::tpch(sqalpel_bench::base_sf(), 42));
    let backend = ExecBackend::new(Arc::new(
        RowStore::new(db).with_plan_cache(Arc::new(PlanCache::new(256))),
    ));
    let mut wire = WireServer::start_with_backend(
        Arc::clone(&server),
        Some(backend.clone()),
        &addr,
        WireConfig::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = wire.local_addr();
    let v2_addr = std::net::SocketAddr::new(local.ip(), local.port().wrapping_add(1));
    let mut v2 = V2Server::start(Arc::clone(&server), Some(backend), v2_addr, V2Config::default())
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {v2_addr} for protocol v2: {e}");
            std::process::exit(1);
        });
    println!("sqalpel platform serving on http://{local}/v1");
    println!("framed binary protocol v2 on tcp://{}", v2.local_addr());
    println!("{tasks} tasks queued");
    println!("demo contributor key: {}", key.0);
    println!();
    println!("drain the queue from another terminal:");
    println!("  repro contribute {local} {} rowstore-2.0 bench-server", key.0);
    println!("  repro contribute {} {} rowstore-2.0 bench-server --proto v2", v2.local_addr(), key.0);
    println!();
    println!("or poke the API directly:");
    println!("  GET  http://{local}/v1/queue/summary");
    println!("  POST http://{local}/v1/task/request   {{\"key\": ..., \"dbms_label\": ..., \"host\": ...}}");
    println!("  POST http://{local}/v1/result/report  {{\"key\": ..., \"task\": ..., \"outcome\": ...}}");

    while !SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // Graceful shutdown: stop accepting and drain in-flight handlers
    // first (they may still append WAL records), then persist.
    eprintln!("signal received: draining connections");
    wire.shutdown();
    v2.shutdown();
    if state_dir.is_some() {
        match server.snapshot_now() {
            Ok(lsn) => eprintln!("final snapshot at lsn {lsn}"),
            Err(e) => eprintln!("final snapshot failed: {e}"),
        }
        if let Err(e) = server.flush_wal() {
            eprintln!("wal fsync failed: {e}");
        }
    }
    eprintln!("shutdown complete");
}

/// `repro metrics [addr]`: fetch `GET /v1/metrics` from a running server
/// and print the snapshot. Without an address, spins up a loopback demo
/// (bootstrap + one drained experiment) and prints the metrics that run
/// produced, so the output format can be inspected offline.
fn metrics(addr: Option<&str>) {
    use sqalpel_core::{
        bootstrap_server, DriverConfig, EngineConnector, ExperimentDriver, SqalpelServer,
        WireClient, WireConfig, WireServer, Worker,
    };
    use sqalpel_engine::{Database, RowStore};
    use std::net::ToSocketAddrs;

    let client = match addr {
        Some(addr) => {
            let addr = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .unwrap_or_else(|| {
                    eprintln!("cannot resolve address {addr}");
                    std::process::exit(2);
                });
            WireClient::builder(addr).build()
        }
        None => {
            // Loopback demo: serve a bootstrapped platform, drain one
            // experiment through the wire, and read back the metrics the
            // run left behind. The WireServer thread is leaked — the
            // process exits right after printing.
            let server = Arc::new(SqalpelServer::new());
            let boot = bootstrap_server(&server, 4, 42).expect("bootstrap demo projects");
            let exp = boot.tpch_experiments.first().expect("a demo experiment").1;
            server
                .enqueue_experiment(boot.tpch, exp, boot.admin)
                .expect("enqueue");
            let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0", WireConfig::default())
                .expect("bind loopback");
            let client = WireClient::builder(wire.local_addr()).build();
            let key = server.issue_key(boot.admin).expect("contributor key");
            let db = Arc::new(Database::tpch(0.002, 42));
            let driver = ExperimentDriver::new(
                EngineConnector::new(Arc::new(RowStore::new(db))),
                DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 2")
                    .expect("driver config"),
            );
            sqalpel_core::run_worker_pool(&client, vec![Worker::new(key, driver)]);
            std::mem::forget(wire);
            client
        }
    };
    match client.metrics() {
        Ok(snap) => print!("{}", sqalpel_bench::format_metrics(&snap)),
        Err(e) => {
            eprintln!("metrics fetch failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro contribute <addr> <key> [dbms] [host] [--proto v1|v2] [--bulk]`:
/// connect to a running `repro serve`, claim tasks for one target, run
/// them on the local engine, and report the measurements back — over
/// JSON/HTTP (`v1`, the default) or the framed binary protocol (`v2`).
///
/// `--bulk` switches to the streaming upload shape: claim a whole round
/// of tasks under distinct nonces, run them all, and report the round as
/// one `ReportBatch` (over v2 that is columnar continuation frames with
/// a single ack and one WAL group commit on the server). Over v2 the
/// contributor also subscribes for server push, so an empty queue parks
/// on the socket instead of sleeping-and-polling.
fn contribute(args: &[String]) {
    use sqalpel_core::{
        ContributorKey, DriverConfig, EngineConnector, ExperimentDriver, PlatformError,
        PollPolicy, Proto, WireClient,
    };
    use sqalpel_engine::{ColStore, Database, RowStore};
    use std::net::ToSocketAddrs;

    // Split off `--proto <v>` and `--bulk` wherever they appear; the
    // rest stay positional.
    let mut proto = Proto::V1Http;
    let mut bulk = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--proto" {
            proto = match it.next().map(String::as_str) {
                Some("v1") => Proto::V1Http,
                Some("v2") => Proto::V2Framed,
                other => {
                    eprintln!("--proto takes v1 or v2, got {other:?}");
                    std::process::exit(2);
                }
            };
        } else if arg == "--bulk" {
            bulk = true;
        } else {
            positional.push(arg);
        }
    }
    let args = positional;
    let (Some(addr), Some(key)) = (args.get(1).copied(), args.get(2).copied()) else {
        eprintln!("usage: repro contribute <addr> <key> [dbms] [host] [--proto v1|v2] [--bulk]");
        std::process::exit(2);
    };
    let dbms = args.get(3).map(|s| s.as_str()).unwrap_or("rowstore-2.0");
    let host = args.get(4).map(|s| s.as_str()).unwrap_or("bench-server");
    let addr = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| {
            eprintln!("cannot resolve address {addr}");
            std::process::exit(2);
        });

    // Morphed variants can drop a join predicate and go cartesian; the
    // row budget kills those so they report as errors instead of hanging
    // the contributor (the paper's stuck-query guard). Legit queries
    // touch ~10M rows per unit of scale factor, so 100M×SF leaves an
    // order of magnitude of headroom while tripping runaways quickly.
    let sf = sqalpel_bench::base_sf();
    let budget = ((sf * 100_000_000.0) as u64).max(2_000_000);
    let db = Arc::new(Database::tpch(sf, 42));
    let connector = if dbms.starts_with("colstore") {
        EngineConnector::new(Arc::new(ColStore::new(db).with_budget(budget)))
    } else if dbms == "rowstore-1.4" {
        EngineConnector::new(Arc::new(RowStore::legacy(db).with_budget(budget)))
    } else {
        EngineConnector::new(Arc::new(RowStore::new(db).with_budget(budget)))
    };
    let driver = ExperimentDriver::new(
        connector,
        DriverConfig::parse(&format!(
            "dbms = {dbms}\nhost = {host}\nrepetitions = {}",
            sqalpel_bench::repetitions()
        ))
        .expect("driver config"),
    );

    let client = WireClient::builder(addr).transport(proto).build();
    let key = ContributorKey(key.clone());
    let mut completed = 0usize;
    // Empty polls and admission throttling back off instead of hammering
    // the server: a few retries ride out a queue that is refilling (or a
    // momentarily-exceeded in-flight bound) before the contributor
    // concludes the study is drained. Over v2 the backoff is a park on
    // the push subscription — an enqueue wakes the contributor
    // immediately and without spending retry budget; elsewhere it is the
    // jittered sleep.
    let policy = PollPolicy::polling(5);
    let mut empty = 0u32;
    let mut rng = std::process::id() as u64 ^ 0x5bd1e995;
    let mut waiter = client.subscribe_push(&key);
    if waiter.is_some() {
        println!("subscribed for server push: idle waits park on the socket");
    }
    let mut back_off = |empty: &mut u32| -> bool {
        if *empty >= policy.max_empty_polls {
            return false;
        }
        match waiter.as_mut() {
            Some(w) => match w.wait(policy.cap) {
                Ok(Some(_)) => {} // woken by the server: re-poll for free
                Ok(None) | Err(_) => *empty += 1,
            },
            None => {
                std::thread::sleep(policy.backoff(*empty, &mut rng));
                *empty += 1;
            }
        }
        true
    };
    if bulk {
        // Claim a whole round under distinct nonces (each nonce is a
        // separate outstanding claim), run everything, upload the round
        // as one batch. Throttling ends the round early: report what we
        // hold — that releases the in-flight slots.
        const ROUND: usize = 32;
        let mut nonce = 0u64;
        loop {
            let mut round = Vec::new();
            while round.len() < ROUND {
                nonce += 1;
                match client.claim_task(&key, dbms, host, nonce) {
                    Ok(Some(t)) => round.push(t),
                    Ok(None) | Err(PlatformError::Throttled(_)) => break,
                    Err(e) => {
                        eprintln!("claim failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            if round.is_empty() {
                if back_off(&mut empty) {
                    continue;
                }
                break;
            }
            empty = 0;
            let reports: Vec<_> = round.iter().map(|t| (t.id, driver.run(&t.sql))).collect();
            match client.report_batch(&key, &reports) {
                Ok(indices) => {
                    completed += round.len();
                    let errors = reports.iter().filter(|(_, o)| o.error.is_some()).count();
                    println!(
                        "batch of {} -> results #{}..#{} [{} ok, {errors} error]",
                        round.len(),
                        indices.iter().min().copied().unwrap_or(0),
                        indices.iter().max().copied().unwrap_or(0),
                        round.len() - errors,
                    );
                }
                Err(e) => {
                    eprintln!("bulk report of {} tasks failed: {e}", round.len());
                    std::process::exit(1);
                }
            }
        }
    } else {
        loop {
            let task = match client.request_task(&key, dbms, host) {
                Ok(Some(t)) => {
                    empty = 0;
                    t
                }
                Ok(None) | Err(PlatformError::Throttled(_)) => {
                    if back_off(&mut empty) {
                        continue;
                    }
                    break;
                }
                Err(e) => {
                    eprintln!("request failed: {e}");
                    std::process::exit(1);
                }
            };
            let outcome = driver.run(&task.sql);
            let status = match &outcome.error {
                Some(e) => format!("error: {e}"),
                None => "ok".into(),
            };
            match client.report_result(&key, task.id, &outcome) {
                Ok(index) => {
                    completed += 1;
                    println!("task {} -> result #{index} [{status}] {}", task.id.0, task.sql);
                }
                Err(e) => {
                    eprintln!("report for task {} failed: {e}", task.id.0);
                    std::process::exit(1);
                }
            }
        }
    }
    println!("queue drained for {dbms}@{host}: {completed} tasks completed");
    if let Ok(summary) = client.queue_summary() {
        println!(
            "server queue: {} queued, {} running, {} finished, {} failed",
            summary.queued, summary.running, summary.finished, summary.failed
        );
    }
}
