//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro table1 | table2 | fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | ablation | parallel | all
//! ```
//!
//! Environment: `SQALPEL_SF` sets the base TPC-H scale factor (default
//! 0.02; Figure 3 also builds a 10× instance), `SQALPEL_REPS` the
//! repetitions per query (default 3).

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let known = [
        "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "ablation", "parallel", "all",
    ];
    if !known.contains(&what) {
        eprintln!("usage: repro [{}]", known.join(" | "));
        std::process::exit(2);
    }
    let t0 = Instant::now();
    let run = |name: &str| what == "all" || what == name;
    if run("table1") {
        println!("{}", sqalpel_bench::table1());
    }
    if run("table2") {
        println!("{}", sqalpel_bench::table2());
    }
    if run("fig1") {
        println!("{}", sqalpel_bench::fig1());
    }
    if run("fig2") {
        println!("{}", sqalpel_bench::fig2());
    }
    if what == "all" {
        // Compute Figure 3 once and derive Figure 4 from it.
        let (text, report, pool) = sqalpel_bench::fig3();
        println!("{text}");
        println!("{}", sqalpel_bench::fig4_from(report, &pool));
    } else {
        if run("fig3") {
            let (text, _, _) = sqalpel_bench::fig3();
            println!("{text}");
        }
        if run("fig4") {
            println!("{}", sqalpel_bench::fig4());
        }
    }
    if run("fig5") || run("fig6") {
        let (fig5, fig6) = sqalpel_bench::fig5_fig6();
        if run("fig5") {
            println!("{fig5}");
        }
        if run("fig6") {
            println!("{fig6}");
        }
    }
    if run("fig7") {
        println!("{}", sqalpel_bench::fig7());
    }
    if run("ablation") {
        println!("{}", sqalpel_bench::ablations::report());
    }
    if run("parallel") {
        println!("{}", sqalpel_bench::parallel_report());
    }
    eprintln!("[repro {what} done in {:.1?}]", t0.elapsed());
}
