//! The paper's §5 demo scenario as a terminal walk-through: bootstrap the
//! platform with the sample projects, run one experiment end to end, and
//! print the pages a visitor would see.
//!
//! ```text
//! cargo run --release -p sqalpel-bench --bin sqalpel_demo
//! ```

use sqalpel_core::{
    bootstrap_server, reports, DriverConfig, EngineConnector, ExperimentDriver, SqalpelServer,
};
use sqalpel_engine::{ColStore, Database, RowStore};
use std::sync::Arc;

fn main() {
    // §5.2: top-menu — users, catalogs.
    let server = SqalpelServer::new();
    println!("=== sqalpel demo ===\n");
    println!("DBMS catalog: {}\n", server.dbms_labels().join(", "));

    // §1: "We bootstrap the platform with a sizable number of OLAP cases."
    let b = bootstrap_server(&server, 6, 42).expect("bootstrap");
    println!(
        "bootstrapped projects: tpch-olap ({} experiments), ssb-star-schema, airtraffic-ontime\n",
        b.tpch_experiments.len()
    );

    // §5.3/§5.4: open the Q6 experiment, show its pages.
    let (name, exp) = b.tpch_experiments[2];
    assert_eq!(name, "Q6");
    server
        .morph_pool(b.tpch, exp, b.admin, None, 8, 7)
        .expect("morph");
    let (page5, page6) = server
        .with_project_view(b.tpch, b.admin, |p| {
            let e = p.experiment(exp).expect("exists");
            (reports::experiment_page(p, e), reports::pool_page(&e.pool))
        })
        .expect("view");
    println!("{page5}");
    println!("{page6}");

    // §5.5: contribute results with the driver against two systems.
    let tasks = server.enqueue_experiment(b.tpch, exp, b.admin).expect("enqueue");
    println!("enqueued {tasks} tasks\n");
    let key = server.issue_key(b.admin).expect("key");
    let db = Arc::new(Database::tpch(0.005, 42));
    for label in ["rowstore-2.0", "rowstore-1.4", "colstore-5.1"] {
        let dbms: Arc<dyn sqalpel_engine::Dbms> = match label {
            "rowstore-2.0" => Arc::new(RowStore::new(db.clone())),
            "rowstore-1.4" => Arc::new(RowStore::legacy(db.clone())),
            _ => Arc::new(ColStore::new(db.clone())),
        };
        let connector = EngineConnector::new(dbms);
        let driver = ExperimentDriver::new(
            connector,
            DriverConfig::parse(&format!("dbms = {label}\nhost = bench-server\nrepetitions = 5"))
                .expect("config"),
        );
        let mut n = 0;
        while let Some(task) = server
            .request_task(&key, label, "bench-server")
            .expect("request")
        {
            let outcome = driver.run(&task.sql);
            server.report_result(&key, task.id, outcome).expect("report");
            n += 1;
        }
        println!("{label}: contributed {n} results");
    }

    // §5.6: visual analytics — history and CSV export.
    let records = server.results_for(b.tpch, b.admin).expect("results");
    let nodes = server
        .with_project_view(b.tpch, b.admin, |p| {
            sqalpel_core::analytics::history(&p.experiment(exp).expect("exists").pool, &records)
        })
        .expect("view");
    println!("\n{}", reports::history_page(&nodes));
    let csv = server.export_csv(b.tpch, b.admin).expect("csv");
    println!("CSV export ready: {} data rows", csv.lines().count() - 1);
}
