//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each `fig*`/`table*` function computes one artifact and returns it as a
//! printable report; the `repro` binary is a thin dispatcher over them.
//! Scale factors are sized for a laptop run and can be raised with the
//! `SQALPEL_SF` environment variable (the base scale; Figure 3 uses
//! `10 × SQALPEL_SF` for its larger instance).

pub mod ablations;

use sqalpel_core::analytics::{self, SpeedupReport};
use sqalpel_core::{reports, QueryId, QueryPool};
use sqalpel_engine::{ColStore, Database, Dbms, RowStore};
use sqalpel_grammar::Grammar;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The base scale factor for engine-backed experiments.
pub fn base_sf() -> f64 {
    std::env::var("SQALPEL_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02)
}

/// Repetitions per query (the paper's driver default is 5; 3 keeps the
/// full reproduction under a few minutes).
pub fn repetitions() -> usize {
    std::env::var("SQALPEL_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Build the Q1 query pool: baseline + random seeds + a morphing walk.
pub fn q1_pool(n_random: usize, n_morph: usize, seed: u64) -> QueryPool {
    let grammar = sqalpel_grammar::convert_sql(sqalpel_sql::tpch::Q1).expect("Q1 converts");
    let mut pool = QueryPool::new(grammar, 10_000, 10_000).expect("valid grammar");
    pool.seed_baseline().expect("baseline");
    let mut rng = sqalpel_grammar::seeded_rng(seed);
    pool.add_random(n_random, &mut rng).expect("random seeds");
    for _ in 0..n_morph {
        let _ = pool.morph_auto(&mut rng).expect("morph");
    }
    pool
}

/// Run every pool query against a system; returns median times for the
/// queries that executed and the ids that errored.
pub fn measure_pool(
    pool: &QueryPool,
    dbms: &dyn Dbms,
    reps: usize,
) -> (HashMap<QueryId, f64>, Vec<QueryId>) {
    let mut times = HashMap::new();
    let mut errors = Vec::new();
    for entry in pool.entries() {
        let mut runs = Vec::with_capacity(reps);
        let mut failed = false;
        for _ in 0..reps {
            let t0 = Instant::now();
            match dbms.execute(&entry.sql) {
                Ok(_) => runs.push(t0.elapsed().as_secs_f64() * 1e3),
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            errors.push(entry.id);
        } else {
            runs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            times.insert(entry.id, runs[runs.len() / 2]);
        }
    }
    (times, errors)
}

// ----------------------------------------------------------------- tables

/// Table 1: TPC benchmark adoption (literature data quoted by the paper).
pub fn table1() -> String {
    let mut out = String::from("## Table 1 — TPC benchmarks (tpc.org snapshot quoted by the paper)\n\n");
    out.push_str(&reports::tpc_table());
    out
}

/// Table 2: TPC-H query spaces from the automatic SQL→grammar conversion.
pub fn table2() -> String {
    let mut out = String::from(
        "## Table 2 — TPC-H query space (tags, templates, space per converted grammar)\n\n\
         query  tags  templates      space\n",
    );
    for (name, sql) in sqalpel_sql::tpch::all_queries() {
        let g = sqalpel_grammar::convert_sql(sql).expect("tpch converts");
        match g.space_report(sqalpel_grammar::DEFAULT_TEMPLATE_CAP) {
            Ok(r) => {
                let templates = if r.truncated {
                    format!(">{}", r.templates)
                } else {
                    r.templates.to_string()
                };
                let space = if r.truncated {
                    format!(">{}", r.space)
                } else {
                    r.space.to_string()
                };
                let _ = writeln!(out, "{name:<6} {:>4}  {templates:>9}  {space:>9}", r.tags);
            }
            Err(e) => {
                let _ = writeln!(out, "{name:<6} enumeration failed: {e}");
            }
        }
    }
    out
}

// ---------------------------------------------------------------- figures

/// Figure 1: the sample grammar, parsed, validated and measured.
pub fn fig1() -> String {
    let g = Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).expect("figure 1 grammar");
    let report = g.space_report(1000).expect("space");
    let mut out = String::from("## Figure 1 — sample sqalpel grammar\n\n");
    out.push_str(&g.to_string());
    let _ = writeln!(out, "\nvalidation: {}", g.check());
    let _ = writeln!(out, "space: {report}");
    out
}

/// Figure 2: dominant lexical components of TPC-H Q1 on the column store.
///
/// The paper's anecdote: "the dominant term in Q1 for MonetDB is
/// sum(l_extendedprice*(1-l_discount)*(1+l_tax)) as sum_charge … The
/// underlying reason stems from the way MonetDB evaluates such
/// expressions, which includes type casts to guard against overflow and
/// creation of fully materialized intermediates." ColStore reproduces
/// exactly that cost model.
pub fn fig2() -> String {
    let pool = q1_pool(40, 40, 2);
    let db = Arc::new(Database::tpch(base_sf(), 42));
    let col = ColStore::new(db);
    let (times, errors) = measure_pool(&pool, &col, repetitions());
    let ranked = analytics::components(&pool, &times);
    let mut out = format!(
        "## Figure 2 — dominant lexical components (Q1 pool on {}, SF {}, {} measured, {} errors)\n\n",
        col.label(),
        base_sf(),
        times.len(),
        errors.len()
    );
    out.push_str(&reports::components_page(&ranked, 12));
    if let Some(top) = ranked.first() {
        let _ = writeln!(
            out,
            "\ndominant term: {} (class {})",
            top.literal, top.class
        );
    }
    out
}

/// Figure 3: query speedup between the same system on SF and 10×SF.
///
/// Paper: "the base line query SF 1 Q1 runs about a factor 8 slower on a
/// 10 times larger database instance. However, looking at the query
/// variations it actually shows a spread of a factor 8-14."
pub fn fig3() -> (String, Option<SpeedupReport>, QueryPool) {
    let pool = q1_pool(15, 20, 3);
    let sf = base_sf();
    let small = Arc::new(Database::tpch(sf, 42));
    let large = Arc::new(Database::tpch(sf * 10.0, 42));
    let col_small = ColStore::new(small);
    let col_large = ColStore::new(large);
    let reps = repetitions();
    let (t_small, _) = measure_pool(&pool, &col_small, reps);
    let (t_large, _) = measure_pool(&pool, &col_large, reps);
    let report = analytics::speedup(&t_small, &t_large);
    let mut out = format!(
        "## Figure 3 — slowdown of {} between SF {sf} and SF {} (per Q1 variant)\n\n",
        col_small.label(),
        sf * 10.0
    );
    match &report {
        Some(r) => {
            out.push_str(&reports::speedup_page(
                r,
                &format!("SF {sf}"),
                &format!("SF {}", sf * 10.0),
            ));
            let baseline_factor = r.factors.first().map(|(_, f)| *f).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "\nbaseline query factor: {baseline_factor:.2}x; variant spread {:.2}x–{:.2}x",
                r.min, r.max
            );
        }
        None => out.push_str("no overlapping measurements\n"),
    }
    (out, report, pool)
}

/// Figure 4: the differential page for the extreme variants of Figure 3.
pub fn fig4() -> String {
    let (_, report, pool) = fig3();
    fig4_from(report, &pool)
}

/// Figure 4 from precomputed Figure 3 measurements (used by `repro all`).
pub fn fig4_from(report: Option<SpeedupReport>, pool: &QueryPool) -> String {
    let Some(report) = report else {
        return "## Figure 4 — no data\n".into();
    };
    let hi = report
        .factors
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    let lo = report
        .factors
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    let q_hi = pool.entry(hi.0).expect("entry");
    let q_lo = pool.entry(lo.0).expect("entry");
    let diff = analytics::differential(&q_lo.sql, &q_hi.sql);

    // Per-system timings of the two variants (row vs column store).
    let db = Arc::new(Database::tpch(base_sf(), 42));
    let systems: Vec<Box<dyn Dbms>> = vec![
        Box::new(RowStore::new(db.clone())),
        Box::new(ColStore::new(db)),
    ];
    let mut out = format!(
        "## Figure 4 — query differential (least-affected {:.2}x vs most-affected {:.2}x)\n\n",
        lo.1, hi.1
    );
    let _ = writeln!(out, "token diff (-: least-affected only, +: most-affected only):");
    out.push_str(&analytics::render_diff(&diff));
    let _ = writeln!(out, "\nper-system medians:");
    for sys in &systems {
        for (tag, q) in [("least", q_lo), ("most", q_hi)] {
            let mut runs = Vec::new();
            for _ in 0..repetitions() {
                let t0 = Instant::now();
                if sys.execute(&q.sql).is_ok() {
                    runs.push(t0.elapsed().as_secs_f64() * 1e3);
                }
            }
            runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = runs
                .get(runs.len() / 2)
                .map(|m| format!("{m:.2}ms"))
                .unwrap_or_else(|| "error".into());
            let _ = writeln!(out, "  {:<14} {:<6} {median}", sys.label(), tag);
        }
    }
    out
}

/// Figures 5 & 6: the experiment (grammar) page and the pool page of a
/// demo project.
pub fn fig5_fig6() -> (String, String) {
    use sqalpel_core::{Project, ProjectId, UserId, Visibility};
    let mut project = Project::new(
        ProjectId(1),
        "tpch-q1-study",
        "Discriminative exploration of TPC-H Q1; data generated by sqalpel-datagen \
         (dbgen derivative, scale-factor parameterized).",
        UserId(1),
        Visibility::Public,
    );
    let id = project
        .add_experiment(
            UserId(1),
            "Q1 pricing summary",
            sqalpel_sql::tpch::Q1,
            None,
            10_000,
            1000,
        )
        .expect("experiment");
    {
        let exp = project.experiment_mut(id).expect("exists");
        exp.pool.seed_baseline().expect("baseline");
        let mut rng = sqalpel_grammar::seeded_rng(4);
        exp.pool.add_random(8, &mut rng).expect("seeds");
        for _ in 0..8 {
            let _ = exp.pool.morph_auto(&mut rng).expect("morph");
        }
    }
    let exp = project.experiment(id).expect("exists");
    let fig5 = format!(
        "## Figure 5 — experiment page\n\n{}",
        reports::experiment_page(&project, exp)
    );
    let fig6 = format!("## Figure 6 — query pool page\n\n{}", reports::pool_page(&exp.pool));
    (fig5, fig6)
}

/// Figure 7: the experiment history of a full guided session, run on two
/// versions of the same system (the intro's scenario: RowStore 2.0 with
/// hash joins vs 1.4 with nested loops), plus the discriminative queries
/// the walk surfaces. Variants that drop a joined table but keep its
/// predicates fail to execute — the yellow error dots of the figure.
pub fn fig7() -> String {
    let grammar = sqalpel_grammar::convert_sql(sqalpel_sql::tpch::Q3).expect("Q3 converts");
    let mut pool = QueryPool::new(grammar, 10_000, 10_000).expect("valid grammar");
    pool.seed_baseline().expect("baseline");
    let mut rng = sqalpel_grammar::seeded_rng(7);
    pool.add_random(20, &mut rng).expect("random seeds");
    for _ in 0..30 {
        let _ = pool.morph_auto(&mut rng).expect("morph");
    }

    // A small instance: the nested-loop version must be able to finish
    // its two-table variants, while three-table variants exceed the row
    // budget and surface as killed runs (the paper's stuck-query story).
    let sf = (base_sf() / 10.0).max(0.001);
    let db = Arc::new(Database::tpch(sf, 42));
    // Both versions run under a server-side row budget: variants that
    // morphed away a join predicate go cartesian and are killed (the
    // paper's stuck-query timeout), surfacing as error dots.
    let new_version = RowStore::new(db.clone()).with_budget(8_000_000);
    let old_version = RowStore::legacy(db.clone()).with_budget(4_000_000);
    let reps = repetitions();
    let (t_new, e_new) = measure_pool(&pool, &new_version, reps);
    // The nested-loop version is measured once per query: its slow runs
    // are two orders of magnitude above timer noise anyway.
    let (t_old, e_old) = measure_pool(&pool, &old_version, 1);

    // Assemble result records so the history view sees both versions.
    let mut records = Vec::new();
    for entry in pool.entries() {
        for (label, times) in [(new_version.label(), &t_new), (old_version.label(), &t_old)] {
            let (times_ms, error) = match times.get(&entry.id) {
                Some(&m) => (vec![m], None),
                None => (vec![], Some("execution failed".to_string())),
            };
            records.push(sqalpel_core::results::record(
                sqalpel_core::TaskId(records.len() as u64),
                sqalpel_core::ProjectId(1),
                sqalpel_core::ExperimentId(0),
                entry.id,
                &label,
                "bench-server",
                &sqalpel_core::ContributorKey("ck_repro".into()),
                times_ms,
                0,
                error,
            ));
        }
    }
    let nodes = analytics::history(&pool, &records);
    let mut out = format!(
        "## Figure 7 — experiment history (Q3 pool, rowstore-2.0 vs rowstore-1.4, SF {sf}, \
         {}/{} error runs)\n\n",
        e_new.len(),
        e_old.len()
    );
    out.push_str(&reports::history_page(&nodes));

    // Factors t_old / t_new: large where the hash-join upgrade pays off.
    let (upgrade_wins, regressions) = analytics::discriminative(&t_new, &t_old, 1.5);
    let _ = writeln!(
        out,
        "\ndiscriminative queries (>=1.5x): {} much faster on 2.0 (hash joins), {} faster on 1.4",
        upgrade_wins.len(),
        regressions.len()
    );
    for id in upgrade_wins.iter().take(3) {
        let f = t_old[id] / t_new[id];
        let _ = writeln!(out, "  {:>7.1}x  {}", f, pool.entry(*id).expect("entry").sql);
    }
    if let Some(r) = analytics::speedup(&t_new, &t_old) {
        let _ = writeln!(
            out,
            "version factors span {:.2}x-{:.2}x over {} variants both versions completed",
            r.min,
            r.max,
            r.factors.len()
        );
    }

    // The cross-system comparison of the same pool (row vs column store).
    let col = ColStore::new(db).with_budget(20_000_000);
    let (t_col, _) = measure_pool(&pool, &col, reps);
    let (row_wins, col_wins) = analytics::discriminative(&t_new, &t_col, 1.5);
    let _ = writeln!(
        out,
        "\ncross-system on the same pool: {} queries favor rowstore-2.0, {} favor colstore (>=1.5x)",
        row_wins.len(),
        col_wins.len()
    );
    out
}

// ------------------------------------------------- parallel execution

/// Thread counts swept by the parallel report.
const PAR_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Median per configuration with the configurations interleaved
/// round-robin (one repetition of each per round, after a warmup run):
/// on a shared host, slow drift then biases every thread count equally
/// instead of whichever happened to run last.
fn interleaved_medians(dbmses: &[Box<dyn Dbms>], sql: &str, reps: usize) -> Vec<f64> {
    if let Some(first) = dbmses.first() {
        first.execute(sql).expect("parallel bench query executes");
    }
    let mut runs: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); dbmses.len()];
    for rep in 0..reps {
        // Rotate the starting configuration each round: allocator and
        // cache state warms up over a round, so a fixed order would tax
        // whichever configuration always ran last.
        for j in 0..dbmses.len() {
            let i = (rep + j) % dbmses.len();
            let t0 = Instant::now();
            dbmses[i].execute(sql).expect("parallel bench query executes");
            runs[i].push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    runs.into_iter()
        .map(|mut r| {
            r.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            r[r.len() / 2]
        })
        .collect()
}

/// Build a server holding an enqueued Q6 pool walk of roughly `tasks`
/// tasks (entries × one dbms × one host), plus a contributor to drain it.
fn walk_server(tasks: usize) -> (sqalpel_core::SqalpelServer, sqalpel_core::UserId, usize) {
    walk_server_on(sqalpel_core::SqalpelServer::new(), tasks)
}

/// [`walk_server`] on a caller-built server (e.g. one with an admission
/// bound wide enough for a bulk contributor to hold the whole queue).
fn walk_server_on(
    server: sqalpel_core::SqalpelServer,
    tasks: usize,
) -> (sqalpel_core::SqalpelServer, sqalpel_core::UserId, usize) {
    use sqalpel_core::Visibility;
    let owner = server.register_user("mlk", "mlk@cwi.nl").expect("owner");
    let contrib = server.register_user("pk", "pk@monetdb.com").expect("contributor");
    let project = server
        .create_project(owner, "walk", "parallel dispatch bench", Visibility::Public)
        .expect("project");
    server
        .set_targets(project, owner, vec!["rowstore-2.0".into()], vec!["bench-server".into()])
        .expect("targets");
    server.invite(project, owner, contrib).expect("invite");
    let exp = server
        .add_experiment(project, owner, "q1 walk", sqalpel_sql::tpch::Q1, None, 10_000, 10_000)
        .expect("experiment");
    server.seed_pool(project, exp, owner, tasks / 2, 42).expect("seed");
    server
        .morph_pool(project, exp, owner, None, tasks / 2, 7)
        .expect("morph");
    let total = server.enqueue_experiment(project, exp, owner).expect("enqueue");
    (server, contrib, total)
}

/// Drain `walk_server`'s queue with `n` workers talking to a simulated
/// remote target (fixed per-query latency — the paper's contributors run
/// against remote DBMSes, so dispatch is wait-bound, not compute-bound);
/// returns (tasks completed, wall seconds).
fn drain_walk(n: usize, tasks: usize) -> (usize, f64) {
    use sqalpel_core::{DriverConfig, ExperimentDriver, RemoteConnector, Worker};
    let (server, contrib, _total) = walk_server(tasks);
    let workers = (0..n)
        .map(|_| {
            let key = server.issue_key(contrib).expect("key");
            let connector = RemoteConnector {
                label: "rowstore-2.0".into(),
                latency: std::time::Duration::from_millis(10),
                rows: 1,
            };
            let driver = ExperimentDriver::new(
                connector,
                DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 3")
                    .expect("config"),
            );
            Worker::new(key, driver)
        })
        .collect();
    let report = sqalpel_core::run_worker_pool(&server, workers);
    (report.completed(), report.wall.as_secs_f64())
}

/// `repro parallel`: morsel-parallel engine speedups (scan, aggregate,
/// join at 1/2/4/8 threads) and the multi-worker queue drain, printed as
/// a table and written machine-readably to `BENCH_parallel.json`.
pub fn parallel_report() -> String {
    parallel_report_opts(false)
}

/// [`parallel_report`] with a smoke switch for CI: smoke mode shrinks the
/// scale factor, runs each configuration once, and does **not** overwrite
/// `BENCH_parallel.json` — it only proves the harness runs end to end.
pub fn parallel_report_opts(smoke: bool) -> String {
    use serde_json::{Map, Value};

    // The engine sweep needs lineitem far past the morsel spawn
    // threshold, so the scale floor is 0.1 regardless of SQALPEL_SF.
    let sf = if smoke { 0.02 } else { base_sf().max(0.1) };
    // A median needs at least three observations to mean anything, so the
    // report enforces that floor even when SQALPEL_REPS asks for fewer.
    let reps = if smoke { 1 } else { repetitions().max(3) };
    let db = Arc::new(Database::tpch(sf, 42));
    // Selective, expression-heavy predicate: the filter kernels dominate
    // and the small survivor set keeps result materialization (which is
    // sequential) off the critical path.
    let scan = "select l_orderkey, l_extendedprice from lineitem \
                where l_quantity < 2 and l_extendedprice * (1 - l_discount) * (1 + l_tax) > 1000";
    // Numeric group key and arguments: per-row hashing + accumulation is
    // the dominant cost and every accumulator merges exactly.
    let aggregate = "select l_suppkey, count(*), sum(l_quantity), min(l_extendedprice), \
                     max(l_extendedprice) from lineitem group by l_suppkey";
    let join = "select count(*) from lineitem, orders where l_orderkey = o_orderkey";
    // RowStore parallelizes only its scan+filter front end, so the
    // aggregate/join sweeps are ColStore-only.
    let cases: [(&str, &str, &str); 4] = [
        ("colstore-5.1", "scan", scan),
        ("colstore-5.1", "aggregate", aggregate),
        ("colstore-5.1", "join", join),
        ("rowstore-2.0", "scan", scan),
    ];

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = format!(
        "## Parallel execution — morsel speedups (SF {sf}, {reps} reps) and worker-pool dispatch\n\n\
         host offers {cores} core(s); thread counts beyond that measure overhead, not speedup\n\n\
         engine        op         t=1ms   t=2ms   t=4ms   t=8ms   4x-speedup\n"
    );
    let mut ops_json = Vec::new();
    for (engine, op, sql) in cases {
        let dbmses: Vec<Box<dyn Dbms>> = PAR_THREADS
            .iter()
            .map(|&t| -> Box<dyn Dbms> {
                if engine.starts_with("colstore") {
                    Box::new(ColStore::new(db.clone()).with_threads(t))
                } else {
                    Box::new(RowStore::new(db.clone()).with_threads(t))
                }
            })
            .collect();
        let medians = interleaved_medians(&dbmses, sql, reps);
        let speedup = medians[0] / medians[2].max(1e-9);
        let _ = writeln!(
            out,
            "{engine:<13} {op:<9} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {speedup:>9.2}x",
            medians[0], medians[1], medians[2], medians[3]
        );
        let mut o = Map::new();
        o.insert("engine".into(), Value::String(engine.into()));
        o.insert("op".into(), Value::String(op.into()));
        o.insert("sql".into(), Value::String(sql.into()));
        let mut per_thread = Map::new();
        for (t, m) in PAR_THREADS.iter().zip(&medians) {
            per_thread.insert(t.to_string(), Value::Float(*m));
        }
        o.insert("median_ms".into(), Value::Object(per_thread));
        o.insert("speedup_4_threads".into(), Value::Float(speedup));
        ops_json.push(Value::Object(o));
    }

    // The dispatch half: the same ~100-task pool walk drained by one
    // worker vs a pool of four, against a simulated remote target.
    let tasks = if smoke { 20 } else { 100 };
    let (seq_done, seq_s) = drain_walk(1, tasks);
    let (pool_done, pool_s) = drain_walk(4, tasks);
    let dispatch_speedup = seq_s / pool_s.max(1e-9);
    let _ = writeln!(
        out,
        "\npool walk: {seq_done} tasks in {seq_s:.2}s with 1 worker, \
         {pool_done} tasks in {pool_s:.2}s with 4 workers ({dispatch_speedup:.2}x)"
    );

    let mut walk = Map::new();
    walk.insert("tasks".into(), Value::Int(seq_done as i64));
    walk.insert("sequential_s".into(), Value::Float(seq_s));
    walk.insert("pool_workers".into(), Value::Int(4));
    walk.insert("pool_s".into(), Value::Float(pool_s));
    walk.insert("speedup".into(), Value::Float(dispatch_speedup));

    let mut root = Map::new();
    root.insert("sf".into(), Value::Float(sf));
    root.insert("available_parallelism".into(), Value::Int(cores as i64));
    root.insert("repetitions".into(), Value::Int(reps as i64));
    root.insert(
        "threads".into(),
        Value::Array(PAR_THREADS.iter().map(|&t| Value::Int(t as i64)).collect()),
    );
    root.insert("engine_ops".into(), Value::Array(ops_json));
    root.insert("pool_walk".into(), Value::Object(walk));
    if smoke {
        let _ = writeln!(out, "\nsmoke mode: BENCH_parallel.json left untouched");
        return out;
    }
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("serializable");
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "\nwrote BENCH_parallel.json");
        }
        Err(e) => {
            let _ = writeln!(out, "\ncould not write BENCH_parallel.json: {e}");
        }
    }
    out
}

// ------------------------------------------------ optimizer benchmark

/// The join-order slice: the five multi-join TPC-H queries the plan
/// goldens pin, where the syntactic FROM order is far from optimal.
const OPT_QUERIES: [&str; 5] = ["Q5", "Q7", "Q8", "Q9", "Q21"];

/// Median per configuration with the configurations interleaved
/// round-robin, closure flavor — same discipline as
/// [`interleaved_medians`] but over arbitrary run actions, so the
/// plan-cache adaptive path (which is not `Dbms::execute`) can be
/// measured against the others under identical drift.
fn interleaved_medians_of(actions: &mut [&mut dyn FnMut()], reps: usize) -> Vec<f64> {
    let mut runs: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); actions.len()];
    for rep in 0..reps {
        for j in 0..actions.len() {
            let i = (rep + j) % actions.len();
            let t0 = Instant::now();
            actions[i]();
            runs[i].push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    runs.into_iter()
        .map(|mut r| {
            r.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            r[r.len() / 2]
        })
        .collect()
}

/// `repro optimizer`: cost-based join-order speedups on the five
/// join-heavy TPC-H queries, single-threaded, written machine-readably
/// to `BENCH_optimizer.json`. Three configurations per query:
///
/// * **syntactic** — optimizer off, joins execute in FROM order;
/// * **cold** — cost-based order from load-time statistics alone;
/// * **reoptimized** — the plan-cache adaptive loop: one profiled run
///   records observed cardinalities, the next fingerprint execution
///   re-plans with them, and the measured executions hit that plan.
pub fn optimizer_report() -> String {
    optimizer_report_opts(false)
}

/// [`optimizer_report`] with a smoke switch for CI: smoke mode shrinks
/// the scale factor, runs each configuration once, and does **not**
/// overwrite `BENCH_optimizer.json`.
pub fn optimizer_report_opts(smoke: bool) -> String {
    use serde_json::{Map, Value};
    use sqalpel_engine::{CacheOutcome, PlanCache};

    // Join-order effects need real intermediate sizes: floor SF 0.1
    // (the acceptance scale) unless smoking the harness.
    let sf = if smoke { 0.01 } else { base_sf().max(0.1) };
    let reps = if smoke { 1 } else { repetitions().max(3) };
    let db = Arc::new(Database::tpch(sf, 42));
    // Q21 stays in the plan goldens but out of the timed sweep: its
    // runtime is dominated by per-row correlated EXISTS re-execution
    // (quadratic in SF), which join order does not govern — at SF 0.1 a
    // single run takes tens of minutes for a ~1.0x ratio.
    let timed: Vec<&str> = OPT_QUERIES.iter().copied().filter(|q| *q != "Q21").collect();
    let queries: Vec<(&str, &str)> = sqalpel_sql::tpch::all_queries()
        .into_iter()
        .filter(|(name, _)| timed.contains(name))
        .collect();

    let mut out = format!(
        "## Cost-based join-order optimizer — t=1 medians (SF {sf}, {reps} reps)\n\n\
         query   syntactic-ms  cold-ms  reopt-ms  cold-speedup  reopt-speedup\n"
    );
    let mut rows_json = Vec::new();
    for (name, sql) in queries {
        let off = RowStore::new(db.clone())
            .with_threads(1)
            .with_optimizer(false);
        let on = RowStore::new(db.clone()).with_threads(1);
        let adaptive = RowStore::new(db.clone())
            .with_threads(1)
            .with_plan_cache(Arc::new(PlanCache::new(8)));
        // Prime the adaptive path: the profiled run records observed
        // cardinalities as feedback, the next fingerprint execution
        // re-plans with them and caches the result.
        let (_, plan) = adaptive.execute_analyzed(sql).expect("analyze primes feedback");
        let fp = plan.explain.fingerprint;
        let primed = adaptive
            .execute_by_fingerprint(sql, Some(fp))
            .expect("fingerprint execution");
        assert!(
            matches!(primed.cache, CacheOutcome::Reoptimized),
            "{name}: priming run did not reoptimize"
        );
        // Warm each configuration once so first-touch costs are off the
        // measured path, then interleave.
        off.execute(sql).expect("bench query executes");
        on.execute(sql).expect("bench query executes");
        let mut run_off = || {
            off.execute(sql).expect("bench query executes");
        };
        let mut run_on = || {
            on.execute(sql).expect("bench query executes");
        };
        let mut run_adaptive = || {
            let exec = adaptive
                .execute_by_fingerprint(sql, Some(fp))
                .expect("fingerprint execution");
            assert!(matches!(exec.cache, CacheOutcome::Hit));
        };
        let medians =
            interleaved_medians_of(&mut [&mut run_off, &mut run_on, &mut run_adaptive], reps);
        let (m_off, m_on, m_adaptive) = (medians[0], medians[1], medians[2]);
        let cold_speedup = m_off / m_on.max(1e-9);
        let reopt_speedup = m_off / m_adaptive.max(1e-9);
        let _ = writeln!(
            out,
            "{name:<7} {m_off:>12.1} {m_on:>8.1} {m_adaptive:>9.1} {cold_speedup:>12.2}x {reopt_speedup:>13.2}x"
        );
        let mut o = Map::new();
        o.insert("query".into(), Value::String(name.into()));
        o.insert("syntactic_ms".into(), Value::Float(m_off));
        o.insert("cold_ms".into(), Value::Float(m_on));
        o.insert("reoptimized_ms".into(), Value::Float(m_adaptive));
        o.insert("cold_speedup".into(), Value::Float(cold_speedup));
        o.insert("reoptimized_speedup".into(), Value::Float(reopt_speedup));
        rows_json.push(Value::Object(o));
    }

    let mut root = Map::new();
    root.insert("sf".into(), Value::Float(sf));
    root.insert("threads".into(), Value::Int(1));
    root.insert("repetitions".into(), Value::Int(reps as i64));
    root.insert("queries".into(), Value::Array(rows_json));
    let mut skipped = Map::new();
    skipped.insert("query".into(), Value::String("Q21".into()));
    skipped.insert(
        "reason".into(),
        Value::String(
            "runtime is correlated-subquery-bound (per-row EXISTS), not join-order-bound; \
             pinned by the plan goldens instead"
                .into(),
        ),
    );
    root.insert("skipped".into(), Value::Array(vec![Value::Object(skipped)]));
    if smoke {
        let _ = writeln!(out, "\nsmoke mode: BENCH_optimizer.json left untouched");
        return out;
    }
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("serializable");
    match std::fs::write("BENCH_optimizer.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "\nwrote BENCH_optimizer.json");
        }
        Err(e) => {
            let _ = writeln!(out, "\ncould not write BENCH_optimizer.json: {e}");
        }
    }
    out
}

// ----------------------------------------------------- wire benchmark

/// Render a [`sqalpel_core::MetricsSnapshot`] as the two-section text
/// report printed by `repro metrics`.
pub fn format_metrics(snap: &sqalpel_core::MetricsSnapshot) -> String {
    let mut out = String::from("## Server metrics\n\ncounters:\n");
    if snap.counters.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, n) in &snap.counters {
        let _ = writeln!(out, "  {name} = {n}");
    }
    out.push_str("\nhistograms (nanoseconds):\n");
    if snap.histograms.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "  {name}: count={} sum={} p50<={} p95<={} p99<={}",
            h.count, h.sum, h.p50, h.p95, h.p99
        );
    }
    out
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_ms[idx]
}

/// `repro wire`: loopback v1-vs-v2 sweep of the platform wire layer,
/// written machine-readably to `BENCH_wire.json`. Four measurements:
///
/// * **requests/s, three ways** — four concurrent clients hammering the
///   cheapest op (`QueueSummary`) over v1 JSON/HTTP (one connection per
///   request), v2 framed serial (one persistent connection), and v2
///   pipelined (batches of tagged frames in flight); the numbers
///   reflect transport + codec + dispatch, not query work;
/// * **plan cache** — `Execute` over v2 against an engine backend, one
///   cold miss then a warm fingerprint-keyed loop, average hit vs miss
///   latency plus the server's `plan_cache.*` counters;
/// * **hand-out latency** — one contributor drains a ~100-task queue over
///   v1, timing every `request_task` round trip (p50/p99).
pub fn wire_report() -> String {
    use serde_json::{Map, Value};
    use sqalpel_core::wire::Request;
    use sqalpel_core::{
        DriverConfig, ExecBackend, ExperimentDriver, MockConnector, Proto, V2Config, V2Server,
        WireClient, WireConfig, WireServer,
    };
    use sqalpel_engine::{Database, PlanCache, RowStore};

    let (server, contrib, total) = walk_server(100);
    let server = Arc::new(server);
    let backend = ExecBackend::new(Arc::new(
        RowStore::new(Arc::new(Database::tpch(0.001, 42)))
            .with_plan_cache(Arc::new(PlanCache::new(64))),
    ));
    let wire = WireServer::start_with_backend(
        Arc::clone(&server),
        Some(backend.clone()),
        "127.0.0.1:0",
        WireConfig::default(),
    )
    .expect("bind v1 loopback");
    let v2 = V2Server::start(
        Arc::clone(&server),
        Some(backend),
        "127.0.0.1:0",
        V2Config::default(),
    )
    .expect("bind v2 loopback");
    let addr = wire.local_addr();
    let v2_addr = v2.local_addr();

    const CLIENTS: usize = 4;
    const CALLS_PER_CLIENT: usize = 250;
    const PIPELINE_DEPTH: usize = 25;

    fn rps_sweep<F>(make: &F, pipelined: bool) -> (f64, f64)
    where
        F: Fn() -> WireClient + Sync,
    {
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                scope.spawn(move || {
                    let client = make();
                    if pipelined {
                        let batch = vec![Request::QueueSummary; PIPELINE_DEPTH];
                        for _ in 0..CALLS_PER_CLIENT / PIPELINE_DEPTH {
                            for reply in client.pipeline(&batch).expect("pipelined batch") {
                                reply.expect("summary over loopback");
                            }
                        }
                    } else {
                        for _ in 0..CALLS_PER_CLIENT {
                            client.queue_summary().expect("summary over loopback");
                        }
                    }
                });
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        ((CLIENTS * CALLS_PER_CLIENT) as f64 / wall.max(1e-9), wall)
    }

    let (v1_rps, v1_wall) = rps_sweep(&|| WireClient::builder(addr).build(), false);
    let v2_client = || WireClient::builder(v2_addr).transport(Proto::V2Framed).build();
    let (v2_rps, v2_wall) = rps_sweep(&v2_client, false);
    let (v2p_rps, v2p_wall) = rps_sweep(&v2_client, true);

    // Plan cache: one cold Execute (parse + bind + plan, cache miss),
    // then a warm fingerprint-keyed loop that skips straight to the
    // cached plan. Hit/miss truth comes from the per-response CacheStatus
    // and the server-side plan_cache.* counters.
    let exec_client = v2_client();
    let exec_sql = "select count(*) from lineitem where l_quantity < 24";
    let t_cold = Instant::now();
    let cold = exec_client.execute(exec_sql, None).expect("cold execute");
    let cold_ms = t_cold.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.cache.as_str(), "miss");
    const WARM_CALLS: usize = 50;
    let t_warm = Instant::now();
    for _ in 0..WARM_CALLS {
        let warm = exec_client
            .execute(exec_sql, Some(cold.fingerprint))
            .expect("warm execute");
        assert_eq!(warm.cache.as_str(), "hit");
        assert_eq!(warm.result.data, cold.result.data, "hit must equal miss");
    }
    let warm_ms = t_warm.elapsed().as_secs_f64() * 1e3 / WARM_CALLS as f64;
    let snap = exec_client.metrics().expect("metrics over v2");
    let cache_hits = snap.counter("plan_cache.hits").unwrap_or(0);
    let cache_misses = snap.counter("plan_cache.misses").unwrap_or(0);

    // Drain the queue over the wire, timing each claim. The connector is
    // a zero-spin mock so the round trip dominates, not query execution.
    let key = server.issue_key(contrib).expect("key");
    let client = WireClient::builder(addr).build();
    let driver = ExperimentDriver::new(
        MockConnector {
            label: "rowstore-2.0".into(),
            fail_pattern: None,
            spin: 0,
            rows: 1,
        },
        DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 1")
            .expect("config"),
    );
    let mut claim_ms = Vec::with_capacity(total);
    loop {
        let t = Instant::now();
        let task = client
            .request_task(&key, "rowstore-2.0", "bench-server")
            .expect("claim over loopback");
        let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
        let Some(task) = task else { break };
        claim_ms.push(elapsed_ms);
        client
            .report_result(&key, task.id, &driver.run(&task.sql))
            .expect("report over loopback");
    }
    claim_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&claim_ms, 50.0);
    let p99 = percentile(&claim_ms, 99.0);

    // Bulk result streaming: the same ~1k-record workload reported two
    // ways over v2 — one `report_result` round trip per record vs a
    // single `ReportBatch` upload (columnar continuation frames, one
    // ack, one WAL group commit). Claims happen outside both timed
    // windows; the numbers isolate the reporting path.
    const BULK_RECORDS: usize = 1_000;
    let bulk_rig = || {
        use sqalpel_core::AdmissionConfig;
        // One contributor holds the whole queue at once, so the
        // admission bound must clear the record count.
        let (server, contrib, total) = walk_server_on(
            sqalpel_core::SqalpelServer::with_admission(AdmissionConfig {
                max_inflight_per_user: 2 * BULK_RECORDS,
                max_queued_per_project: 100 * BULK_RECORDS,
            }),
            BULK_RECORDS,
        );
        let server = Arc::new(server);
        let v2 = V2Server::start(Arc::clone(&server), None, "127.0.0.1:0", V2Config::default())
            .expect("bind bulk loopback");
        let key = server.issue_key(contrib).expect("key");
        let client = WireClient::builder(v2.local_addr()).transport(Proto::V2Framed).build();
        let mut claimed = Vec::with_capacity(total);
        while let Some(task) = client
            .claim_task(&key, "rowstore-2.0", "bench-server", claimed.len() as u64 + 1)
            .expect("bulk claim")
        {
            claimed.push((task.id, driver.run(&task.sql)));
        }
        assert_eq!(claimed.len(), total, "contributor holds the whole walk");
        (server, v2, client, key, claimed)
    };
    let (_s1, _v2a, per_client, per_key, per_claimed) = bulk_rig();
    let t_per = Instant::now();
    for (task, outcome) in &per_claimed {
        per_client.report_result(&per_key, *task, outcome).expect("per-record report");
    }
    let per_report_wall = t_per.elapsed().as_secs_f64();
    let (_s2, _v2b, bulk_client, bulk_key, bulk_claimed) = bulk_rig();
    let records = bulk_claimed.len();
    let t_bulk = Instant::now();
    let acked = bulk_client.report_batch(&bulk_key, &bulk_claimed).expect("bulk report");
    let bulk_wall = t_bulk.elapsed().as_secs_f64();
    assert_eq!(acked.len(), records, "one ack covers every record");
    let per_report_rps = records as f64 / per_report_wall.max(1e-9);
    let bulk_rps = records as f64 / bulk_wall.max(1e-9);
    let bulk_speedup = bulk_rps / per_report_rps.max(1e-9);

    let v2_speedup = v2_rps / v1_rps.max(1e-9);
    let v2p_speedup = v2p_rps / v1_rps.max(1e-9);
    let mut out = format!(
        "## Wire layer — v1 JSON/HTTP vs v2 framed binary on loopback\n\n\
         throughput ({CLIENTS} clients x {CALLS_PER_CLIENT} summary calls each):\n\
         \x20 v1 http           : {v1_rps:>9.0} requests/s  ({v1_wall:.2}s)\n\
         \x20 v2 framed serial  : {v2_rps:>9.0} requests/s  ({v2_wall:.2}s)  {v2_speedup:.1}x v1\n\
         \x20 v2 framed pipelined (depth {PIPELINE_DEPTH}): {v2p_rps:>9.0} requests/s  ({v2p_wall:.2}s)  {v2p_speedup:.1}x v1\n\
         plan cache over v2: cold miss {cold_ms:.3}ms, warm hit avg {warm_ms:.3}ms over {WARM_CALLS} calls \
         (server counters: {cache_hits} hits / {cache_misses} misses)\n\
         task hand-out (v1): {} tasks drained, claim latency p50 {p50:.3}ms / p99 {p99:.3}ms\n\
         bulk upload ({records} records over v2): per-report {per_report_rps:>7.0} records/s, \
         one ReportBatch {bulk_rps:>7.0} records/s  {bulk_speedup:.1}x\n",
        claim_ms.len()
    );

    let proto_entry = |rps: f64, wall: f64| {
        let mut m = Map::new();
        m.insert("requests_per_s".into(), Value::Float(rps));
        m.insert("wall_s".into(), Value::Float(wall));
        Value::Object(m)
    };
    let mut handout = Map::new();
    handout.insert("tasks".into(), Value::Int(claim_ms.len() as i64));
    handout.insert("p50_ms".into(), Value::Float(p50));
    handout.insert("p99_ms".into(), Value::Float(p99));
    let mut cache = Map::new();
    cache.insert("cold_miss_ms".into(), Value::Float(cold_ms));
    cache.insert("warm_hit_avg_ms".into(), Value::Float(warm_ms));
    cache.insert("warm_calls".into(), Value::Int(WARM_CALLS as i64));
    cache.insert("hits".into(), Value::Int(cache_hits as i64));
    cache.insert("misses".into(), Value::Int(cache_misses as i64));
    let mut root = Map::new();
    root.insert("v1".into(), proto_entry(v1_rps, v1_wall));
    root.insert("v2_serial".into(), proto_entry(v2_rps, v2_wall));
    root.insert("v2_pipelined".into(), proto_entry(v2p_rps, v2p_wall));
    root.insert("pipeline_depth".into(), Value::Int(PIPELINE_DEPTH as i64));
    root.insert("v2_serial_speedup".into(), Value::Float(v2_speedup));
    root.insert("v2_pipelined_speedup".into(), Value::Float(v2p_speedup));
    root.insert("throughput_clients".into(), Value::Int(CLIENTS as i64));
    root.insert(
        "throughput_calls".into(),
        Value::Int((CLIENTS * CALLS_PER_CLIENT) as i64),
    );
    root.insert("plan_cache".into(), Value::Object(cache));
    root.insert("handout".into(), Value::Object(handout));
    let mut bulk = Map::new();
    bulk.insert("records".into(), Value::Int(records as i64));
    bulk.insert("per_report_rps".into(), Value::Float(per_report_rps));
    bulk.insert("bulk_rps".into(), Value::Float(bulk_rps));
    bulk.insert("speedup".into(), Value::Float(bulk_speedup));
    root.insert("bulk".into(), Value::Object(bulk));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("serializable");
    match std::fs::write("BENCH_wire.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "\nwrote BENCH_wire.json");
        }
        Err(e) => {
            let _ = writeln!(out, "\ncould not write BENCH_wire.json: {e}");
        }
    }
    out
}

/// `repro wire --bulk-smoke`: a fast CI gate over the two new v2 paths.
/// Spins up a loopback v2 server, drains a small walk with one
/// `ReportBatch` (asserting the ack covers every record and a retry
/// deduplicates to the same indices), and round-trips a server-push
/// notification (subscribe, enqueue, receive `QueueReady` as a frame).
/// Panics on any violation; prints a one-screen summary otherwise.
pub fn wire_bulk_smoke() -> String {
    use sqalpel_core::{
        DriverConfig, ExperimentDriver, MockConnector, Proto, V2Config, V2Server, WireClient,
    };

    let (server, contrib, total) = walk_server(40);
    let server = Arc::new(server);
    let v2 = V2Server::start(Arc::clone(&server), None, "127.0.0.1:0", V2Config::default())
        .expect("bind v2 loopback");
    let key = server.issue_key(contrib).expect("key");
    let client = WireClient::builder(v2.local_addr()).transport(Proto::V2Framed).build();
    let driver = ExperimentDriver::new(
        MockConnector {
            label: "rowstore-2.0".into(),
            fail_pattern: None,
            spin: 0,
            rows: 1,
        },
        DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 1")
            .expect("config"),
    );

    // Push round trip first: subscribe, then enqueue more work — the
    // subscription must see the QueueReady as an unsolicited frame on
    // its own connection. (walk_server's owner/project are the first
    // registered user and project.)
    let mut waiter = client.subscribe_push(&key).expect("v2 push subscription");
    let owner = sqalpel_core::UserId(1);
    let project = sqalpel_core::ProjectId(1);
    let extra = server
        .add_experiment(project, owner, "smoke extra", sqalpel_sql::tpch::Q6, None, 100, 100)
        .expect("extra experiment");
    server.seed_pool(project, extra, owner, 3, 7).expect("seed extra");
    let added = server.enqueue_experiment(project, extra, owner).expect("enqueue extra");
    assert!(added > 0);
    let n = waiter
        .wait(std::time::Duration::from_secs(5))
        .expect("push channel healthy")
        .expect("QueueReady within 5s");
    assert!(
        matches!(n, sqalpel_core::Notification::QueueReady { project: p } if p == project),
        "expected QueueReady for the walk project, got {n:?}"
    );

    // Bulk drain: claim everything under distinct nonces, upload as one
    // batch, and retry the identical batch — the ack must repeat the
    // same indices with zero new records.
    let mut claimed = Vec::new();
    while let Some(task) = client
        .claim_task(&key, "rowstore-2.0", "bench-server", claimed.len() as u64 + 1)
        .expect("bulk claim")
    {
        claimed.push((task.id, driver.run(&task.sql)));
    }
    assert!(claimed.len() >= total, "bulk claims cover the whole walk");
    let acked = client.report_batch(&key, &claimed).expect("bulk upload");
    assert_eq!(acked.len(), claimed.len(), "one ack per record, in order");
    let again = client.report_batch(&key, &claimed).expect("idempotent retry");
    assert_eq!(again, acked, "retrying a delivered batch repeats the same indices");
    let summary = server.queue_summary();
    assert_eq!(summary.queued, 0, "queue fully drained");
    assert_eq!(summary.running, 0, "no claims left open");
    let m = server.metrics();
    assert_eq!(m.counter("wire.bulk_records"), 2 * claimed.len() as u64);
    assert!(m.counter("wire.push_frames") >= 1, "the QueueReady went over the wire");

    format!(
        "## Wire bulk smoke\n\n\
         push: QueueReady frame received after enqueue\n\
         bulk: {} records in one ReportBatch ack, retry deduplicated to the same indices\n\
         queue drained; wire.bulk_records = {}, wire.push_frames = {}\n",
        claimed.len(),
        m.counter("wire.bulk_records"),
        m.counter("wire.push_frames"),
    )
}

/// `repro scale`: full-size load generation (see
/// [`scale_report_opts`]), written to `BENCH_scale.json`.
pub fn scale_report() -> String {
    scale_report_opts(false)
}

/// `repro scale [--smoke]`: multi-tenant load generator for the sharded
/// platform. Three phases:
///
/// * **populate** — register ~1M users, create several public projects,
///   invite ~10k of the users as contributors, seed one grammar walk per
///   project and enqueue it against every cataloged DBMS×host target;
/// * **load** — a pool of worker threads, each holding one persistent v2
///   framed connection and a distinct target combo, multiplexes the ~10k
///   contributor keys over the wire: claim, run against a zero-spin mock
///   connector (the platform is under test, not the engine), report,
///   until every shard's queue is drained. Reports hand-out latency
///   p50/p99 and wire requests/s;
/// * **recovery** — build a durable server in a temp state dir (users,
///   a project, half-drained queue, a few claims left in flight), drop
///   it *without* a snapshot to simulate a crash, and time the reopen
///   that replays the whole WAL tail.
///
/// `--smoke` runs a miniature of all three phases and leaves
/// `BENCH_scale.json` untouched.
pub fn scale_report_opts(smoke: bool) -> String {
    use serde_json::{Map, Value};
    use sqalpel_core::{
        DriverConfig, ExperimentDriver, MockConnector, PlatformError, Proto, SqalpelServer,
        UserId, V2Config, V2Server, Visibility, WireClient,
    };

    // Full mode sizes to the paper's ambition (~1M registered users,
    // ~10k concurrent contributors); smoke keeps the same shape at CI
    // scale.
    let (n_users, n_contrib, n_projects, n_seed, r_users) = if smoke {
        (5_000usize, 200usize, 2usize, 40usize, 1_000usize)
    } else {
        (1_000_000, 10_000, 8, 480, 20_000)
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .clamp(6, 24); // >= 6 so every DBMS×host combo below gets drained

    // ------------------------------------------------------- populate
    let t_pop = Instant::now();
    let server = SqalpelServer::new();
    let admin = server.register_user("admin", "admin@sqalpel.io").expect("admin");
    let contributors: Vec<UserId> = (0..n_contrib)
        .map(|i| {
            server
                .register_user(&format!("c{i}"), &format!("c{i}@scale.test"))
                .expect("contributor")
        })
        .collect();
    for i in n_contrib + 1..n_users {
        server
            .register_user(&format!("u{i}"), &format!("u{i}@scale.test"))
            .expect("user");
    }
    let combos: [(&str, &str); 6] = [
        ("rowstore-2.0", "bench-server"),
        ("rowstore-1.4", "bench-server"),
        ("colstore-5.1", "bench-server"),
        ("rowstore-2.0", "raspberry-pi"),
        ("rowstore-1.4", "raspberry-pi"),
        ("colstore-5.1", "raspberry-pi"),
    ];
    let mut total_tasks = 0usize;
    for p in 0..n_projects {
        let project = server
            .create_project(admin, &format!("scale-{p}"), "load generator study", Visibility::Public)
            .expect("project");
        server
            .set_targets(
                project,
                admin,
                vec!["rowstore-2.0".into(), "rowstore-1.4".into(), "colstore-5.1".into()],
                vec!["bench-server".into(), "raspberry-pi".into()],
            )
            .expect("targets");
        for &user in &contributors {
            server.invite(project, admin, user).expect("invite");
        }
        let exp = server
            .add_experiment(project, admin, "q1 scale", sqalpel_sql::tpch::Q1, None, 10_000, 10_000)
            .expect("experiment");
        server.seed_pool(project, exp, admin, n_seed, 42 + p as u64).expect("seed");
        total_tasks += server.enqueue_experiment(project, exp, admin).expect("enqueue");
    }
    let keys: Vec<_> = contributors
        .iter()
        .map(|&u| server.issue_key(u).expect("key"))
        .collect();
    let pop_s = t_pop.elapsed().as_secs_f64();

    // ----------------------------------------------------------- load
    let server = Arc::new(server);
    let mut v2 = V2Server::start(Arc::clone(&server), None, "127.0.0.1:0", V2Config::default())
        .expect("bind v2 loopback");
    let v2_addr = v2.local_addr();
    let t_load = Instant::now();
    let per_thread: Vec<(Vec<f64>, u64, u64, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let keys = &keys;
            let (dbms, host) = combos[t % combos.len()];
            handles.push(scope.spawn(move || {
                let client = WireClient::builder(v2_addr).transport(Proto::V2Framed).build();
                let driver = ExperimentDriver::new(
                    MockConnector { label: dbms.into(), fail_pattern: None, spin: 0, rows: 1 },
                    DriverConfig::parse(&format!("dbms = {dbms}\nhost = {host}\nrepetitions = 1"))
                        .expect("driver config"),
                );
                // One persistent v2 connection multiplexing an even
                // slice of the contributor keys against one target.
                let my: Vec<_> = keys.iter().skip(t).step_by(threads).collect();
                let mut lat = Vec::new();
                let (mut reports, mut throttled, mut polls) = (0u64, 0u64, 0u64);
                let mut empty = 0usize;
                let mut i = 0usize;
                // Claims are reported immediately and failed tasks are
                // terminal, so a drained target never refills: two
                // consecutive empty polls end the thread.
                while empty < 2 {
                    let key = my[i % my.len()];
                    i += 1;
                    polls += 1;
                    let t0 = Instant::now();
                    match client.request_task(key, dbms, host) {
                        Ok(Some(task)) => {
                            lat.push(t0.elapsed().as_secs_f64() * 1e3);
                            empty = 0;
                            client
                                .report_result(key, task.id, &driver.run(&task.sql))
                                .expect("report over loopback");
                            reports += 1;
                        }
                        Ok(None) => empty += 1,
                        // Shouldn't fire (each key holds at most one
                        // claim here); counted, and bumping `empty`
                        // guarantees termination regardless.
                        Err(PlatformError::Throttled(_)) => {
                            throttled += 1;
                            empty += 1;
                        }
                        Err(e) => panic!("scale worker {t}: {e}"),
                    }
                }
                (lat, reports, throttled, polls)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("scale worker")).collect()
    });
    let load_wall = t_load.elapsed().as_secs_f64();
    let mut claim_ms: Vec<f64> = Vec::new();
    let (mut reports, mut throttled, mut polls) = (0u64, 0u64, 0u64);
    for (lat, r, th, p) in per_thread {
        claim_ms.extend(lat);
        reports += r;
        throttled += th;
        polls += p;
    }
    assert_eq!(claim_ms.len(), total_tasks, "every enqueued task must drain");
    claim_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&claim_ms, 50.0);
    let p99 = percentile(&claim_ms, 99.0);
    let round_trips = polls + reports;
    let rps = round_trips as f64 / load_wall.max(1e-9);
    let snap = server.metrics().snapshot();
    let handouts = snap.counter("shard.handouts").unwrap_or(0);
    let empty_polls = snap.counter("queue.empty_polls").unwrap_or(0);
    let adm_throttled = snap.counter("admission.throttled").unwrap_or(0);
    v2.shutdown();

    // ------------------------------------------------------- recovery
    let dir = std::env::temp_dir().join(format!(
        "sqalpel-scale-recovery-{}-{}",
        if smoke { "smoke" } else { "full" },
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("recovery state dir");
    let (wal_records, inflight) = {
        let srv = SqalpelServer::open(&dir).expect("open durable server");
        let owner = srv.register_user("owner", "owner@scale.test").expect("owner");
        let contrib = srv.register_user("worker", "worker@scale.test").expect("worker");
        for i in 0..r_users {
            srv.register_user(&format!("r{i}"), &format!("r{i}@scale.test"))
                .expect("user");
        }
        let project = srv
            .create_project(owner, "recovery", "crash replay timing", Visibility::Public)
            .expect("project");
        srv.set_targets(project, owner, vec!["rowstore-2.0".into()], vec!["bench-server".into()])
            .expect("targets");
        srv.invite(project, owner, contrib).expect("invite");
        let exp = srv
            .add_experiment(project, owner, "q1 recovery", sqalpel_sql::tpch::Q1, None, 10_000, 10_000)
            .expect("experiment");
        srv.seed_pool(project, exp, owner, 60, 42).expect("seed");
        let total = srv.enqueue_experiment(project, exp, owner).expect("enqueue");
        let key = srv.issue_key(contrib).expect("key");
        let driver = ExperimentDriver::new(
            MockConnector { label: "rowstore-2.0".into(), fail_pattern: None, spin: 0, rows: 1 },
            DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 1")
                .expect("driver config"),
        );
        for _ in 0..total / 2 {
            let Some(task) = srv
                .request_task(&key, "rowstore-2.0", "bench-server")
                .expect("claim")
            else {
                break;
            };
            srv.report_result(&key, task.id, driver.run(&task.sql)).expect("report");
        }
        // Leave a handful of claims open: the reopen must restore them
        // as running with their admission slots still held.
        let inflight = 5usize.min(total.saturating_sub(total / 2));
        for _ in 0..inflight {
            let k = srv.issue_key(contrib).expect("key");
            let _ = srv
                .request_task(&k, "rowstore-2.0", "bench-server")
                .expect("claim");
        }
        let wal_records = srv.metrics().snapshot().counter("wal.records").unwrap_or(0);
        (wal_records, inflight)
        // Dropped without a snapshot: a simulated crash. The WAL tail
        // holds everything.
    };
    let t_rec = Instant::now();
    let srv2 = SqalpelServer::open(&dir).expect("recover after crash");
    let recovery_ms = t_rec.elapsed().as_secs_f64() * 1e3;
    let replayed = srv2.metrics().snapshot().counter("wal.replayed_records").unwrap_or(0);
    let summary = srv2.queue_summary();
    assert_eq!(replayed, wal_records, "crash loses no acknowledged record");
    assert_eq!(summary.running, inflight, "open claims survive the crash");
    drop(srv2);
    let _ = std::fs::remove_dir_all(&dir);
    let rec_rate = replayed as f64 / (recovery_ms / 1e3).max(1e-9);

    let mut out = format!(
        "## Platform scale — {n_contrib} contributors over {n_users} registered users (v2 wire)\n\n\
         populate: {n_users} users, {n_projects} projects, {total_tasks} tasks enqueued ({pop_s:.1}s)\n\
         load ({threads} threads x 1 persistent v2 connection, {} keys multiplexed):\n\
         \x20 hand-out: {} claims, latency p50 {p50:.3}ms / p99 {p99:.3}ms\n\
         \x20 throughput: {rps:.0} requests/s over {round_trips} round trips ({load_wall:.2}s wall)\n\
         \x20 server: {handouts} handouts, {empty_polls} empty polls, {adm_throttled} throttled \
         (client saw {throttled})\n\
         recovery: {replayed} WAL records replayed in {recovery_ms:.1}ms ({rec_rate:.0} records/s), \
         {inflight} in-flight claims restored\n",
        keys.len(),
        claim_ms.len(),
    );

    if smoke {
        let _ = writeln!(out, "\nsmoke mode: BENCH_scale.json left untouched");
        return out;
    }
    let mut handout = Map::new();
    handout.insert("claims".into(), Value::Int(claim_ms.len() as i64));
    handout.insert("p50_ms".into(), Value::Float(p50));
    handout.insert("p99_ms".into(), Value::Float(p99));
    let mut load = Map::new();
    load.insert("threads".into(), Value::Int(threads as i64));
    load.insert("contributor_keys".into(), Value::Int(keys.len() as i64));
    load.insert("requests_per_s".into(), Value::Float(rps));
    load.insert("round_trips".into(), Value::Int(round_trips as i64));
    load.insert("wall_s".into(), Value::Float(load_wall));
    load.insert("empty_polls".into(), Value::Int(empty_polls as i64));
    load.insert("throttled".into(), Value::Int(adm_throttled as i64));
    let mut recovery = Map::new();
    recovery.insert("wal_records".into(), Value::Int(replayed as i64));
    recovery.insert("recovery_ms".into(), Value::Float(recovery_ms));
    recovery.insert("records_per_s".into(), Value::Float(rec_rate));
    recovery.insert("inflight_restored".into(), Value::Int(inflight as i64));
    recovery.insert("registered_users".into(), Value::Int(r_users as i64));
    let mut root = Map::new();
    root.insert("registered_users".into(), Value::Int(n_users as i64));
    root.insert("contributors".into(), Value::Int(n_contrib as i64));
    root.insert("projects".into(), Value::Int(n_projects as i64));
    root.insert("tasks".into(), Value::Int(total_tasks as i64));
    root.insert("transport".into(), Value::String("v2-framed".into()));
    root.insert("handout".into(), Value::Object(handout));
    root.insert("load".into(), Value::Object(load));
    root.insert("recovery".into(), Value::Object(recovery));
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("serializable");
    match std::fs::write("BENCH_scale.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "\nwrote BENCH_scale.json");
        }
        Err(e) => {
            let _ = writeln!(out, "\ncould not write BENCH_scale.json: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_pool_builds_and_dedups() {
        let p = q1_pool(10, 10, 1);
        assert!(p.len() >= 11);
        let mut sqls: Vec<&str> = p.entries().iter().map(|e| e.sql.as_str()).collect();
        let n = sqls.len();
        sqls.sort_unstable();
        sqls.dedup();
        assert_eq!(sqls.len(), n);
    }

    #[test]
    fn measure_pool_records_errors_separately() {
        let pool = q1_pool(5, 5, 2);
        let db = Arc::new(Database::tpch(0.001, 42));
        let row = RowStore::new(db);
        let (times, errors) = measure_pool(&pool, &row, 1);
        assert_eq!(times.len() + errors.len(), pool.len());
        assert!(!times.is_empty());
    }

    #[test]
    fn table1_text() {
        let t = table1();
        assert!(t.contains("TPC-C"));
        assert!(t.contains("368"));
    }

    #[test]
    fn fig1_text() {
        let f = fig1();
        assert!(f.contains("grammar OK"));
        assert!(f.contains("space: tags=7 templates=10 space=32"));
    }
}
