//! Criterion benchmarks comparing the two target systems on TPC-H
//! queries — the microbenchmark evidence behind the engines' cost models
//! (ColStore wins selective scans/narrow aggregates; the RowStore 1.4 →
//! 2.0 hash-join upgrade shows up only on join queries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqalpel_engine::{ColStore, Database, Dbms, RowStore};
use std::hint::black_box;
use std::sync::Arc;

const SF: f64 = 0.01;

fn systems(db: &Arc<Database>) -> Vec<(&'static str, Box<dyn Dbms>)> {
    vec![
        ("rowstore-2.0", Box::new(RowStore::new(db.clone()))),
        ("colstore-5.1", Box::new(ColStore::new(db.clone()))),
    ]
}

fn bench_tpch_queries(c: &mut Criterion) {
    let db = Arc::new(Database::tpch(SF, 42));
    let mut g = c.benchmark_group("engines/tpch");
    g.sample_size(10);
    for name in ["Q1", "Q3", "Q6", "Q14"] {
        let sql = sqalpel_sql::tpch::query(name).unwrap();
        for (label, dbms) in systems(&db) {
            g.bench_with_input(BenchmarkId::new(name, label), &sql, |b, sql| {
                b.iter(|| dbms.execute(black_box(sql)).unwrap())
            });
        }
    }
    g.finish();
}

fn bench_selective_scan(c: &mut Criterion) {
    let db = Arc::new(Database::tpch(SF, 42));
    let sql = "select count(*) from lineitem where l_quantity < 3 and l_discount > 0.08";
    let mut g = c.benchmark_group("engines/selective_scan");
    g.sample_size(10);
    for (label, dbms) in systems(&db) {
        g.bench_function(label, |b| b.iter(|| dbms.execute(black_box(sql)).unwrap()));
    }
    g.finish();
}

fn bench_expression_heavy(c: &mut Criterion) {
    let db = Arc::new(Database::tpch(SF, 42));
    // The sum_charge shape: chained decimal multiplications, where the
    // guarded i128 arithmetic pays its tax.
    let sql = "select sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) from lineitem";
    let mut g = c.benchmark_group("engines/expression_heavy");
    g.sample_size(10);
    for (label, dbms) in systems(&db) {
        g.bench_function(label, |b| b.iter(|| dbms.execute(black_box(sql)).unwrap()));
    }
    g.finish();
}

fn bench_join_versions(c: &mut Criterion) {
    // Tiny instance: the nested-loop version must finish.
    let db = Arc::new(Database::tpch(0.001, 42));
    let sql = "select n_name, count(*) from nation, supplier, customer \
               where n_nationkey = s_nationkey and s_nationkey = c_nationkey \
               group by n_name";
    let mut g = c.benchmark_group("engines/join_upgrade");
    g.sample_size(10);
    let new = RowStore::new(db.clone());
    let old = RowStore::legacy(db);
    g.bench_function("rowstore-2.0-hash", |b| {
        b.iter(|| new.execute(black_box(sql)).unwrap())
    });
    g.bench_function("rowstore-1.4-nested-loop", |b| {
        b.iter(|| old.execute(black_box(sql)).unwrap())
    });
    g.finish();
}

fn bench_datagen(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines/datagen");
    g.sample_size(10);
    g.bench_function("tpch_sf0.01", |b| {
        b.iter(|| sqalpel_datagen::TpchGen::new(black_box(0.01), 42).generate())
    });
    g.bench_function("load_database_sf0.01", |b| {
        b.iter(|| Database::tpch(black_box(0.01), 42))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tpch_queries,
    bench_selective_scan,
    bench_expression_heavy,
    bench_join_versions,
    bench_datagen
);
criterion_main!(benches);
