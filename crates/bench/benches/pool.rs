//! Criterion benchmarks for the query-pool machinery: seeding, the three
//! morphing strategies and the canonical-SQL dedup, plus an ablation of
//! the dedup cost (DESIGN.md: "cost of the canonical-form dedup").

use criterion::{criterion_group, criterion_main, Criterion};
use sqalpel_core::{QueryPool, Strategy};
use std::hint::black_box;

fn q1_pool() -> QueryPool {
    let g = sqalpel_grammar::convert_sql(sqalpel_sql::tpch::Q1).unwrap();
    let mut pool = QueryPool::new(g, 10_000, 1_000_000).unwrap();
    pool.seed_baseline().unwrap();
    let mut rng = sqalpel_grammar::seeded_rng(1);
    pool.add_random(50, &mut rng).unwrap();
    pool
}

fn bench_pool_build(c: &mut Criterion) {
    c.bench_function("pool/build_q1", |b| {
        b.iter(|| {
            let g = sqalpel_grammar::convert_sql(black_box(sqalpel_sql::tpch::Q1)).unwrap();
            QueryPool::new(g, 10_000, 1000).unwrap()
        })
    });
}

fn bench_seed_random(c: &mut Criterion) {
    let g = sqalpel_grammar::convert_sql(sqalpel_sql::tpch::Q1).unwrap();
    c.bench_function("pool/add_random_20", |b| {
        b.iter(|| {
            let mut pool = QueryPool::new(g.clone(), 10_000, 1_000_000).unwrap();
            pool.seed_baseline().unwrap();
            let mut rng = sqalpel_grammar::seeded_rng(1);
            pool.add_random(black_box(20), &mut rng).unwrap()
        })
    });
}

fn bench_morph_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool/morph");
    for strategy in [Strategy::Alter, Strategy::Expand, Strategy::Prune] {
        g.bench_function(strategy.name(), |b| {
            let mut pool = q1_pool();
            let mut rng = sqalpel_grammar::seeded_rng(2);
            b.iter(|| pool.morph(black_box(strategy), &mut rng).unwrap())
        });
    }
    g.bench_function("auto", |b| {
        let mut pool = q1_pool();
        let mut rng = sqalpel_grammar::seeded_rng(3);
        b.iter(|| pool.morph_auto(&mut rng).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_pool_build, bench_seed_random, bench_morph_strategies);
criterion_main!(benches);
