//! Criterion benchmarks for the grammar machinery behind Table 2:
//! DSL parsing, SQL→grammar conversion, template enumeration, space
//! counting and query instantiation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    c.bench_function("grammar/parse_fig1", |b| {
        b.iter(|| sqalpel_grammar::Grammar::parse(black_box(sqalpel_grammar::FIG1_GRAMMAR)).unwrap())
    });
}

fn bench_convert(c: &mut Criterion) {
    let mut g = c.benchmark_group("grammar/convert");
    for name in ["Q1", "Q6", "Q19"] {
        let sql = sqalpel_sql::tpch::query(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| sqalpel_grammar::convert_sql(black_box(sql)).unwrap())
        });
    }
    g.finish();
}

fn bench_enumerate(c: &mut Criterion) {
    let mut g = c.benchmark_group("grammar/enumerate");
    for name in ["Q1", "Q9", "Q21"] {
        let sql = sqalpel_sql::tpch::query(name).unwrap();
        let grammar = sqalpel_grammar::convert_sql(sql).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| sqalpel_grammar::enumerate(black_box(&grammar), 100_000).unwrap())
        });
    }
    g.finish();
}

fn bench_space_report(c: &mut Criterion) {
    let grammar = sqalpel_grammar::convert_sql(sqalpel_sql::tpch::Q5).unwrap();
    c.bench_function("grammar/space_report_Q5", |b| {
        b.iter(|| grammar.space_report(black_box(100_000)).unwrap())
    });
}

fn bench_instantiate(c: &mut Criterion) {
    let grammar = sqalpel_grammar::convert_sql(sqalpel_sql::tpch::Q1).unwrap();
    let set = grammar.templates(100_000).unwrap();
    let mut rng = sqalpel_grammar::seeded_rng(1);
    c.bench_function("grammar/instantiate_random_Q1", |b| {
        b.iter(|| {
            sqalpel_grammar::random_query(
                black_box(&grammar),
                black_box(&set.templates),
                &mut rng,
                None,
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_convert,
    bench_enumerate,
    bench_space_report,
    bench_instantiate
);
criterion_main!(benches);
