//! Criterion benchmarks for the cost-based join-order optimizer: the
//! execution win on the join-heavy TPC-H queries (syntactic vs cold
//! cost-based vs adaptively reoptimized order) and the planning tax the
//! memo search itself adds to a bind.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqalpel_engine::{CacheOutcome, Database, Dbms, PlanCache, RowStore};
use std::hint::black_box;
use std::sync::Arc;

const SF: f64 = 0.01;

fn bench_join_order(c: &mut Criterion) {
    let db = Arc::new(Database::tpch(SF, 42));
    let mut g = c.benchmark_group("optimizer/join_order");
    g.sample_size(10);
    // Q21 is excluded: its cost is correlated-subquery-bound, so it
    // measures the subquery executor, not the join order.
    for name in ["Q5", "Q7", "Q8", "Q9"] {
        let sql = sqalpel_sql::tpch::query(name).unwrap();
        let off = RowStore::new(db.clone())
            .with_threads(1)
            .with_optimizer(false);
        let on = RowStore::new(db.clone()).with_threads(1);
        let adaptive = RowStore::new(db.clone())
            .with_threads(1)
            .with_plan_cache(Arc::new(PlanCache::new(8)));
        // Prime the adaptive plan: profiled run feeds back actual
        // cardinalities, the next fingerprint execution re-plans.
        let (_, plan) = adaptive.execute_analyzed(sql).unwrap();
        let fp = plan.explain.fingerprint;
        let primed = adaptive.execute_by_fingerprint(sql, Some(fp)).unwrap();
        assert!(matches!(primed.cache, CacheOutcome::Reoptimized));
        g.bench_with_input(BenchmarkId::new(name, "syntactic"), &sql, |b, sql| {
            b.iter(|| off.execute(black_box(sql)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new(name, "cold"), &sql, |b, sql| {
            b.iter(|| on.execute(black_box(sql)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new(name, "reoptimized"), &sql, |b, sql| {
            b.iter(|| adaptive.execute_by_fingerprint(black_box(sql), Some(fp)).unwrap())
        });
    }
    g.finish();
}

fn bench_planning_tax(c: &mut Criterion) {
    // The memo search must stay cheap enough to run on every bind: EXPLAIN
    // with the optimizer on vs off isolates the DP itself (binding,
    // rewriting and rendering are common to both sides).
    let db = Arc::new(Database::tpch(0.001, 42));
    let on = RowStore::new(db.clone()).with_threads(1);
    let off = RowStore::new(db).with_threads(1).with_optimizer(false);
    let mut g = c.benchmark_group("optimizer/planning_tax");
    g.sample_size(20);
    for name in ["Q5", "Q8", "Q9"] {
        let sql = sqalpel_sql::tpch::query(name).unwrap();
        g.bench_with_input(BenchmarkId::new(name, "bind+optimize"), &sql, |b, sql| {
            b.iter(|| on.explain(black_box(sql)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new(name, "bind"), &sql, |b, sql| {
            b.iter(|| off.explain(black_box(sql)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join_order, bench_planning_tax);
criterion_main!(benches);
