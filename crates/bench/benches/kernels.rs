//! Criterion microbenchmarks for the radix kernel building blocks: the
//! group-key codec (u64 and byte modes), partitioned aggregation through
//! the engine, and the hash-join build/probe primitives. The SQL-level
//! companion sweeps live in `parallel.rs`; this file isolates the layers
//! underneath so a codec regression shows up without engine noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqalpel_engine::codec::{self, GroupCodec, GroupMap, MatchMap};
use sqalpel_engine::exec_col::ColVec;
use sqalpel_engine::storage::{raw_str_col, str_col};
use sqalpel_engine::{ColStore, Database, Dbms, Table};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 100_000;

/// Two int key columns totalling 16 bytes: forces the byte-mode codec.
fn wide_keys() -> Vec<ColVec> {
    vec![
        ColVec::Int((0..ROWS).map(|i| (i % 1000) as i64).collect()),
        ColVec::Int((0..ROWS).map(|i| (i % 7) as i64).collect()),
    ]
}

/// One int key column: fits the packed-u64 fast path.
fn narrow_keys() -> Vec<ColVec> {
    vec![ColVec::Int((0..ROWS).map(|i| (i % 1000) as i64).collect())]
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/codec");
    g.sample_size(20);
    for (mode, cols) in [("u64", narrow_keys()), ("bytes", wide_keys())] {
        g.bench_with_input(BenchmarkId::new("encode", mode), &cols, |b, cols| {
            let codec = GroupCodec::for_group(cols).expect("codec-able keys");
            let mut buf = Vec::new();
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..ROWS {
                    let k = codec.encode(black_box(i), &mut buf).unwrap();
                    acc ^= k.hash();
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_group_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/group_map");
    g.sample_size(20);
    for (mode, cols) in [("u64", narrow_keys()), ("bytes", wide_keys())] {
        g.bench_with_input(BenchmarkId::new("first_seen", mode), &cols, |b, cols| {
            let codec = GroupCodec::for_group(cols).expect("codec-able keys");
            let mut buf = Vec::new();
            b.iter(|| {
                let mut map = GroupMap::new(codec.u64_mode());
                let mut next = 0u32;
                for i in 0..ROWS {
                    let k = codec.encode(i, &mut buf).unwrap();
                    if map.get(&k).is_none() {
                        map.insert(&k, next);
                        next += 1;
                    }
                }
                black_box(next)
            })
        });
    }
    g.finish();
}

fn bench_join_build_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/join");
    g.sample_size(20);
    // Build over 1k distinct keys, probe with ~100 rows per key: the
    // duplicate-heavy shape where match-list layout dominates.
    let build_cols = vec![ColVec::Int((0..1_000).map(|i| i as i64).collect())];
    let probe_cols = narrow_keys();
    let bc = GroupCodec::for_group(&build_cols).expect("build codec");
    let pc = GroupCodec::for_group(&probe_cols).expect("probe codec");

    g.bench_function("build", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            let mut m = MatchMap::new(bc.u64_mode());
            for j in 0..1_000usize {
                let k = bc.encode(j, &mut buf).unwrap();
                m.push(&k, j as u32);
            }
            black_box(m)
        })
    });

    g.bench_function("probe", |b| {
        let mut buf = Vec::new();
        let mut m = MatchMap::new(bc.u64_mode());
        for j in 0..1_000usize {
            let k = bc.encode(j, &mut buf).unwrap();
            m.push(&k, j as u32);
        }
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..ROWS {
                let k = pc.encode(i, &mut buf).unwrap();
                if let Some(rows) = m.get(&k) {
                    hits += rows.len();
                }
            }
            black_box(hits)
        })
    });

    g.bench_function("partitioned_build", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            let mut buckets: Vec<codec::Bucket> = (0..codec::NPARTS)
                .map(|_| codec::Bucket::new(bc.u64_mode()))
                .collect();
            for j in 0..1_000usize {
                let k = bc.encode(j, &mut buf).unwrap();
                buckets[codec::partition(k.hash())].push(&k, j as u32);
            }
            let mut m = MatchMap::new(bc.u64_mode());
            for bucket in &buckets {
                bucket.append_to(&mut m);
            }
            black_box(m)
        })
    });
    g.finish();
}

fn bench_partitioned_aggregation(c: &mut Criterion) {
    // End-to-end partitioned aggregation through the column engine, with
    // the single-core worker bound lifted so the radix path actually runs
    // wherever this bench executes.
    std::env::set_var("SQALPEL_FORCE_WORKERS", "8");
    let db = Arc::new(Database::tpch(0.05, 42));
    let sql = "select l_suppkey, count(*), sum(l_quantity), min(l_extendedprice), \
               max(l_extendedprice) from lineitem group by l_suppkey";
    let mut g = c.benchmark_group("kernels/aggregate");
    g.sample_size(10);
    for t in [1usize, 4] {
        let col = ColStore::new(db.clone()).with_threads(t);
        g.bench_with_input(BenchmarkId::new("colstore", t), &sql, |b, sql| {
            b.iter(|| col.execute(black_box(sql)).unwrap())
        });
        // Profiler-on companion: the gap between this and the plain
        // variant is the full cost of operator profiling; the plain
        // variant itself carries the profiler-off hooks, whose overhead
        // must stay within noise of the pre-profiler numbers.
        g.bench_with_input(BenchmarkId::new("colstore-profiled", t), &sql, |b, sql| {
            b.iter(|| col.execute_analyzed(black_box(sql)).unwrap())
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    std::env::set_var("SQALPEL_FORCE_WORKERS", "8");
    let db = Arc::new(Database::tpch(0.05, 42));
    let mut g = c.benchmark_group("kernels/scan");
    g.sample_size(10);

    // TPC-H Q6 shape: a tight shipdate band over a date-clustered
    // lineitem. With zone maps on, most chunks are skipped outright; the
    // off variant measures the same selection-vector scan forced to
    // touch every chunk.
    let selective = "select sum(l_extendedprice * l_discount) from lineitem \
                     where l_shipdate >= date '1994-01-01' \
                     and l_shipdate < date '1995-01-01' \
                     and l_discount between 0.05 and 0.07 and l_quantity < 24";
    for (name, zone_maps) in [("zone-maps-on", true), ("zone-maps-off", false)] {
        let col = ColStore::new(db.clone()).with_threads(1).with_zone_maps(zone_maps);
        g.bench_with_input(BenchmarkId::new("selective", name), &selective, |b, sql| {
            b.iter(|| col.execute(black_box(sql)).unwrap())
        });
    }

    // Dict predicate vs the same predicate over raw strings on identical
    // data: the dict variant compares u32 codes against a pre-resolved
    // code, the raw variant compares string bytes per row.
    let modes = ["AIR", "RAIL", "SHIP", "MAIL", "TRUCK", "FOB", "REG AIR"];
    let vals: Vec<String> = (0..600_000)
        .map(|i| modes[i * 7919 % modes.len()].to_string())
        .collect();
    let str_pred = "select count(*) from items where mode = 'AIR'";
    for (name, column) in [
        ("dict", str_col("mode", vals.iter().cloned())),
        ("raw", raw_str_col("mode", vals.iter().cloned())),
    ] {
        let mut sdb = Database::new();
        sdb.add_table(Table::new("items", vec![column]).expect("items table"));
        let col = ColStore::new(Arc::new(sdb)).with_threads(1);
        g.bench_with_input(BenchmarkId::new("str_eq", name), &str_pred, |b, sql| {
            b.iter(|| col.execute(black_box(sql)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_group_map,
    bench_join_build_probe,
    bench_partitioned_aggregation,
    bench_scan
);
criterion_main!(benches);
