//! Criterion benchmarks for morsel-driven parallel execution: scan,
//! aggregation and join speedups at 1/2/4/8 threads, plus the
//! multi-worker pool walk. Populated alongside the engine work.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_placeholder(_c: &mut Criterion) {}

criterion_group!(benches, bench_placeholder);
criterion_main!(benches);
