//! Criterion benchmarks for morsel-driven parallel execution: scan,
//! aggregation and join speedups at 1/2/4/8 threads, plus the
//! multi-worker queue drain. The machine-readable companion is
//! `repro parallel`, which writes `BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqalpel_core::{
    run_worker_pool, DriverConfig, ExperimentDriver, RemoteConnector, SqalpelServer, Visibility,
    Worker,
};
use sqalpel_engine::{ColStore, Database, Dbms, RowStore};
use std::hint::black_box;
use std::sync::Arc;

/// Past the paper-scale defaults on purpose: lineitem must dwarf the
/// engines' morsel spawn threshold for the thread sweep to mean anything.
const SF: f64 = 0.1;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_scan(c: &mut Criterion) {
    let db = Arc::new(Database::tpch(SF, 42));
    let sql = "select l_orderkey, l_extendedprice from lineitem where l_quantity < 24";
    let mut g = c.benchmark_group("parallel/scan");
    g.sample_size(10);
    for t in THREADS {
        let col = ColStore::new(db.clone()).with_threads(t);
        g.bench_with_input(BenchmarkId::new("colstore", t), &sql, |b, sql| {
            b.iter(|| col.execute(black_box(sql)).unwrap())
        });
        let row = RowStore::new(db.clone()).with_threads(t);
        g.bench_with_input(BenchmarkId::new("rowstore", t), &sql, |b, sql| {
            b.iter(|| row.execute(black_box(sql)).unwrap())
        });
        // Profiler-on companions: per-morsel shard recording rides the
        // parallel scan path, so its cost shows up here if anywhere.
        g.bench_with_input(BenchmarkId::new("colstore-profiled", t), &sql, |b, sql| {
            b.iter(|| col.execute_analyzed(black_box(sql)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("rowstore-profiled", t), &sql, |b, sql| {
            b.iter(|| row.execute_analyzed(black_box(sql)).unwrap())
        });
    }
    g.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let db = Arc::new(Database::tpch(SF, 42));
    // Direct column arguments keep every accumulator exactly mergeable,
    // so the whole grouping pass runs on the morsel workers.
    let sql = "select l_returnflag, count(*), sum(l_quantity), min(l_shipdate), \
               max(l_shipdate) from lineitem group by l_returnflag";
    let mut g = c.benchmark_group("parallel/aggregate");
    g.sample_size(10);
    for t in THREADS {
        let col = ColStore::new(db.clone()).with_threads(t);
        g.bench_with_input(BenchmarkId::new("colstore", t), &sql, |b, sql| {
            b.iter(|| col.execute(black_box(sql)).unwrap())
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let db = Arc::new(Database::tpch(SF, 42));
    let sql = "select count(*) from lineitem, orders where l_orderkey = o_orderkey";
    let mut g = c.benchmark_group("parallel/join");
    g.sample_size(10);
    for t in THREADS {
        let col = ColStore::new(db.clone()).with_threads(t);
        g.bench_with_input(BenchmarkId::new("colstore", t), &sql, |b, sql| {
            b.iter(|| col.execute(black_box(sql)).unwrap())
        });
    }
    g.finish();
}

/// Build a server with an enqueued pool walk, ready to drain.
fn pool_server() -> (SqalpelServer, sqalpel_core::UserId) {
    let server = SqalpelServer::new();
    let owner = server.register_user("mlk", "mlk@cwi.nl").unwrap();
    let contrib = server.register_user("pk", "pk@monetdb.com").unwrap();
    let project = server
        .create_project(owner, "walk", "pool walk bench", Visibility::Public)
        .unwrap();
    server
        .set_targets(project, owner, vec!["rowstore-2.0".into()], vec!["bench-server".into()])
        .unwrap();
    server.invite(project, owner, contrib).unwrap();
    let exp = server
        .add_experiment(
            project,
            owner,
            "q6 walk",
            sqalpel_sql::tpch::Q6,
            None,
            10_000,
            1000,
        )
        .unwrap();
    server.seed_pool(project, exp, owner, 30, 42).unwrap();
    server.morph_pool(project, exp, owner, None, 30, 7).unwrap();
    server.enqueue_experiment(project, exp, owner).unwrap();
    (server, contrib)
}

fn bench_pool_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel/pool_walk");
    g.sample_size(10);
    for n in THREADS {
        g.bench_with_input(BenchmarkId::new("workers", n), &n, |b, &n| {
            b.iter(|| {
                let (server, contrib) = pool_server();
                let workers = (0..n)
                    .map(|_| {
                        let key = server.issue_key(contrib).unwrap();
                        // A latency-bound remote target: dispatch concurrency
                        // pays off regardless of local core count.
                        let driver = ExperimentDriver::new(
                            RemoteConnector {
                                label: "rowstore-2.0".into(),
                                latency: std::time::Duration::from_millis(2),
                                rows: 1,
                            },
                            DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 2")
                                .unwrap(),
                        );
                        Worker::new(key, driver)
                    })
                    .collect();
                black_box(run_worker_pool(&server, workers))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scan, bench_aggregate, bench_join, bench_pool_walk);
criterion_main!(benches);
