//! End-to-end crash recovery: `kill -9` a durable `repro serve` mid-walk,
//! restart it on the same state directory, and check that
//!
//! * every report acknowledged before the kill survives — the results
//!   CSV exported before the crash and after the restart are
//!   byte-identical (zero lost, zero duplicated reports);
//! * the claim left open at the kill comes back as running, is re-handed
//!   to its original contributor key (and to nobody else), and can still
//!   be reported;
//! * a SIGTERM shutdown writes a final snapshot that the next boot
//!   recovers from.

use sqalpel_core::{ContributorKey, LoadAvg, Proto, ProjectId, RunOutcome, UserId, WireClient};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// A serve child that is killed when the test panics mid-way. The stdout
/// handle stays open for the child's lifetime: closing it as soon as the
/// startup lines are parsed races the server's remaining banner prints
/// into an EPIPE panic.
struct Serve {
    child: Child,
    _stdout: std::process::ChildStdout,
    addr: SocketAddr,
    v2_addr: SocketAddr,
    key: ContributorKey,
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `repro serve 127.0.0.1:0 --state-dir <dir>` and parse the bound
/// address and the demo contributor key from its stdout. A tiny scale
/// factor keeps the engine bootstrap instant.
///
/// v2 listens on the v1 port + 1, and with `:0` the OS picks v1's port —
/// so a concurrent test's sockets can already hold the neighbour and the
/// serve exits at startup. Retry the spawn on that startup loss.
fn spawn_serve(dir: &std::path::Path) -> Serve {
    for _ in 0..10 {
        if let Some(serve) = try_spawn_serve(dir) {
            return serve;
        }
    }
    panic!("repro serve kept losing its v2 port to a neighbour");
}

fn try_spawn_serve(dir: &std::path::Path) -> Option<Serve> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "127.0.0.1:0", "--state-dir"])
        .arg(dir)
        .env("SQALPEL_SF", "0.001")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn repro serve");
    let mut stdout = child.stdout.take().expect("serve stdout");
    let mut addr = None;
    let mut v2_addr = None;
    let mut key = None;
    for line in BufReader::new(&mut stdout).lines() {
        let line = line.expect("serve output");
        if let Some(rest) = line.strip_prefix("sqalpel platform serving on http://") {
            let host = rest.strip_suffix("/v1").unwrap_or(rest);
            addr = Some(host.parse().expect("server address"));
        }
        if let Some(rest) = line.strip_prefix("framed binary protocol v2 on tcp://") {
            v2_addr = Some(rest.trim().parse().expect("v2 address"));
        }
        if let Some(k) = line.strip_prefix("demo contributor key: ") {
            key = Some(ContributorKey(k.trim().to_string()));
        }
        if addr.is_some() && v2_addr.is_some() && key.is_some() {
            break;
        }
    }
    let (Some(addr), Some(v2_addr), Some(key)) = (addr, v2_addr, key) else {
        // Stdout closed before the full banner: the child lost the bind
        // race and exited. Reap it and let the caller retry.
        let _ = child.kill();
        let _ = child.wait();
        return None;
    };
    Some(Serve { child, _stdout: stdout, addr, v2_addr, key })
}

fn outcome() -> RunOutcome {
    RunOutcome {
        times_ms: vec![2.5, 2.5],
        rows: 25,
        error: None,
        load_before: LoadAvg::default(),
        load_after: LoadAvg::default(),
        extras: serde_json::Value::Null,
        fingerprint: None,
        profile: None,
    }
}

const DBMS: &str = "rowstore-2.0";
const HOST: &str = "bench-server";
/// The demo bootstrap's TPC-H project, and its admin (always the first
/// registered user in a state dir this command wrote).
const PROJECT: ProjectId = ProjectId(1);
const ADMIN: UserId = UserId(1);

#[test]
fn kill_nine_mid_walk_loses_nothing() {
    let dir = std::env::temp_dir().join(format!("sqalpel-crash-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir");

    // Boot 1: walk part of the queue, then die without warning.
    let mut serve = spawn_serve(&dir);
    let client = WireClient::builder(serve.addr).build();
    for _ in 0..5 {
        let task = client
            .request_task(&serve.key, DBMS, HOST)
            .expect("claim")
            .expect("demo queue has work");
        client.report_result(&serve.key, task.id, &outcome()).expect("report");
    }
    let open = client
        .request_task(&serve.key, DBMS, HOST)
        .expect("claim")
        .expect("demo queue still has work");
    let csv_before = client.export_csv(PROJECT, ADMIN).expect("csv before crash");
    assert_eq!(csv_before.lines().count(), 1 + 5, "header + five acked reports");
    let before = client.queue_summary().expect("summary");
    serve.child.kill().expect("SIGKILL serve"); // kill -9: no flush, no snapshot
    serve.child.wait().expect("reap serve");
    let old_key = serve.key.clone();

    // Boot 2: replay the WAL tail.
    let mut serve2 = spawn_serve(&dir);
    let client2 = WireClient::builder(serve2.addr).build();
    let csv_after = client2.export_csv(PROJECT, ADMIN).expect("csv after recovery");
    assert_eq!(csv_after, csv_before, "acked reports must survive kill -9 byte-for-byte");
    let after = client2.queue_summary().expect("summary");
    assert_eq!(after.finished, before.finished);
    assert_eq!(after.running, before.running, "open claim recovered as running");
    assert_eq!(after.queued, before.queued);

    // The open claim is re-handed to its original key — same task, no
    // second hand-out of it to anyone else.
    let stranger = client2
        .request_task(&serve2.key, DBMS, HOST)
        .expect("fresh key claims")
        .expect("queue not empty");
    assert_ne!(stranger.id, open.id, "a recovered running task must not be handed out twice");
    let again = client2
        .request_task(&old_key, DBMS, HOST)
        .expect("re-hand-out")
        .expect("held task returned");
    assert_eq!(again.id, open.id, "the original holder gets its open claim back");
    assert_eq!(again.sql, open.sql);

    // The recovered claim is still reportable, exactly once.
    client2.report_result(&old_key, open.id, &outcome()).expect("report after recovery");
    let csv_done = client2.export_csv(PROJECT, ADMIN).expect("csv after report");
    assert_eq!(csv_done.lines().count(), 1 + 6, "exactly one new row for the recovered claim");

    // SIGTERM: graceful shutdown writes a final snapshot.
    let pid = serve2.child.id().to_string();
    let status = Command::new("kill").args(["-TERM", &pid]).status().expect("send SIGTERM");
    assert!(status.success());
    let exit = serve2.child.wait().expect("graceful exit");
    assert!(exit.success(), "SIGTERM shutdown exits cleanly");
    let snapshots = std::fs::read_dir(&dir)
        .expect("state dir listing")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("snapshot-") && name.ends_with(".jsonl")
        })
        .count();
    assert!(snapshots >= 1, "graceful shutdown leaves a snapshot behind");

    // Boot 3: recover from the snapshot; nothing changed since.
    let serve3 = spawn_serve(&dir);
    let client3 = WireClient::builder(serve3.addr).build();
    let csv_final = client3.export_csv(PROJECT, ADMIN).expect("csv after snapshot boot");
    assert_eq!(csv_final, csv_done);
    let summary = client3.queue_summary().expect("summary");
    assert_eq!(summary.finished, after.finished + 1);
    assert_eq!(summary.running, after.running - 1 + 1, "stranger's claim is still open");

    drop(serve3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bulk uploads are group-committed: one WAL record per acked batch. So
/// a `kill -9` interacts with them in exactly two ways — an acked batch
/// replays byte-identical (the record is durable before the ack), and a
/// torn group-commit record (the crash landed mid-`write`) drops the
/// *whole* batch atomically: zero of its reports visible, never a
/// partial prefix, and every report re-submittable exactly once.
#[test]
fn kill_nine_mid_group_commit_keeps_bulk_batches_atomic() {
    let dir = std::env::temp_dir().join(format!("sqalpel-crash-bulk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir");

    // Boot 1: claim three tasks under distinct nonces (bulk multi-claim),
    // upload them as one batch over v2, and die right after the ack.
    let mut serve = spawn_serve(&dir);
    let client = WireClient::builder(serve.v2_addr).transport(Proto::V2Framed).build();
    let key = serve.key.clone();
    let mut batch1 = Vec::new();
    for nonce in 1..=3u64 {
        let task = client
            .claim_task(&key, DBMS, HOST, nonce)
            .expect("claim")
            .expect("demo queue has work");
        batch1.push((task.id, outcome()));
    }
    let acked = client.report_batch(&key, &batch1).expect("bulk ack");
    assert_eq!(acked.len(), 3);
    let csv1 = client.export_csv(PROJECT, ADMIN).expect("csv after batch 1");
    assert_eq!(csv1.lines().count(), 1 + 3, "header + three bulk reports");
    serve.child.kill().expect("SIGKILL serve");
    serve.child.wait().expect("reap serve");

    // Boot 2: the acked batch replays byte-identical from its single
    // group-commit record.
    let mut serve2 = spawn_serve(&dir);
    let client2 = WireClient::builder(serve2.v2_addr).transport(Proto::V2Framed).build();
    let csv_replayed = client2.export_csv(PROJECT, ADMIN).expect("csv after replay");
    assert_eq!(csv_replayed, csv1, "acked bulk batch must survive kill -9 byte-for-byte");

    // Upload a second batch, then kill -9 and tear its group-commit
    // record in half — as if the crash had landed mid-write.
    let mut batch2 = Vec::new();
    for nonce in 1..=3u64 {
        let task = client2
            .claim_task(&key, DBMS, HOST, nonce)
            .expect("claim")
            .expect("demo queue still has work");
        batch2.push((task.id, outcome()));
    }
    let acked2 = client2.report_batch(&key, &batch2).expect("bulk ack 2");
    assert_eq!(acked2.len(), 3);
    let csv2 = client2.export_csv(PROJECT, ADMIN).expect("csv after batch 2");
    assert_eq!(csv2.lines().count(), 1 + 6);
    serve2.child.kill().expect("SIGKILL serve");
    serve2.child.wait().expect("reap serve");

    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).expect("wal present").len();
    let torn = len - 10; // cut into the final line: batch 2's group commit
    let f = std::fs::OpenOptions::new().write(true).open(&wal).expect("open wal");
    f.set_len(torn).expect("truncate wal mid-record");
    drop(f);

    // Boot 3: the torn batch vanishes whole — the CSV is exactly the
    // pre-batch-2 bytes, not some prefix of batch 2.
    let serve3 = spawn_serve(&dir);
    let client3 = WireClient::builder(serve3.v2_addr).transport(Proto::V2Framed).build();
    let csv_torn = client3.export_csv(PROJECT, ADMIN).expect("csv after torn commit");
    assert_eq!(csv_torn, csv1, "a torn group commit must drop the whole batch atomically");
    let summary = client3.queue_summary().expect("summary");
    assert_eq!(summary.finished, 3, "only batch 1 is applied");
    assert_eq!(summary.running, 3, "batch 2's claims (logged earlier) are back in flight");

    // The dropped reports are still held by the original key and can be
    // re-submitted — exactly once, landing on the same record indices,
    // so the final export matches the pre-crash bytes.
    let resubmitted = client3.report_batch(&key, &batch2).expect("bulk resubmit");
    assert_eq!(resubmitted, acked2, "re-upload fills the same record slots");
    let csv_final = client3.export_csv(PROJECT, ADMIN).expect("csv after resubmit");
    assert_eq!(csv_final, csv2, "resubmitted batch restores the pre-crash export byte-for-byte");

    drop(serve3);
    let _ = std::fs::remove_dir_all(&dir);
}
