//! # sqalpel
//!
//! Facade crate for **sqalpel-rs**, a Rust reproduction of
//! *"SQALPEL: A database performance platform"* (Kersten et al., CIDR 2019).
//!
//! SQALPEL replaces frozen benchmark query sets with *discriminative
//! performance benchmarking*: a complex baseline query is converted into a
//! small grammar describing a much larger query space, which is explored with
//! a guided random walk (a query pool morphed by alter / expand / prune
//! strategies) to find the queries that run relatively better on one system
//! than another. Around the explorer sits a GitHub-like repository of
//! performance projects with access control, a contribution driver, a task
//! queue and visual analytics.
//!
//! This crate re-exports the workspace members:
//!
//! - [`sql`] — SQL lexer/parser/AST/printer covering all 22 TPC-H queries.
//! - [`datagen`] — deterministic TPC-H / SSB / airtraffic generators.
//! - [`engine`] — two in-memory SQL engines ([`engine::RowStore`] and
//!   [`engine::ColStore`]) that play the role of the target DBMSs.
//! - [`grammar`] — the SQALPEL query-space grammar DSL plus the automatic
//!   SQL-to-grammar converter.
//! - [`core`] — the platform itself: projects, pool morphing, drivers,
//!   queue, results and analytics.
//!
//! ## Quickstart
//!
//! ```
//! use sqalpel::grammar::Grammar;
//!
//! // The sample grammar from Figure 1 of the paper.
//! let g = Grammar::parse(sqalpel::grammar::FIG1_GRAMMAR).unwrap();
//! let space = g.space_report(10_000).unwrap();
//! assert!(space.templates > 1);
//! ```

pub use sqalpel_core as core;
pub use sqalpel_datagen as datagen;
pub use sqalpel_engine as engine;
pub use sqalpel_grammar as grammar;
pub use sqalpel_sql as sql;
