//! Property-based tests for the SQL front-end and the engine's scalar
//! semantics: the canonical printer and the parser are mutually inverse,
//! `LIKE` matches a reference implementation, and the calendar arithmetic
//! round-trips.

use proptest::prelude::*;
use sqalpel::sql::ast::{BinOp, Expr};
use sqalpel::sql::{parse_expr, parse_query};

// ----------------------------------------------------------- expression gen

/// A strategy for well-formed scalar/boolean expressions over columns
/// `a, b, c` (avoiding reserved words and degenerate literals).
fn arb_scalar() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Expr::col),
        (-1000i64..1000).prop_map(Expr::int),
        (0i64..10_000).prop_map(|c| Expr::dec(c as f64 / 100.0)),
        "[a-z]{0,6}".prop_map(Expr::str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Plus),
                Just(BinOp::Minus),
                Just(BinOp::Mul),
            ])
                .prop_map(|(l, r, op)| Expr::binary(l, op, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Case {
                operand: None,
                branches: vec![(Expr::eq(l, Expr::int(1)), r)],
                else_branch: None,
            }),
        ]
    })
}

fn arb_predicate() -> impl Strategy<Value = Expr> {
    let cmp = (arb_scalar(), arb_scalar(), prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
        Just(BinOp::Lt),
        Just(BinOp::GtEq),
    ])
        .prop_map(|(l, r, op)| Expr::binary(l, op, r));
    cmp.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::and(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::or(l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: sqalpel::sql::UnaryOp::Not,
                expr: Box::new(e),
            }),
        ]
    })
}

// ------------------------------------------------------- reference matcher

/// Straightforward recursive reference for SQL LIKE.
fn like_reference(text: &[char], pat: &[char]) -> bool {
    match pat.split_first() {
        None => text.is_empty(),
        Some(('%', rest)) => {
            (0..=text.len()).any(|i| like_reference(&text[i..], rest))
        }
        Some(('_', rest)) => !text.is_empty() && like_reference(&text[1..], rest),
        Some((c, rest)) => text.first() == Some(c) && like_reference(&text[1..], rest),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse is the identity on scalar expressions.
    #[test]
    fn scalar_print_parse_roundtrip(e in arb_scalar()) {
        let text = e.to_string();
        let back = parse_expr(&text)
            .unwrap_or_else(|err| panic!("unparseable {text:?}: {err}"));
        prop_assert_eq!(back, e, "{}", text);
    }

    /// print ∘ parse is the identity on boolean predicates.
    #[test]
    fn predicate_print_parse_roundtrip(e in arb_predicate()) {
        let text = e.to_string();
        let back = parse_expr(&text)
            .unwrap_or_else(|err| panic!("unparseable {text:?}: {err}"));
        prop_assert_eq!(back, e, "{}", text);
    }

    /// Full queries round-trip through the canonical printer.
    #[test]
    fn query_print_parse_roundtrip(
        pred in arb_predicate(),
        item in arb_scalar(),
        desc in any::<bool>(),
        limit in proptest::option::of(0u64..100),
    ) {
        let mut sql = format!("SELECT {item} AS v FROM t WHERE {pred} ORDER BY v");
        if desc {
            sql.push_str(" DESC");
        }
        if let Some(n) = limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        let q = parse_query(&sql).unwrap_or_else(|e| panic!("{sql:?}: {e}"));
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("{printed:?}: {e}"));
        prop_assert_eq!(q, q2);
    }

    /// The iterative LIKE matcher agrees with the recursive reference.
    #[test]
    fn like_matches_reference(
        text in "[abc%_]{0,12}",
        pattern in "[abc%_]{0,8}",
    ) {
        let got = sqalpel::engine::value::like_match(&text, &pattern);
        let t: Vec<char> = text.chars().collect();
        let p: Vec<char> = pattern.chars().collect();
        prop_assert_eq!(got, like_reference(&t, &p), "text={:?} pat={:?}", text, pattern);
    }

    /// Calendar day numbers round-trip and month arithmetic is sane.
    #[test]
    fn calendar_roundtrip(days in -200_000i32..200_000) {
        use sqalpel::datagen::calendar;
        let d = calendar::from_days(days);
        prop_assert_eq!(calendar::to_days(d), days);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!((1..=31).contains(&d.day));
        // Formatting parses back.
        prop_assert_eq!(calendar::parse_days(&calendar::format_days(days)), Some(days));
    }

    #[test]
    fn add_months_is_monotone_and_bounded(days in 0i32..20_000, n in 0i32..48) {
        use sqalpel::datagen::calendar;
        let later = calendar::add_months(days, n);
        prop_assert!(later >= days);
        // n months is at most 31 days each.
        prop_assert!(later - days <= 31 * n);
        // Inverse direction never overshoots the original month length.
        let back = calendar::add_months(later, -n);
        prop_assert!(back <= days && days - back <= 3);
    }

    /// PCG ranges stay in bounds and are deterministic per seed.
    #[test]
    fn prng_range_bounds(seed in any::<u64>(), lo in -50i64..50, span in 0i64..100) {
        use sqalpel::datagen::Pcg32;
        let hi = lo + span;
        let mut a = Pcg32::new(seed, 1);
        let mut b = Pcg32::new(seed, 1);
        for _ in 0..20 {
            let x = a.range_i64(lo, hi);
            prop_assert!((lo..=hi).contains(&x));
            prop_assert_eq!(x, b.range_i64(lo, hi));
        }
    }
}
