//! Property-based tests for the grammar machinery's core invariants.

use proptest::prelude::*;
use sqalpel::grammar::{self, Grammar};
use std::collections::HashSet;

/// Build a list-shaped grammar like the converter emits:
/// `SELECT ${l_p} ${plist}* FROM t [WHERE ${l_w} ${wlist}*]`.
fn list_grammar(n_proj: usize, n_pred: usize) -> Grammar {
    let mut src = String::from("query:\n");
    if n_pred > 0 {
        src.push_str("    SELECT ${l_p} ${plist}* FROM t WHERE ${l_w} ${wlist}*\n");
    } else {
        src.push_str("    SELECT ${l_p} ${plist}* FROM t\n");
    }
    src.push_str("plist:\n    , ${l_p}\nl_p:\n");
    for i in 0..n_proj {
        src.push_str(&format!("    col{i}\n"));
    }
    if n_pred > 0 {
        src.push_str("wlist:\n    AND ${l_w}\nl_w:\n");
        for i in 0..n_pred {
            src.push_str(&format!("    p{i} = {i}\n"));
        }
    }
    Grammar::parse(&src).expect("well-formed grammar")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The space of a nonempty-subset list grammar has the closed form
    /// (2^n - 1) × (2^m - 1), and the template count is n × m.
    #[test]
    fn space_matches_closed_form(n_proj in 1usize..8, n_pred in 0usize..7) {
        let g = list_grammar(n_proj, n_pred);
        let report = g.space_report(100_000).unwrap();
        prop_assert!(!report.truncated);
        let proj_space = (1u128 << n_proj) - 1;
        let pred_space = if n_pred == 0 { 1 } else { (1u128 << n_pred) - 1 };
        prop_assert_eq!(report.space, proj_space * pred_space);
        let expect_templates = n_proj * n_pred.max(1);
        prop_assert_eq!(report.templates, expect_templates);
    }

    /// Space always equals the sum of per-template instantiation counts.
    #[test]
    fn space_is_sum_of_instantiations(n_proj in 1usize..6, n_pred in 0usize..5) {
        let g = list_grammar(n_proj, n_pred);
        let set = g.templates(100_000).unwrap();
        let total: u128 = set.templates.iter().map(|t| t.instantiations(&g)).sum();
        prop_assert_eq!(g.space_report(100_000).unwrap().space, total);
    }

    /// Enumerated templates are pairwise distinct in their counts.
    #[test]
    fn templates_are_deduplicated(n_proj in 1usize..7, n_pred in 0usize..6) {
        let g = list_grammar(n_proj, n_pred);
        let set = g.templates(100_000).unwrap();
        let mut seen = HashSet::new();
        for t in &set.templates {
            let key: Vec<(String, usize)> =
                t.counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
            prop_assert!(seen.insert(key), "duplicate template counts");
        }
    }

    /// Random instantiation respects the literal-once rule: no literal
    /// appears twice, and every generated query is in the language.
    #[test]
    fn random_queries_respect_literal_once(
        n_proj in 2usize..8,
        seed in 0u64..1000,
    ) {
        let g = list_grammar(n_proj, 3);
        let set = g.templates(100_000).unwrap();
        let mut rng = grammar::seeded_rng(seed);
        let sql = grammar::random_query(&g, &set.templates, &mut rng, None).unwrap();
        // Columns between SELECT and FROM must be distinct.
        let select_part = sql
            .split("FROM")
            .next()
            .unwrap()
            .trim_start_matches("SELECT ");
        let cols: Vec<&str> = select_part.split(',').map(str::trim).collect();
        let unique: HashSet<&str> = cols.iter().copied().collect();
        prop_assert_eq!(cols.len(), unique.len(), "duplicate literal in {}", sql);
    }

    /// The explicit-choice instantiation is deterministic and parses.
    #[test]
    fn generated_sql_parses(seed in 0u64..500) {
        let g = Grammar::parse(grammar::FIG1_GRAMMAR).unwrap();
        let set = g.templates(1000).unwrap();
        let mut rng = grammar::seeded_rng(seed);
        let sql = grammar::random_query(&g, &set.templates, &mut rng, None).unwrap();
        prop_assert!(sqalpel::sql::parse_query(&sql).is_ok(), "unparseable: {}", sql);
    }

    /// Conversion of a synthetic SELECT with k projections and m
    /// conjuncts reproduces the analytic space.
    #[test]
    fn convert_space_closed_form(k in 1usize..6, m in 1usize..5) {
        let projections: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
        let predicates: Vec<String> = (0..m).map(|i| format!("x{i} = {i}")).collect();
        let sql = format!(
            "select {} from t where {}",
            projections.join(", "),
            predicates.join(" and ")
        );
        let g = grammar::convert_sql(&sql).unwrap();
        let report = g.space_report(100_000).unwrap();
        let expect = ((1u128 << k) - 1) * ((1u128 << m) - 1);
        prop_assert_eq!(report.space, expect, "for {}", sql);
    }

    /// binomial is symmetric and satisfies Pascal's rule.
    #[test]
    fn binomial_identities(n in 0usize..40, k in 0usize..40) {
        if k <= n {
            prop_assert_eq!(grammar::binomial(n, k), grammar::binomial(n, n - k));
        } else {
            prop_assert_eq!(grammar::binomial(n, k), 0);
        }
        if n >= 1 && k >= 1 && k <= n {
            prop_assert_eq!(
                grammar::binomial(n, k),
                grammar::binomial(n - 1, k - 1) + grammar::binomial(n - 1, k)
            );
        }
    }
}
