//! End-to-end integration: the full platform loop over real engines —
//! project setup, grammar conversion, pool walk, queue, driver,
//! results, moderation and analytics.

use sqalpel::core::analytics;
use sqalpel::core::{
    DriverConfig, EngineConnector, ExperimentDriver, SqalpelServer, Visibility,
};
use sqalpel::engine::{ColStore, Database, RowStore};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn full_platform_session() {
    let server = SqalpelServer::new();
    let owner = server.register_user("owner", "o@cwi.nl").unwrap();
    let contrib = server.register_user("contrib", "c@cwi.nl").unwrap();
    let project = server
        .create_project(owner, "q6-study", "forecasting revenue change", Visibility::Public)
        .unwrap();
    server
        .set_targets(
            project,
            owner,
            vec!["rowstore-2.0".into(), "colstore-5.1".into()],
            vec!["bench-server".into()],
        )
        .unwrap();
    server.invite(project, owner, contrib).unwrap();

    // Q6 converts automatically; space matches the paper's Table 2 row.
    let exp = server
        .add_experiment(project, owner, "Q6", sqalpel::sql::tpch::Q6, None, 1000, 100)
        .unwrap();
    let seeded = server.seed_pool(project, exp, owner, 6, 1).unwrap();
    assert!(seeded >= 4, "Q6's space has 15 queries; seeding should find several");
    server.morph_pool(project, exp, owner, None, 10, 2).unwrap();

    let tasks = server.enqueue_experiment(project, exp, owner).unwrap();
    assert!(tasks >= 2 * seeded);

    // Two contributors drain the queue, one per system.
    let db = Arc::new(Database::tpch(0.001, 42));
    let key = server.issue_key(contrib).unwrap();
    for label in ["rowstore-2.0", "colstore-5.1"] {
        let connector: EngineConnector = if label.starts_with("rowstore") {
            EngineConnector::new(Arc::new(RowStore::new(db.clone())))
        } else {
            EngineConnector::new(Arc::new(ColStore::new(db.clone())))
        };
        let driver = ExperimentDriver::new(
            connector,
            DriverConfig::parse(&format!("dbms = {label}\nrepetitions = 2")).unwrap(),
        );
        while let Some(task) = server.request_task(&key, label, "bench-server").unwrap() {
            let outcome = driver.run(&task.sql);
            server.report_result(&key, task.id, outcome).unwrap();
        }
    }
    let summary = server.queue_summary();
    assert_eq!(summary.queued + summary.running + summary.timed_out, 0);
    assert_eq!(summary.finished + summary.failed, tasks);

    // Q6 variants are all single-table: no failures expected.
    assert_eq!(summary.failed, 0, "Q6 variants should all execute");

    // Analytics: both engines measured every query.
    let records = server.results_for(project, contrib).unwrap();
    let t_row = analytics::times_by_query(&records, "rowstore-2.0");
    let t_col = analytics::times_by_query(&records, "colstore-5.1");
    assert_eq!(t_row.len(), t_col.len());
    assert!(analytics::speedup(&t_row, &t_col).is_some());

    // CSV export carries one line per record plus the header.
    let csv = server.export_csv(project, contrib).unwrap();
    assert_eq!(csv.lines().count(), records.len() + 1);

    // Reaping finds nothing (the queue is drained).
    assert!(server.reap_stuck(Duration::from_secs(0)).is_empty());
}

#[test]
fn stuck_task_lifecycle_across_the_server() {
    let server = SqalpelServer::new();
    let owner = server.register_user("owner", "o@x.io").unwrap();
    let project = server
        .create_project(owner, "p", "s", Visibility::Public)
        .unwrap();
    server
        .set_targets(project, owner, vec!["rowstore-2.0".into()], vec!["bench-server".into()])
        .unwrap();
    let exp = server
        .add_experiment(
            project,
            owner,
            "nation",
            "select count(*) from nation where n_name = 'BRAZIL'",
            None,
            100,
            10,
        )
        .unwrap();
    server.seed_pool(project, exp, owner, 2, 3).unwrap();
    server.enqueue_experiment(project, exp, owner).unwrap();

    // The owner contributes too (owners hold contributor rights).
    let key = server.issue_key(owner).unwrap();
    let task = server
        .request_task(&key, "rowstore-2.0", "bench-server")
        .unwrap()
        .expect("task available");
    // The contributor never reports back; the moderator reaps it.
    let reaped = server.reap_stuck(Duration::from_secs(0));
    assert_eq!(reaped, vec![task.id]);
    // Requeue and complete properly this time.
    server.requeue(task.id).unwrap();
    let task2 = server
        .request_task(&key, "rowstore-2.0", "bench-server")
        .unwrap()
        .expect("requeued task");
    let db = Arc::new(Database::tpch(0.001, 42));
    let driver = ExperimentDriver::new(
        EngineConnector::new(Arc::new(RowStore::new(db))),
        DriverConfig::parse("dbms = rowstore-2.0").unwrap(),
    );
    server
        .report_result(&key, task2.id, driver.run(&task2.sql))
        .unwrap();
    assert!(server.queue_summary().finished >= 1);
}

#[test]
fn figure_pages_render_from_a_live_session() {
    use sqalpel::core::reports;
    let server = SqalpelServer::new();
    let owner = server.register_user("owner", "o@x.io").unwrap();
    let project = server
        .create_project(owner, "pages", "render test", Visibility::Public)
        .unwrap();
    let exp = server
        .add_experiment(project, owner, "fig1", sqalpel::sql::tpch::Q6, None, 1000, 50)
        .unwrap();
    server.seed_pool(project, exp, owner, 5, 9).unwrap();
    let (fig5, fig6) = server
        .with_project_view(project, owner, |p| {
            let e = p.experiment(exp).unwrap();
            (reports::experiment_page(p, e), reports::pool_page(&e.pool))
        })
        .unwrap();
    assert!(fig5.contains("baseline query:"));
    assert!(fig5.contains("sqalpel grammar:"));
    assert!(fig6.contains("query pool:"));
    assert!(fig6.contains("baseline"));
}
