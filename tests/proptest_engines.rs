//! Property-based differential testing of the engines' filter kernels:
//! for arbitrary predicates over `lineitem`, the vectorized column
//! kernels must select exactly the rows the tuple-at-a-time evaluator
//! selects — `count(*)` agrees, and so does a checksum aggregate.

use proptest::prelude::*;
use sqalpel::engine::{ColStore, Database, Dbms, RowStore};
use std::sync::{Arc, OnceLock};

fn shared_db() -> Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(Database::tpch(0.001, 11))).clone()
}

/// Generate predicate SQL over lineitem's typed columns, exercising the
/// int/date/decimal/string comparison kernels, BETWEEN, IN, LIKE and the
/// boolean connectives.
fn arb_predicate() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        // integer comparisons
        (0i64..60, prop_oneof![Just("<"), Just("<="), Just(">"), Just(">="), Just("="), Just("<>")])
            .prop_map(|(v, op)| format!("l_quantity {op} {v}")),
        // decimal comparisons
        (0i64..11).prop_map(|v| format!("l_discount >= 0.0{v}")),
        (0i64..9).prop_map(|v| format!("l_tax < 0.0{v}")),
        // date comparisons
        (1992i32..1999, 1u32..13)
            .prop_map(|(y, m)| format!("l_shipdate < date '{y:04}-{m:02}-01'")),
        // between
        (1i64..25, 25i64..51)
            .prop_map(|(lo, hi)| format!("l_quantity between {lo} and {hi}")),
        // string equality and IN lists
        prop_oneof![Just("MAIL"), Just("SHIP"), Just("AIR"), Just("RAIL")]
            .prop_map(|m| format!("l_shipmode = '{m}'")),
        Just("l_shipmode in ('MAIL', 'SHIP', 'FOB')".to_string()),
        // LIKE over the comment text
        prop_oneof![Just("%ly%"), Just("f%"), Just("%s"), Just("%a%e%")]
            .prop_map(|p| format!("l_comment like '{p}'")),
        Just("l_returnflag = 'R'".to_string()),
    ];
    atom.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} and {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} or {b})")),
            inner.clone().prop_map(|a| format!("not ({a})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Row-at-a-time and vectorized filtering select the same rows.
    #[test]
    fn filter_kernels_agree(pred in arb_predicate()) {
        let db = shared_db();
        let sql = format!(
            "select count(*), sum(l_orderkey * l_linenumber), min(l_shipdate) \
             from lineitem where {pred}"
        );
        let row = RowStore::new(db.clone());
        let col = ColStore::new(db);
        let a = row.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let b = col.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        prop_assert!(
            a.approx_eq(&b, 1e-9),
            "kernel divergence on {}:\nrowstore {:?}\ncolstore {:?}",
            pred, a.rows, b.rows
        );
    }

    /// Grouped aggregation over arbitrary filters also agrees.
    #[test]
    fn grouped_aggregation_agrees(pred in arb_predicate()) {
        let db = shared_db();
        let sql = format!(
            "select l_returnflag, count(*), avg(l_quantity) from lineitem \
             where {pred} group by l_returnflag order by l_returnflag"
        );
        let row = RowStore::new(db.clone());
        let col = ColStore::new(db);
        let a = row.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let b = col.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        prop_assert!(a.approx_eq(&b, 1e-9), "divergence on {}", pred);
    }

}

fn tiny_db() -> Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(Database::tpch(0.0003, 11))).clone()
}

proptest! {
    // Few cases: each one runs a quadratic nested-loop join.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The legacy nested-loop version agrees with hash joins on a
    /// filtered two-table join.
    #[test]
    fn join_algorithms_agree(pred in arb_predicate()) {
        let db = tiny_db();
        let sql = format!(
            "select count(*) from lineitem, orders \
             where l_orderkey = o_orderkey and {pred}"
        );
        let new = RowStore::new(db.clone());
        let old = RowStore::legacy(db);
        let a = new.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let b = old.execute(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        prop_assert!(a.approx_eq(&b, 0.0), "join divergence on {}", pred);
    }
}
