//! Differential testing of *generated variants*: every query sampled from
//! a converted TPC-H grammar must either fail on both engines (invalid
//! variants are legitimate pool members) or produce the same answer.
//!
//! This is the McKeeman-style check the paper inherits from the grammar
//! testing literature, applied to the whole pipeline: SQL → grammar →
//! variant generation → two independent executors.

use sqalpel::engine::{ColStore, Database, Dbms, RowStore};
use std::sync::Arc;

fn check_variants_with_budget(baseline: &str, n: usize, seed: u64, budget: u64) {
    let grammar = sqalpel::grammar::convert_sql(baseline).expect("baseline converts");
    let set = grammar.templates(50_000).expect("enumerable");
    let mut rng = sqalpel::grammar::seeded_rng(seed);
    let db = Arc::new(Database::tpch(0.001, 7));
    let row = RowStore::new(db.clone()).with_budget(budget);
    let col = ColStore::new(db).with_budget(budget);
    let mut executed = 0;
    let mut failed = 0;
    let is_kill = |e: &sqalpel::engine::EngineError| {
        matches!(e, sqalpel::engine::EngineError::Budget(_))
    };
    for _ in 0..n {
        let sql = sqalpel::grammar::random_query(&grammar, &set.templates, &mut rng, None)
            .expect("generation succeeds");
        let a = row.execute(&sql);
        let b = col.execute(&sql);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                executed += 1;
                assert!(
                    x.canonicalized().approx_eq(&y.canonicalized(), 1e-6),
                    "engines disagree on variant:\n{sql}\nrowstore:\n{x}\ncolstore:\n{y}"
                );
            }
            (Err(_), Err(_)) => failed += 1, // both reject: fine
            // A resource kill on one side only is a cost-model difference,
            // not a semantic divergence: the engines count work differently.
            (Ok(_), Err(e)) if is_kill(&e) => failed += 1,
            (Err(e), Ok(_)) if is_kill(&e) => failed += 1,
            (Ok(_), Err(e)) => panic!("only colstore failed on {sql}: {e}"),
            (Err(e), Ok(_)) => panic!("only rowstore failed on {sql}: {e}"),
        }
    }
    assert!(executed > 0, "no variant executed for {baseline:?} ({failed} failed)");
}

fn check_variants(baseline: &str, n: usize, seed: u64) {
    check_variants_with_budget(baseline, n, seed, 2_000_000)
}

#[test]
fn q1_variants_agree() {
    check_variants(sqalpel::sql::tpch::Q1, 30, 1);
}

#[test]
fn q6_variants_agree() {
    check_variants(sqalpel::sql::tpch::Q6, 15, 2);
}

#[test]
fn q14_variants_agree() {
    check_variants(sqalpel::sql::tpch::Q14, 20, 3);
}

#[test]
fn q12_variants_agree() {
    check_variants(sqalpel::sql::tpch::Q12, 20, 4);
}

#[test]
fn q19_variants_agree() {
    // Q19's WHERE is one OR group touching both tables: even the baseline
    // executes as a filtered cross product, so it needs a larger budget.
    check_variants_with_budget(sqalpel::sql::tpch::Q19, 8, 5, 80_000_000);
}

#[test]
fn variants_agree_across_thread_counts() {
    // Morsel parallelism must be invisible to the differential harness:
    // each generated variant returns byte-identical rows (or the same
    // kind of error) at threads=1 and threads=4. Needs a scale factor
    // past the engines' parallel spawn threshold, otherwise both sides
    // take the sequential path and the check is vacuous.
    let grammar = sqalpel::grammar::convert_sql(sqalpel::sql::tpch::Q1).expect("Q1 converts");
    let set = grammar.templates(50_000).expect("enumerable");
    let mut rng = sqalpel::grammar::seeded_rng(11);
    let db = Arc::new(Database::tpch(0.01, 7));
    let budget = 20_000_000;
    let row_seq = RowStore::new(db.clone()).with_budget(budget).with_threads(1);
    let row_par = RowStore::new(db.clone()).with_budget(budget).with_threads(4);
    let col_seq = ColStore::new(db.clone()).with_budget(budget).with_threads(1);
    let col_par = ColStore::new(db).with_budget(budget).with_threads(4);
    let pairs: [(&dyn Dbms, &dyn Dbms); 2] = [(&row_seq, &row_par), (&col_seq, &col_par)];
    for _ in 0..10 {
        let sql = sqalpel::grammar::random_query(&grammar, &set.templates, &mut rng, None)
            .expect("generation succeeds");
        for (seq, par) in pairs {
            match (seq.execute(&sql), par.execute(&sql)) {
                (Ok(x), Ok(y)) => assert!(
                    x.approx_eq(&y, 0.0),
                    "{} diverged across thread counts on {sql}:\n{x}\nvs\n{y}",
                    seq.label()
                ),
                // Budget messages quote the shared row counter, so only
                // the error *kind* is required to match.
                (Err(x), Err(y)) => assert_eq!(
                    std::mem::discriminant(&x),
                    std::mem::discriminant(&y),
                    "{} fails differently across thread counts on {sql}: {x} vs {y}",
                    seq.label()
                ),
                (a, b) => panic!(
                    "{} thread counts disagree on whether {sql} runs: {:?} vs {:?}",
                    seq.label(),
                    a.map(|r| r.rows.len()),
                    b.map(|r| r.rows.len()),
                ),
            }
        }
    }
}

#[test]
fn legacy_rowstore_agrees_on_q3_variants() {
    // The two versions of the same system must return identical answers
    // wherever both complete.
    let grammar = sqalpel::grammar::convert_sql(sqalpel::sql::tpch::Q3).expect("Q3 converts");
    let set = grammar.templates(50_000).expect("enumerable");
    let mut rng = sqalpel::grammar::seeded_rng(6);
    let db = Arc::new(Database::tpch(0.001, 7));
    let new = RowStore::new(db.clone()).with_budget(4_000_000);
    let old = RowStore::legacy(db).with_budget(4_000_000);
    let mut both = 0;
    for _ in 0..15 {
        let sql = sqalpel::grammar::random_query(&grammar, &set.templates, &mut rng, None)
            .expect("generation succeeds");
        if let (Ok(x), Ok(y)) = (new.execute(&sql), old.execute(&sql)) {
            both += 1;
            assert!(
                x.canonicalized().approx_eq(&y.canonicalized(), 1e-9),
                "versions disagree on {sql}"
            );
        }
    }
    assert!(both > 0, "no variant completed on both versions");
}
